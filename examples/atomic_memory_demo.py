#!/usr/bin/env python3
"""Atomic read/write memory on a virtual node (GeoQuorums-style).

Two writers race; a reader observes.  The virtual node serialises all
operations in virtual-round order, so the reader's view is atomic: the
observed sequence numbers never go backwards, even though every physical
device is an unreliable radio node.

Run:  python examples/atomic_memory_demo.py
"""

from repro.apps import ReaderClient, RegisterProgram, WriterClient
from repro.geometry import Point
from repro.vi import VIWorld
from repro.workloads import single_region


def main() -> None:
    sites, replica_positions = single_region(n_replicas=4)
    world = VIWorld(sites, {0: RegisterProgram()})
    for pos in replica_positions:
        world.add_device(pos)

    alice = WriterClient({1: "alice-1", 5: "alice-2"}, base_seq=1)
    bob = WriterClient({3: "bob-1", 7: "bob-2"}, base_seq=100)
    reader = ReaderClient()

    world.add_device(Point(0.4, 0.0), client=alice, initially_active=False)
    world.add_device(Point(-0.4, 0.0), client=bob, initially_active=False)
    world.add_device(Point(0.0, 0.4), client=reader, initially_active=False)

    world.run_virtual_rounds(12)

    print("writes issued:")
    for who, writer in (("alice", alice), ("bob", bob)):
        for vr, seq, value in writer.issued:
            print(f"  vr {vr:2d}  {who:5s}  seq={seq:3d}  value={value!r}")

    print("\nreads observed (virtual round, seq, value):")
    for vr, seq, value in reader.reads:
        print(f"  vr {vr:2d}  seq={seq:3d}  value={value!r}")

    seqs = reader.observed_sequence()
    assert seqs == sorted(seqs), "atomicity violated!"
    print("\natomicity check: observed sequence is monotone ✓")
    world.check_replica_consistency(0)


if __name__ == "__main__":
    main()
