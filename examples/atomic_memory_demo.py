#!/usr/bin/env python3
"""Atomic read/write memory on a virtual node (GeoQuorums-style).

Two writers race; a reader observes.  The virtual node serialises all
operations in virtual-round order, so the reader's view is atomic: the
observed sequence numbers never go backwards, even though every physical
device is an unreliable radio node.

Run:  python examples/atomic_memory_demo.py
"""

from repro import scenario
from repro.apps import ReaderClient, RegisterProgram, WriterClient
from repro.geometry import Point


def main() -> None:
    result = (
        scenario()
        .single_region(n_replicas=4)
        .program(0, RegisterProgram())
        .client(Point(0.4, 0.0),
                WriterClient({1: "alice-1", 5: "alice-2"}, base_seq=1),
                name="alice")
        .client(Point(-0.4, 0.0),
                WriterClient({3: "bob-1", 7: "bob-2"}, base_seq=100),
                name="bob")
        .client(Point(0.0, 0.4), ReaderClient(), name="reader")
        .virtual_rounds(12)
        .invariants("replica_consistency")
        .run()
    )

    print("writes issued:")
    for who in ("alice", "bob"):
        for vr, seq, value in result.client(who).issued:
            print(f"  vr {vr:2d}  {who:5s}  seq={seq:3d}  value={value!r}")

    reader = result.client("reader")
    print("\nreads observed (virtual round, seq, value):")
    for vr, seq, value in reader.reads:
        print(f"  vr {vr:2d}  seq={seq:3d}  value={value!r}")

    seqs = reader.observed_sequence()
    assert seqs == sorted(seqs), "atomicity violated!"
    print("\natomicity check: observed sequence is monotone ✓")
    result.assert_ok()


if __name__ == "__main__":
    main()
