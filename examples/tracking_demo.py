#!/usr/bin/env python3
"""Target tracking over a corridor of virtual nodes.

A mobile target walks along a corridor covered by three virtual nodes.
Each virtual node remembers when it last heard the target; because
virtual nodes sit at *known, fixed* locations, the freshest record is a
location estimate.  The output shows the estimate handing off from node
to node as the target moves — the paper's cited tracking services
([11, 16, 34, 36]) in miniature.

Run:  python examples/tracking_demo.py
"""

from repro import scenario
from repro.apps import TargetClient, TrackerProgram, estimate_position, last_seen_map
from repro.geometry import Point
from repro.net import WaypointMobility


def main() -> None:
    builder = scenario().vn_line(3, spacing=0.5, replicas_per_vn=2)
    for vn_id in range(3):
        builder.program(vn_id, TrackerProgram())
    result = (
        builder
        .client(WaypointMobility(Point(0.0, 0.45), [Point(1.6, 0.45)],
                                 speed=0.02),
                TargetClient("intruder", period=1), name="intruder")
        .virtual_rounds(8)
        .run()
    )
    world = result.world

    checkpoints = [8, 16, 24, 32, 40]
    for upto in checkpoints:
        world.run_virtual_rounds(upto - world.virtual_rounds_run)
        estimate = estimate_position(world, "intruder")
        seen = last_seen_map(world, "intruder")
        print(f"after vr {upto:2d}: last-seen per VN = {seen}  "
              f"estimate = {estimate}")

    final = estimate_position(world, "intruder")
    print(f"\nfinal position estimate: {final} "
          f"(target parked at x=1.6, nearest VN home is (1.0, 0.0))")


if __name__ == "__main__":
    main()
