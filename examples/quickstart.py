#!/usr/bin/env python3
"""Quickstart: one virtual node, three unreliable devices, a live counter.

Demonstrates the core promise of the paper: unreliable, crash-prone
devices cooperatively emulate a *reliable* virtual node.  Midway through
the run we crash one replica; the virtual node does not even blink.

The whole deployment is one declarative scenario: geometry, programs,
clients, the crash schedule, the workload and the requested metrics are
chained on a single builder, and ``.run()`` hands back a uniform result.

Run:  python examples/quickstart.py
"""

from repro import scenario
from repro.geometry import Point
from repro.net import CrashSchedule
from repro.vi import CounterProgram, ScriptedClient, SilentClient


def main() -> None:
    result = (
        scenario()
        .single_region(n_replicas=3)
        .program(0, CounterProgram())
        # One replica dies at real round 30 (virtual round 2).
        .crashes(CrashSchedule.of({0: 30}))
        # A client keeps incrementing the shared counter...
        .client(Point(0.4, 0.0),
                ScriptedClient({vr: ("add", 1) for vr in range(1, 12, 2)}),
                name="incrementer")
        # ... and a listener watches the counter's broadcasts.
        .client(Point(0.0, 0.4), SilentClient(), name="listener")
        .virtual_rounds(12)
        .metrics("availability")
        .invariants("replica_consistency")
        .run()
    )
    result.assert_ok()
    world = result.world

    print("virtual node availability:", result.metrics["availability"][0])
    print("replica count after crash:", len(world.replicas_of(0)))
    print("agreed counter state     :", set(world.vn_states(0).values()))

    print("\ncounter broadcasts seen by the listener:")
    for vr, obs in result.client("listener").heard:
        for item in obs.messages:
            if item[0] == "vn":
                print(f"  virtual round {vr:2d}: {item[2]}")


if __name__ == "__main__":
    main()
