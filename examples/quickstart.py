#!/usr/bin/env python3
"""Quickstart: one virtual node, three unreliable devices, a live counter.

Demonstrates the core promise of the paper: unreliable, crash-prone
devices cooperatively emulate a *reliable* virtual node.  Midway through
the run we crash one replica; the virtual node does not even blink.

Run:  python examples/quickstart.py
"""

from repro.apps import ReaderClient  # noqa: F401  (showcased in other demos)
from repro.geometry import Point
from repro.net import CrashSchedule
from repro.vi import CounterProgram, ScriptedClient, SilentClient, VIWorld, VNSite
from repro.workloads import single_region


def main() -> None:
    sites, replica_positions = single_region(n_replicas=3)
    world = VIWorld(
        sites,
        {0: CounterProgram()},
        # One replica dies at real round 30 (virtual round 2).
        crashes=CrashSchedule.of({0: 30}),
    )
    for pos in replica_positions:
        world.add_device(pos)

    # A client keeps incrementing the shared counter...
    incrementer = ScriptedClient({vr: ("add", 1) for vr in range(1, 12, 2)})
    world.add_device(Point(0.4, 0.0), client=incrementer, initially_active=False)
    # ... and a listener watches the counter's broadcasts.
    listener = SilentClient()
    world.add_device(Point(0.0, 0.4), client=listener, initially_active=False)

    world.run_virtual_rounds(12)

    print("virtual node availability:", world.availability(0))
    print("replica count after crash:", len(world.replicas_of(0)))
    print("agreed counter state     :", set(world.vn_states(0).values()))
    world.check_replica_consistency(0)

    print("\ncounter broadcasts seen by the listener:")
    for vr, obs in listener.heard:
        for item in obs.messages:
            if item[0] == "vn":
                print(f"  virtual round {vr:2d}: {item[2]}")


if __name__ == "__main__":
    main()
