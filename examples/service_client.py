#!/usr/bin/env python3
"""Consensus as a service: a TCP client talking NDJSON to a live world.

This example starts a :class:`repro.service.ConsensusService` serving a
12-node CHA ensemble over TCP, then connects three raw-socket clients
speaking the wire protocol by hand — no client library, just one JSON
object per line — to show the whole session vocabulary:

* ``hello`` → a ``welcome`` event with a catch-up snapshot,
* ``propose`` → an ``ack`` naming the instance, then a ``decision``
  event carrying the decided value and the agreement verdict,
* a late joiner attaching mid-run and reading the recent-decision ring
  buffer instead of replaying the past,
* ``stats`` / ``bye``, and the ``world-complete`` farewell.

Everything runs in one process for convenience, but the clients use
only the public TCP surface: point them at any `repro-service` address
and they work unchanged.

Run:  python examples/service_client.py
"""

import asyncio
import json

from repro import CHA, ClusterWorld, ExperimentSpec, WorkloadSpec
from repro.experiment import MetricsSpec
from repro.service import ConsensusService, ServiceConfig


async def send(writer, **request):
    """One NDJSON request line."""
    writer.write((json.dumps(request) + "\n").encode())
    await writer.drain()


async def recv(reader, wanted=None):
    """Next event (optionally: next event of one type)."""
    while True:
        event = json.loads(await reader.readline())
        if wanted is None or event["type"] == wanted:
            return event


async def proposer(host, port, name, values, *, instance=None):
    """A closed-loop client: propose, await the ack, await the verdict.

    With ``instance`` the proposals target explicit slots; otherwise
    each lands in the next instance the world has not yet begun.
    """
    reader, writer = await asyncio.open_connection(host, port)
    await send(writer, op="hello", client=name)
    welcome = await recv(reader, "welcome")
    print(f"[{name}] attached at round {welcome['round']}")
    for offset, value in enumerate(values):
        request = {"op": "propose", "value": value, "id": value}
        if instance is not None:
            request["instance"] = instance + offset
        await send(writer, **request)
        ack = await recv(reader, "ack")
        while (decision := await recv(reader, "decision")) \
                ["instance"] != ack["instance"]:
            pass
        print(f"[{name}] instance {ack['instance']:>2} decided "
              f"{decision['value']!r} (agreement {decision['agreement']})")
    await send(writer, op="stats")
    stats = await recv(reader, "stats")
    print(f"[{name}] accepted {stats['proposals_accepted']} proposals, "
          f"dropped {stats['events_dropped']} events")
    await send(writer, op="bye")
    await recv(reader, "bye")
    writer.close()
    await writer.wait_closed()


async def late_joiner(host, port):
    """Attach mid-run: the welcome snapshot replaces replaying history."""
    await asyncio.sleep(0.12)  # let the world decide a few instances first
    reader, writer = await asyncio.open_connection(host, port)
    await send(writer, op="hello", client="late")
    welcome = await recv(reader, "welcome")
    recent = [d["value"] for d in welcome["recent_decisions"]]
    print(f"[late] joined at round {welcome['round']}: "
          f"{welcome['decided_instances']} instances already decided, "
          f"ring buffer holds {recent}")
    farewell = await recv(reader, "world-complete")
    print(f"[late] world complete: invariants {farewell['invariants']}")
    writer.close()
    await writer.wait_closed()


async def main():
    spec = ExperimentSpec(
        protocol=CHA(), world=ClusterWorld(n=12),
        workload=WorkloadSpec(instances=12),
        metrics=MetricsSpec(metrics=("rounds",),
                            invariants=("agreement", "validity")),
        keep_trace=False,
    )
    service = ConsensusService(spec, ServiceConfig(tick_interval=0.02))
    await service.serve_tcp()
    host, port = service.tcp_address
    print(f"serving {spec.world.n}-node CHA world on {host}:{port}")

    clients = asyncio.gather(
        proposer(host, port, "alice", ["apple", "apricot"]),
        proposer(host, port, "bob", ["banana"], instance=4),
        late_joiner(host, port),
    )
    world = asyncio.ensure_future(service.run_world())
    await clients
    result = await world
    await service.shutdown()
    print(f"world ran {result.metrics['rounds']} rounds; "
          f"sessions peak {service.sessions.peak}, "
          f"total opened {service.sessions.opened}")


if __name__ == "__main__":
    asyncio.run(main())
