#!/usr/bin/env python3
"""Consensus as a service: raw NDJSON clients across two live worlds.

This example starts one :class:`repro.service.ConsensusService` serving
**two** 12-node CHA worlds (``w1``, ``w2``) on a single asyncio loop,
then connects raw-socket clients speaking the wire protocol by hand —
no client library, just one JSON object per line — to show the
multi-world session vocabulary:

* ``hello`` with a ``world`` field → a ``welcome`` snapshot for that
  world; one closed-loop proposer runs against each world and their
  event streams never mix,
* ``watch_instance`` → an ``instance-state`` read-model stream
  (pending → running → decided) for one instance, delivered only to
  its watcher,
* ``attach_world`` → the same session re-binds to the other world
  mid-run (its ``seq`` continues; watches clear, they are world-local),
* ``subscribe_prefix`` → the decision feed narrows to values with a
  given prefix, filtered *before* the session queue,
* ``worlds`` → a live listing of every world's round and session count.

Everything runs in one process for convenience, but the clients use
only the public TCP surface: point them at any `repro-service` address
and they work unchanged.  The full wire reference lives in
``docs/WIRE_PROTOCOL.md``.

Run:  python examples/service_client.py
"""

import asyncio
import json

from repro import CHA, ClusterWorld, ExperimentSpec, WorkloadSpec
from repro.experiment import MetricsSpec
from repro.service import ConsensusService, ServiceConfig


async def send(writer, **request):
    """One NDJSON request line."""
    writer.write((json.dumps(request) + "\n").encode())
    await writer.drain()


async def recv(reader, wanted=None):
    """Next event (optionally: next event of one type)."""
    while True:
        event = json.loads(await reader.readline())
        if wanted is None or event["type"] == wanted:
            return event


async def proposer(host, port, name, world, values, *, instance=None):
    """A closed-loop client bound to one world: propose, await the ack,
    await the decision.  With ``instance`` the proposals target explicit
    slots; otherwise each lands in the world's next open instance."""
    reader, writer = await asyncio.open_connection(host, port)
    await send(writer, op="hello", client=name, world=world)
    welcome = await recv(reader, "welcome")
    print(f"[{name}] attached to {welcome['world']} "
          f"(spec {welcome['spec_hash'][:12]}) at round {welcome['round']}")
    for offset, value in enumerate(values):
        request = {"op": "propose", "value": value, "id": value}
        if instance is not None:
            request["instance"] = instance + offset
        await send(writer, **request)
        ack = await recv(reader, "ack")
        while (decision := await recv(reader, "decision")) \
                ["instance"] != ack["instance"]:
            pass
        print(f"[{name}] {decision['world']} instance "
              f"{ack['instance']:>2} decided {decision['value']!r} "
              f"(agreement {decision['agreement']})")
    await send(writer, op="stats")
    stats = await recv(reader, "stats")
    print(f"[{name}] accepted {stats['proposals_accepted']} proposals, "
          f"dropped {stats['events_dropped']} events")
    await send(writer, op="bye")
    await recv(reader, "bye")
    writer.close()
    await writer.wait_closed()


async def watcher(host, port):
    """The read models, across a mid-run world hop.

    Watches one w1 instance through its whole lifecycle, then re-binds
    the *same session* to w2 (``attach_world``), narrows its decision
    feed to carol's ``w2.``-prefixed values, and reads w2 to completion.
    """
    reader, writer = await asyncio.open_connection(host, port)
    await send(writer, op="hello", client="watcher", world="w1")
    await recv(reader, "welcome")
    await send(writer, op="watch_instance", instance=3, id="w3")
    ack = await recv(reader, "watching")
    print(f"[watcher] watching w1 instance 3 (currently {ack['state']})")
    while (state := await recv(reader, "instance-state"))["state"] != "decided":
        print(f"[watcher] w1 instance 3 {state['state']} "
              f"at round {state['round']}")
    print(f"[watcher] w1 instance 3 decided {state['value']!r} "
          f"at round {state['round']}")

    await send(writer, op="attach_world", world="w2", id="hop")
    attached = await recv(reader, "world-attached")
    print(f"[watcher] hopped to {attached['world']} at round "
          f"{attached['round']} (seq continues: {attached['seq']})")
    await send(writer, op="subscribe_prefix", prefix="w2.")
    await recv(reader, "subscribed")
    await send(writer, op="worlds")
    listing = await recv(reader, "worlds")
    for row in listing["worlds"]:
        print(f"[watcher] world {row['world']}: round {row['round']}, "
              f"{row['sessions']} session(s), complete={row['complete']}")

    matched = []
    while True:
        event = await recv(reader)
        if event["type"] == "decision":
            matched.append(event["value"])
        elif event["type"] == "world-complete":
            print(f"[watcher] w2 complete: prefix feed saw {matched}, "
                  f"invariants {event['invariants']}")
            break
    writer.close()
    await writer.wait_closed()


async def main():
    spec = ExperimentSpec(
        protocol=CHA(), world=ClusterWorld(n=12),
        workload=WorkloadSpec(instances=12),
        metrics=MetricsSpec(metrics=("rounds",),
                            invariants=("agreement", "validity")),
        keep_trace=False,
    )
    service = ConsensusService(
        spec, ServiceConfig(tick_interval=0.02, worlds=2))
    await service.serve_tcp()
    host, port = service.tcp_address
    print(f"serving 2 x {spec.world.n}-node CHA worlds on {host}:{port}")

    clients = asyncio.gather(
        proposer(host, port, "alice", "w1", ["apple", "apricot"]),
        proposer(host, port, "bob", "w1", ["banana"], instance=4),
        # carol's values land late in w2, so the watcher's prefix
        # subscription is active before they decide.
        proposer(host, port, "carol", "w2",
                 ["w2.kiwi", "w2.lime", "w2.mango"], instance=7),
        watcher(host, port),
    )
    worlds = asyncio.ensure_future(service.run_worlds())
    await clients
    results = await worlds
    await service.shutdown()
    for name in sorted(results):
        print(f"world {name} ran {results[name].metrics['rounds']} rounds")
    print(f"sessions peak {service.sessions.peak}, "
          f"total opened {service.sessions.opened}")


if __name__ == "__main__":
    asyncio.run(main())
