#!/usr/bin/env python3
"""CHAP under fire: watch convergent history agreement ride out a storm.

Runs a 6-node CHAP ensemble through a hostile phase — adversarial message
loss, false collision indications, an unconverged contention manager —
followed by stabilisation, and prints the per-instance colour spread and
output behaviour.  Safety (agreement, validity) holds throughout; the
moment the environment stabilises, every instance turns green
(Theorems 10, 12, 13 of the paper).

Run:  python examples/cha_under_fire.py
"""

from repro import run_cha, check_agreement, check_validity, Color
from repro.analysis import color_divergence_histogram, convergence_instance
from repro.contention import LeaderElectionCM
from repro.detectors import EventuallyAccurateDetector
from repro.net import RandomLossAdversary
from repro.types import BOTTOM

STABILIZE_AT = 60  # real round: instance 20


def main() -> None:
    run = run_cha(
        n=6, instances=40,
        adversary=RandomLossAdversary(p_drop=0.45, p_false=0.3, seed=2008),
        detector=EventuallyAccurateDetector(racc=STABILIZE_AT),
        cm=LeaderElectionCM(stable_round=STABILIZE_AT, chaos="random", seed=7),
        rcf=STABILIZE_AT,
    )

    check_validity(run.outputs, run.proposals)
    check_agreement(run.outputs)
    print("safety: validity ✓  agreement ✓ (checked over every output)")

    print("\ninstance | colours (6 nodes)            | node-0 output")
    for k in range(1, 41):
        colors = run.colors_at(k)
        cell = " ".join(c.name[0] for _, c in sorted(colors.items()))
        out = dict(run.outputs[0]).get(k, BOTTOM)
        out_text = "⊥" if out is BOTTOM else f"history(len={out.length})"
        marker = "  <- stabilised" if k == 21 else ""
        print(f"  {k:6d} | {cell:28s} | {out_text}{marker}")

    print("\ncolour divergence histogram (Property 4 says support ⊆ {0,1}):",
          color_divergence_histogram(run))
    print("liveness convergence instance:", convergence_instance(run))
    print("max message size over the whole run:",
          run.trace.max_message_size(), "bytes (constant, Theorem 14)")


if __name__ == "__main__":
    main()
