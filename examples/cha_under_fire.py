#!/usr/bin/env python3
"""CHAP under fire: watch convergent history agreement ride out a storm.

Runs a 6-node CHAP ensemble through a hostile phase — adversarial message
loss, false collision indications, an unconverged contention manager —
followed by stabilisation, and prints the per-instance colour spread and
output behaviour.  Safety (agreement, validity) holds throughout; the
moment the environment stabilises, every instance turns green
(Theorems 10, 12, 13 of the paper).

The hostile world is one declarative scenario; the spec checkers run as
invariants of the experiment itself and come back as verdicts.

Run:  python examples/cha_under_fire.py
"""

from repro import scenario
from repro.contention import LeaderElectionCM
from repro.detectors import EventuallyAccurateDetector
from repro.net import RandomLossAdversary
from repro.types import BOTTOM

STABILIZE_AT = 60  # real round: instance 20


def main() -> None:
    result = (
        scenario()
        .nodes(6).instances(40)
        .cha()
        .adversary(RandomLossAdversary(p_drop=0.45, p_false=0.3, seed=2008))
        .detector(EventuallyAccurateDetector(racc=STABILIZE_AT))
        .contention(LeaderElectionCM(stable_round=STABILIZE_AT,
                                     chaos="random", seed=7))
        .radio(rcf=STABILIZE_AT)
        .metrics("color_divergence", "convergence_instance",
                 "max_message_size")
        .invariants("validity", "agreement")
        .run()
    )
    result.assert_ok()
    run = result.cha_run
    print("safety: validity ✓  agreement ✓ (checked over every output)")

    print("\ninstance | colours (6 nodes)            | node-0 output")
    for k in range(1, 41):
        colors = run.colors_at(k)
        cell = " ".join(c.name[0] for _, c in sorted(colors.items()))
        out = dict(run.outputs[0]).get(k, BOTTOM)
        out_text = "⊥" if out is BOTTOM else f"history(len={out.length})"
        marker = "  <- stabilised" if k == 21 else ""
        print(f"  {k:6d} | {cell:28s} | {out_text}{marker}")

    print("\ncolour divergence histogram (Property 4 says support ⊆ {0,1}):",
          result.metrics["color_divergence"])
    print("liveness convergence instance:",
          result.metrics["convergence_instance"])
    print("max message size over the whole run:",
          result.metrics["max_message_size"], "bytes (constant, Theorem 14)")


if __name__ == "__main__":
    main()
