#!/usr/bin/env python3
"""Robot swarm coordination through a virtual-node planner.

Four robots start scattered; a coordinator virtual node assigns each a
slot on a circle formation and the robots converge.  The planner's
reliability comes from the emulation — individual devices may crash, the
plan does not ([4, 27] of the paper).

The deployment is one declarative scenario; the result keeps the live
:class:`~repro.vi.world.VIWorld` handle, so the run continues in stages
and the swarm can be inspected at each checkpoint.

Run:  python examples/robot_swarm.py
"""

from repro import scenario
from repro.apps import CoordinatorProgram, RobotClient
from repro.geometry import Point


def main() -> None:
    starts = [(4.0, 4.0), (-4.0, 3.0), (3.0, -4.0), (-3.0, -3.0)]
    build = (
        scenario()
        .single_region(n_replicas=3)
        .program(0, CoordinatorProgram(radius=2.0, capacity=4))
    )
    for i, start in enumerate(starts):
        build.client(
            Point(0.35, 0.05 * i),
            RobotClient(f"robot-{i}", start=start, step_length=0.35,
                        report_period=4, report_offset=i),
            name=f"robot-{i}",
        )
    result = build.virtual_rounds(10).run()
    world = result.world
    robots = [result.client(f"robot-{i}") for i in range(len(starts))]

    for checkpoint in (10, 25, 50):
        world.run_virtual_rounds(checkpoint - world.virtual_rounds_run)
        print(f"after virtual round {checkpoint}:")
        for robot in robots:
            gap = robot.distance_to_target()
            gap_text = f"{gap:5.2f}" if gap is not None else "  n/a"
            print(f"  {robot.robot_id}: at ({robot.x:5.2f}, {robot.y:5.2f})"
                  f"  target={robot.target}  distance={gap_text}")
        print()

    converged = [
        r for r in robots
        if r.distance_to_target() is not None and r.distance_to_target() < 1e-6
    ]
    print(f"{len(converged)}/{len(robots)} robots on station; "
          f"targets: {sorted({r.target for r in robots if r.target})}")
    world.check_replica_consistency(0)


if __name__ == "__main__":
    main()
