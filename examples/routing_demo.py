#!/usr/bin/env python3
"""Packet routing over a virtual-node overlay.

Four virtual nodes form a static corridor overlay; packets deposited at
one end hop mailbox-to-mailbox until the destination's region, where the
final virtual node broadcasts the delivery.  Routing over *virtual*
infrastructure reduces ad hoc routing to routing on a fixed graph —
references [12, 16, 17, 40] of the paper.

Run:  python examples/routing_demo.py
"""

from repro import scenario
from repro.apps import ReceiverClient, SenderClient, build_routing_programs
from repro.geometry import Point
from repro.workloads import vn_line


def main() -> None:
    hops = 4
    sites, replica_positions = vn_line(hops, spacing=0.5, replicas_per_vn=2)
    programs = build_routing_programs(sites, virtual_range=0.5)
    print("next-hop tables:")
    for vn_id, program in sorted(programs.items()):
        print(f"  vn{vn_id}: {program.next_hop}")

    result = (
        scenario()
        .sites(sites).replicas(replica_positions)
        .programs(programs)
        .client(Point(0.0, 0.4),
                SenderClient(0, {1: (3, "hello-end"), 6: (2, "hello-middle")}),
                name="sender")
        .client(Point(1.5, 0.4), ReceiverClient(), name="receiver-end")
        .client(Point(1.0, -0.4), ReceiverClient(), name="receiver-mid")
        .virtual_rounds(60)
        .invariants("replica_consistency")
        .run()
    )

    print("\ndeliveries at the far end (vn3's region):")
    for vr, vn, body in result.client("receiver-end").received:
        if vn == 3:
            print(f"  vr {vr:2d}: {body!r}")
    print("deliveries in the middle (vn2's region):")
    for vr, vn, body in result.client("receiver-mid").received:
        if vn == 2:
            print(f"  vr {vr:2d}: {body!r}")

    result.assert_ok()
    print("\nall virtual-node replicas consistent ✓")


if __name__ == "__main__":
    main()
