"""Canned deployment scenarios for examples, tests and benchmarks.

Each scenario builds the geometry of a world — virtual-node sites and
device placements — leaving programs and environments to the caller.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..geometry import GridSpec, Point
from ..net import RandomWaypointMobility, StaticMobility
from ..vi.schedule import VNSite

#: Canonical radii used throughout the examples and benchmarks.
R1, R2 = 1.0, 1.5


def single_region(n_replicas: int = 3, *, radius: float = 0.2) -> tuple[list[VNSite], list[Point]]:
    """One virtual node at the origin with a ring of replica devices."""
    sites = [VNSite(0, Point(0.0, 0.0))]
    devices = [
        Point(radius * math.cos(2 * math.pi * i / n_replicas),
              radius * math.sin(2 * math.pi * i / n_replicas))
        for i in range(n_replicas)
    ]
    return sites, devices


def vn_line(count: int, *, spacing: float = 0.5,
            replicas_per_vn: int = 2) -> tuple[list[VNSite], list[Point]]:
    """A corridor of virtual nodes, each within virtual range of the next.

    ``spacing <= R1/2`` keeps adjacent virtual nodes mutually audible
    (replica-to-replica distance stays within ``R1``).
    """
    sites = [VNSite(i, Point(i * spacing, 0.0)) for i in range(count)]
    devices = []
    for site in sites:
        for j in range(replicas_per_vn):
            angle = 2 * math.pi * j / replicas_per_vn + 0.3
            devices.append(Point(
                site.location.x + 0.1 * math.cos(angle),
                site.location.y + 0.1 * math.sin(angle),
            ))
    return sites, devices


def vn_grid(rows: int, cols: int, *, spacing: float = 6.0,
            replicas_per_vn: int = 2) -> tuple[list[VNSite], list[Point]]:
    """A rows x cols grid of virtual nodes (the 'regular locations
    throughout the world' deployment of Section 1.2)."""
    grid = GridSpec(rows=rows, cols=cols, spacing=spacing)
    sites = [VNSite(i, p) for i, p in enumerate(grid.sites())]
    devices = []
    for site in sites:
        for j in range(replicas_per_vn):
            angle = 2 * math.pi * j / replicas_per_vn + 0.5
            devices.append(Point(
                site.location.x + 0.12 * math.cos(angle),
                site.location.y + 0.12 * math.sin(angle),
            ))
    return sites, devices


def roaming_devices(count: int, *, arena: tuple[float, float, float, float],
                    speed: float, seed: int) -> list[RandomWaypointMobility]:
    """Random-waypoint devices roaming an arena (churn workloads)."""
    x_lo, y_lo, x_hi, y_hi = arena
    models = []
    for i in range(count):
        rng_seed = seed * 1000 + i
        start = Point(
            x_lo + (x_hi - x_lo) * ((i + 0.5) / count),
            y_lo + (y_hi - y_lo) * 0.5,
        )
        models.append(RandomWaypointMobility(
            start, arena=arena, speed=speed, seed=rng_seed,
        ))
    return models
