"""Workload generators and canned deployment scenarios."""

from .generators import (
    periodic_client_script,
    poisson_client_script,
    random_crash_schedule,
    storm_adversary,
)
from .scenarios import (
    R1,
    R2,
    roaming_devices,
    single_region,
    vn_grid,
    vn_line,
)

__all__ = [
    "R1",
    "R2",
    "periodic_client_script",
    "poisson_client_script",
    "random_crash_schedule",
    "roaming_devices",
    "single_region",
    "storm_adversary",
    "vn_grid",
    "vn_line",
]
