"""Workload generators: crash schedules, adversary scripts, client loads.

Benchmarks and soak tests need *families* of reproducible environments;
these helpers derive them from (n, seed) pairs so that every table row
names its exact configuration.

The environment generators are thin shims over the declarative
:mod:`repro.faults` primitives — one vocabulary of adversarial
behaviour, whether it is consumed imperatively (these helpers) or
declaratively (``ExperimentSpec(faults=...)``).
"""

from __future__ import annotations

from random import Random
from typing import Any, Callable

from ..faults.plan import CrashWave, MessageStorm
from ..net import CrashSchedule, RandomLossAdversary
from ..types import NodeId, Round


def random_crash_schedule(n: int, *, fraction: float, horizon: Round,
                          seed: int, spare: frozenset[NodeId] = frozenset(),
                          after_send_fraction: float = 0.25) -> CrashSchedule:
    """Crash ``fraction`` of the nodes at random rounds before ``horizon``.

    Nodes in ``spare`` never crash (at least one correct node is a
    standing assumption of the model).  A share of the crashes use the
    AFTER_SEND point, exercising the footnote-2 decide-and-die path.

    Shim over :class:`repro.faults.CrashWave` (identical seeded output).
    """
    wave = CrashWave(fraction=fraction, horizon=horizon,
                     spare=frozenset(spare),
                     after_send_fraction=after_send_fraction)
    return CrashSchedule(wave.crashes(n, seed))


def storm_adversary(*, intensity: float, seed: int) -> RandomLossAdversary:
    """A calibrated lossy channel: ``intensity`` in [0, 1] scales both the
    drop rate (up to 0.7) and the false-collision rate (up to 0.5).

    Shim over :class:`repro.faults.MessageStorm` with an unbounded
    window (identical seeded output).
    """
    return MessageStorm(
        intensity=intensity,
        detector_noise=0.5 * intensity,
        until=None,
    ).adversary(0, seed)


def periodic_client_script(*, period: int, rounds: int,
                           make_payload: Callable[[int], Any],
                           offset: int = 0) -> dict[int, Any]:
    """A client script sending ``make_payload(i)`` every ``period`` rounds."""
    if period < 1:
        raise ValueError("period must be at least 1")
    return {
        vr: make_payload(i)
        for i, vr in enumerate(range(offset, rounds, period))
    }


def poisson_client_script(*, rate: float, rounds: int,
                          make_payload: Callable[[int], Any],
                          seed: int) -> dict[int, Any]:
    """A client script with i.i.d. per-round send probability ``rate``."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must lie in [0, 1]")
    rng = Random(seed)
    script = {}
    i = 0
    for vr in range(rounds):
        if rng.random() < rate:
            script[vr] = make_payload(i)
            i += 1
    return script
