"""Workload generators: crash schedules, adversary scripts, client loads.

Benchmarks and soak tests need *families* of reproducible environments;
these helpers derive them from (n, seed) pairs so that every table row
names its exact configuration.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from ..net import Crash, CrashPoint, CrashSchedule, RandomLossAdversary
from ..types import NodeId, Round


def random_crash_schedule(n: int, *, fraction: float, horizon: Round,
                          seed: int, spare: frozenset[NodeId] = frozenset(),
                          after_send_fraction: float = 0.25) -> CrashSchedule:
    """Crash ``fraction`` of the nodes at random rounds before ``horizon``.

    Nodes in ``spare`` never crash (at least one correct node is a
    standing assumption of the model).  A share of the crashes use the
    AFTER_SEND point, exercising the footnote-2 decide-and-die path.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must lie in [0, 1]")
    rng = random.Random(seed)
    candidates = [node for node in range(n) if node not in spare]
    rng.shuffle(candidates)
    doomed = candidates[: int(round(fraction * n))]
    crashes = []
    for node in doomed:
        point = (CrashPoint.AFTER_SEND
                 if rng.random() < after_send_fraction
                 else CrashPoint.BEFORE_SEND)
        crashes.append(Crash(node, rng.randrange(1, max(horizon, 2)), point))
    return CrashSchedule(crashes)


def storm_adversary(*, intensity: float, seed: int) -> RandomLossAdversary:
    """A calibrated lossy channel: ``intensity`` in [0, 1] scales both the
    drop rate (up to 0.7) and the false-collision rate (up to 0.5)."""
    if not 0.0 <= intensity <= 1.0:
        raise ValueError("intensity must lie in [0, 1]")
    return RandomLossAdversary(
        p_drop=0.7 * intensity,
        p_false=0.5 * intensity,
        seed=seed,
    )


def periodic_client_script(*, period: int, rounds: int,
                           make_payload: Callable[[int], Any],
                           offset: int = 0) -> dict[int, Any]:
    """A client script sending ``make_payload(i)`` every ``period`` rounds."""
    if period < 1:
        raise ValueError("period must be at least 1")
    return {
        vr: make_payload(i)
        for i, vr in enumerate(range(offset, rounds, period))
    }


def poisson_client_script(*, rate: float, rounds: int,
                          make_payload: Callable[[int], Any],
                          seed: int) -> dict[int, Any]:
    """A client script with i.i.d. per-round send probability ``rate``."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must lie in [0, 1]")
    rng = random.Random(seed)
    script = {}
    i = 0
    for vr in range(rounds):
        if rng.random() < rate:
            script[vr] = make_payload(i)
            i += 1
    return script
