"""Compile a :class:`~repro.faults.plan.FaultPlan` into a live environment.

Two layers:

* :func:`materialize` — pure compilation of ``(plan, n)`` into the
  classic environment components (one composed
  :class:`~repro.net.Adversary`, one :class:`~repro.net.CrashSchedule`,
  extra mobility models, and the ``rcf``/``racc`` stabilisation rounds
  the plan needs).
* :func:`apply_faults` — rewrite an
  :class:`~repro.experiment.ExperimentSpec` carrying a ``faults=`` plan
  into an equivalent explicit spec: environment fields filled in, the
  world's ``rcf`` raised to cover the plan, a default
  eventually-accurate detector / post-stabilisation-stable contention
  manager where the caller supplied none.

:func:`repro.experiment.runner.run` calls :func:`apply_faults` on entry,
so a plan-carrying spec runs anywhere a plain spec does — including
pickled into sweep workers, where the late (per-process) materialisation
keeps serial and parallel sweeps byte-identical.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from zlib import crc32

from ..contention import LeaderElectionCM
from ..detectors import EventuallyAccurateDetector
from ..errors import ConfigurationError
from ..net.adversary import Adversary, ComposedAdversary
from ..net.mobility import MobilityModel
from ..net.node import Crash, CrashSchedule
from ..types import Round
from .plan import FaultPlan, subseed

#: Salt for the default contention manager's chaos stream.
_CM_SALT = 0xC3A05


@dataclass(frozen=True)
class MaterializedFaults:
    """The classic environment components one plan compiles to."""

    adversary: Adversary | None
    crashes: CrashSchedule | None
    mobility: tuple[MobilityModel, ...]
    #: Stabilisation rounds the plan needs the world/detector to honour.
    rcf: Round
    racc: Round


def _primitive_seed(plan_seed: int, primitive, occurrence: int) -> int:
    """A private sub-seed keyed by the primitive's *identity* (class +
    parameters, via its eval-able repr) plus its occurrence count among
    equal siblings — NOT its position.  Removing or reordering sibling
    primitives therefore never perturbs this primitive's streams, the
    property the shrinker's drop-a-primitive step leans on."""
    identity = crc32(repr(primitive).encode("utf-8"))
    return subseed(plan_seed, identity + occurrence, 0xFA017)


def materialize(plan: FaultPlan, *, n: int) -> MaterializedFaults:
    """Compile ``plan`` for an ``n``-node world.

    Deterministic, and stable under plan surgery: every primitive draws
    from a private sub-seed derived from ``(plan.seed, the primitive's
    own parameters)`` — see :func:`_primitive_seed` — so dropping or
    reordering one primitive never reseeds the others.
    """
    adversaries: list[Adversary] = []
    crash_events: list[Crash] = []
    mobility: list[MobilityModel] = []
    occurrences: dict[str, int] = {}
    for primitive in plan.primitives:
        key = repr(primitive)
        occurrence = occurrences.get(key, 0)
        occurrences[key] = occurrence + 1
        seed = _primitive_seed(plan.seed, primitive, occurrence)
        adv = primitive.adversary(n, seed)
        if adv is not None:
            adversaries.append(adv)
        crash_events.extend(primitive.crashes(n, seed))
        mobility.extend(primitive.mobility(seed))

    # Several crash waves may doom the same node; the earliest wins
    # (CrashSchedule itself insists on at most one crash per node).
    first_crash: dict[int, Crash] = {}
    for crash in crash_events:
        kept = first_crash.get(crash.node)
        if kept is None or crash.round < kept.round:
            first_crash[crash.node] = crash

    adversary: Adversary | None
    if not adversaries:
        adversary = None
    elif len(adversaries) == 1:
        adversary = adversaries[0]
    else:
        adversary = ComposedAdversary(*adversaries)
    return MaterializedFaults(
        adversary=adversary,
        crashes=CrashSchedule(first_crash.values()) if first_crash else None,
        mobility=tuple(mobility),
        rcf=plan.rcf_requirement(),
        racc=plan.racc_requirement(),
    )


def apply_faults(spec):
    """An explicit :class:`ExperimentSpec` equivalent to ``spec``.

    No-op when ``spec.faults`` is None.  Otherwise the plan is
    materialised against the spec's world and folded into the
    environment:

    * the plan adversary composes with any explicit one;
    * plan crashes fill the ``crashes`` slot (setting both explicitly
      and via the plan is a configuration error — crash schedules do
      not merge meaningfully);
    * a missing detector becomes
      :class:`~repro.detectors.EventuallyAccurateDetector` accurate from
      the plan's ``racc``, and an explicit ◇AC detector has its ``racc``
      raised to cover the plan (other detector classes are kept as-is —
      their accuracy discipline gates the plan's noise); a missing
      cluster contention manager becomes a
      :class:`~repro.contention.LeaderElectionCM` stable from the
      plan's stabilisation round;
    * the world's ``rcf`` (and, for deployed worlds,
      ``cm_stable_round``) is raised to the plan's requirement, and
      mobility-churn devices are appended to deployed worlds.
    """
    from ..experiment.spec import ClusterWorld, DeployedWorld, DeviceSpec

    plan = spec.faults
    if plan is None:
        return spec
    if not isinstance(plan, FaultPlan):
        raise ConfigurationError(
            f"faults must be a FaultPlan, got {type(plan).__name__}"
        )
    world = spec.world
    if isinstance(world, ClusterWorld):
        n = world.n
    elif isinstance(world, DeployedWorld):
        n = len(world.devices)
    else:
        raise ConfigurationError(
            "a FaultPlan needs a ClusterWorld or DeployedWorld to bite on"
        )

    mat = materialize(plan, n=n)
    env = spec.environment
    if mat.crashes is not None and env.crashes is not None:
        raise ConfigurationError(
            "both environment.crashes and a crash-bearing FaultPlan are "
            "set; crash schedules do not merge — pick one"
        )

    adversary = env.adversary
    if mat.adversary is not None:
        adversary = (mat.adversary if adversary is None
                     else ComposedAdversary(adversary, mat.adversary))
    detector = env.detector
    if detector is None:
        detector = EventuallyAccurateDetector(racc=mat.racc)
    elif (isinstance(detector, EventuallyAccurateDetector)
          and detector.racc < mat.racc):
        # Raise the accuracy round to cover the plan's noise window,
        # mirroring how the world's rcf is raised below.  Detectors of
        # other classes are kept as-is: their accuracy discipline then
        # gates how much of the plan's noise is honoured.
        detector = EventuallyAccurateDetector(racc=mat.racc)
    stab = plan.stabilization_round()
    cm = env.cm
    if cm is None and isinstance(world, ClusterWorld):
        # Chaotic (seeded-random) advice while the environment is
        # hostile, one stable leader afterwards — the paper grants real
        # back-off protocols exactly this freedom, and the pre-stability
        # interleavings are where decide-and-die schedules hide.
        cm = LeaderElectionCM(stable_round=stab, chaos="random",
                              seed=subseed(plan.seed, 0, _CM_SALT))
    env = dataclasses.replace(
        env, adversary=adversary, detector=detector, cm=cm,
        crashes=env.crashes if mat.crashes is None else mat.crashes,
    )

    if isinstance(world, ClusterWorld):
        world = dataclasses.replace(world, rcf=max(world.rcf, mat.rcf))
    else:
        devices = world.devices + tuple(
            DeviceSpec(mobility=model) for model in mat.mobility
        )
        world = dataclasses.replace(
            world, rcf=max(world.rcf, mat.rcf), devices=devices,
            cm_stable_round=max(world.cm_stable_round, stab),
        )
    # faults=None makes application idempotent: running the returned
    # spec again cannot compose the plan's interference a second time.
    return dataclasses.replace(spec, world=world, environment=env,
                               faults=None)
