"""Composable, seeded fault-plan primitives.

A :class:`FaultPlan` is an *inert, declarative* description of everything
hostile about an execution: crash waves, region partitions, message
storms, targeted sender suppression, detector-noise bursts, mobility
churn.  Plans are frozen dataclasses — they pickle, compare, print an
eval-able repr (the shrinker emits reproducers from it), and compile
down to the existing environment interfaces
(:class:`~repro.net.Adversary`, :class:`~repro.net.CrashSchedule`,
:class:`~repro.net.MobilityModel`) only when a run materialises them.

The paper's conditional guarantees shape the vocabulary: adversarial
drops are arbitrary before the channel-stabilisation round ``rcf``,
detector false positives are allowed before the accuracy round ``racc``
(Property 2), and crashes may hit at any point of a send step.  Each
primitive therefore declares the ``rcf``/``racc`` it needs
(:meth:`FaultPrimitive.rcf_requirement` /
:meth:`~FaultPrimitive.racc_requirement`), and
:func:`repro.faults.compile.materialize` raises the world's
stabilisation rounds to cover every primitive, keeping plans inside the
model — the invariants being checked remain theorems, so any violation
the explorer finds is a genuine bug.

Every primitive also knows how to :meth:`~FaultPrimitive.shrink_variants`
itself — yield strictly "smaller" copies of itself — which is what lets
:mod:`repro.faults.shrink` minimise a failing plan deterministically.
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass, replace
from random import Random
from typing import Iterable, Iterator

from ..geometry import Point
from ..net.adversary import (
    Adversary,
    NoiseBurstAdversary,
    PartitionAdversary,
    RandomLossAdversary,
    TargetedDropAdversary,
    WindowAdversary,
)
from ..net.mobility import MobilityModel, RandomWaypointMobility
from ..net.node import Crash, CrashPoint
from ..types import NodeId, Round

#: Sentinel stabilisation round for primitives whose ``until`` is None:
#: the environment is hostile "forever" (safety checks still apply, but
#: liveness cannot be expected).
NEVER: Round = 10**9


def subseed(seed: int, index: int, salt: int) -> int:
    """A stable per-primitive seed; no ``hash()`` so it survives forks."""
    return (seed * 1_000_003 + index * 7919 + salt) & 0x7FFF_FFFF


class FaultPrimitive(ABC):
    """One declarative ingredient of a :class:`FaultPlan`.

    Subclasses are frozen dataclasses whose fields are plain picklable
    values with eval-able reprs.  All hooks are pure functions of
    ``(self, n, seed)``, so the same plan materialises identically in
    every process.
    """

    def rcf_requirement(self) -> Round:
        """First round from which this primitive drops no messages."""
        return 0

    def racc_requirement(self) -> Round:
        """First round from which this primitive injects no false
        collisions."""
        return 0

    def adversary(self, n: int, seed: int) -> Adversary | None:
        """The channel-interference component, or ``None``."""
        return None

    def crashes(self, n: int, seed: int) -> tuple[Crash, ...]:
        """Crash events contributed to the schedule."""
        return ()

    def mobility(self, seed: int) -> tuple[MobilityModel, ...]:
        """Extra roaming devices (deployed worlds only)."""
        return ()

    def shrink_variants(self) -> Iterator["FaultPrimitive"]:
        """Strictly smaller copies of this primitive, best first."""
        return iter(())

    def _window_end(self, until: Round | None) -> Round:
        return NEVER if until is None else until


@dataclass(frozen=True)
class CrashWave(FaultPrimitive):
    """Crash a fraction of the nodes at seeded rounds before ``horizon``.

    ``spare`` nodes never crash (at least one correct node is a standing
    model assumption); ``after_send_fraction`` of the victims die
    *after* their send step — the footnote-2 decide-and-die path.
    """

    fraction: float = 0.3
    horizon: Round = 30
    spare: frozenset[NodeId] = frozenset({0})
    after_send_fraction: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must lie in [0, 1]")
        if not 0.0 <= self.after_send_fraction <= 1.0:
            raise ValueError("after_send_fraction must lie in [0, 1]")
        if self.horizon < 1:
            raise ValueError("horizon must be at least 1")

    def crashes(self, n: int, seed: int) -> tuple[Crash, ...]:
        rng = Random(seed)
        candidates = [node for node in range(n) if node not in self.spare]
        rng.shuffle(candidates)
        doomed = candidates[: int(round(self.fraction * n))]
        out = []
        for node in doomed:
            point = (CrashPoint.AFTER_SEND
                     if rng.random() < self.after_send_fraction
                     else CrashPoint.BEFORE_SEND)
            out.append(Crash(node, rng.randrange(1, max(self.horizon, 2)),
                             point))
        return tuple(out)

    def shrink_variants(self) -> Iterator[FaultPrimitive]:
        if self.fraction > 0.15:
            yield replace(self, fraction=round(self.fraction / 2, 3))
        if self.horizon > 4:
            yield replace(self, horizon=self.horizon // 2)


@dataclass(frozen=True)
class Partition(FaultPrimitive):
    """Split the nodes into groups that cannot hear each other.

    With explicit ``groups`` the split is scripted; otherwise nodes are
    dealt into ``n_groups`` seeded-round-robin.  Heals at ``until``.
    """

    until: Round = 30
    n_groups: int = 2
    groups: tuple[tuple[NodeId, ...], ...] | None = None

    def __post_init__(self) -> None:
        if self.until < 1:
            raise ValueError("until must be at least 1")
        if self.groups is None and self.n_groups < 2:
            raise ValueError("a partition needs at least 2 groups")

    def rcf_requirement(self) -> Round:
        return self.until

    def adversary(self, n: int, seed: int) -> Adversary:
        if self.groups is not None:
            groups: Iterable[Iterable[NodeId]] = self.groups
        else:
            nodes = list(range(n))
            Random(seed).shuffle(nodes)
            k = min(self.n_groups, max(len(nodes), 1))
            groups = [nodes[i::k] for i in range(k)]
        return PartitionAdversary(groups, until_round=self.until)

    def shrink_variants(self) -> Iterator[FaultPrimitive]:
        if self.until > 2:
            yield replace(self, until=self.until // 2)
        if self.groups is None and self.n_groups > 2:
            yield replace(self, n_groups=2)


@dataclass(frozen=True)
class MessageStorm(FaultPrimitive):
    """Seeded i.i.d. message loss in a round window.

    ``intensity`` in [0, 1] scales the per-delivery drop probability up
    to 0.7 (the calibration of the classic ``storm_adversary`` helper);
    ``detector_noise`` is an additional per-round false-collision
    probability riding on the same storm.  ``until=None`` means the
    storm never abates by itself.
    """

    intensity: float = 0.5
    detector_noise: float = 0.0
    start: Round = 0
    until: Round | None = 30

    def __post_init__(self) -> None:
        if not 0.0 <= self.intensity <= 1.0:
            raise ValueError("intensity must lie in [0, 1]")
        if not 0.0 <= self.detector_noise <= 1.0:
            raise ValueError("detector_noise must lie in [0, 1]")

    def rcf_requirement(self) -> Round:
        return self._window_end(self.until)

    def racc_requirement(self) -> Round:
        return self._window_end(self.until) if self.detector_noise else 0

    def adversary(self, n: int, seed: int) -> Adversary:
        inner = RandomLossAdversary(p_drop=0.7 * self.intensity,
                                    p_false=self.detector_noise, seed=seed)
        if self.start == 0 and self.until is None:
            return inner
        return WindowAdversary(inner, start=self.start, until=self.until)

    def shrink_variants(self) -> Iterator[FaultPrimitive]:
        if self.until is not None and self.until - self.start > 4:
            yield replace(self, until=self.start + (self.until - self.start) // 2)
        if self.intensity > 0.1:
            yield replace(self, intensity=round(self.intensity / 2, 3))
        if self.detector_noise > 0.1:
            yield replace(self, detector_noise=round(self.detector_noise / 2, 3))


@dataclass(frozen=True)
class SenderSuppression(FaultPrimitive):
    """Silence specific senders: their broadcasts reach nobody.

    The targeted-censorship attack — e.g. the would-be leader decides
    and nobody hears about it.
    """

    senders: tuple[NodeId, ...] = (0,)
    start: Round = 0
    until: Round | None = 30

    def __post_init__(self) -> None:
        if not self.senders:
            raise ValueError("suppress at least one sender")

    def rcf_requirement(self) -> Round:
        return self._window_end(self.until)

    def adversary(self, n: int, seed: int) -> Adversary:
        return TargetedDropAdversary(self.senders, start=self.start,
                                     until=self.until)

    def shrink_variants(self) -> Iterator[FaultPrimitive]:
        if len(self.senders) > 1:
            yield replace(self, senders=self.senders[: len(self.senders) // 2])
        if self.until is not None and self.until - self.start > 4:
            yield replace(self, until=self.start + (self.until - self.start) // 2)


@dataclass(frozen=True)
class DetectorNoise(FaultPrimitive):
    """Spurious collision indications (Property 2's pre-``racc`` licence).

    Each node independently sees a false positive with probability
    ``p_false`` per round while the window is open.
    """

    p_false: float = 0.3
    start: Round = 0
    until: Round | None = 30

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_false <= 1.0:
            raise ValueError("p_false must lie in [0, 1]")

    def racc_requirement(self) -> Round:
        return self._window_end(self.until)

    def adversary(self, n: int, seed: int) -> Adversary:
        return NoiseBurstAdversary(p_false=self.p_false, start=self.start,
                                   until=self.until, seed=seed)

    def shrink_variants(self) -> Iterator[FaultPrimitive]:
        if self.until is not None and self.until - self.start > 4:
            yield replace(self, until=self.start + (self.until - self.start) // 2)
        if self.p_false > 0.1:
            yield replace(self, p_false=round(self.p_false / 2, 3))


@dataclass(frozen=True)
class MobilityChurn(FaultPrimitive):
    """Roaming bystander devices criss-crossing the deployment.

    Deployed (virtual-infrastructure) worlds only: adds ``count``
    random-waypoint devices inside ``arena``, stressing join/leave and
    region hand-off.  Cluster worlds ignore it.
    """

    count: int = 2
    speed: float = 0.05
    arena: tuple[float, float, float, float] = (-1.0, -1.0, 1.0, 1.0)

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be at least 1")
        if self.speed < 0:
            raise ValueError("speed must be non-negative")

    def mobility(self, seed: int) -> tuple[MobilityModel, ...]:
        x_lo, y_lo, x_hi, y_hi = self.arena
        models = []
        for i in range(self.count):
            start = Point(
                x_lo + (x_hi - x_lo) * ((i + 0.5) / self.count),
                y_lo + (y_hi - y_lo) * 0.5,
            )
            models.append(RandomWaypointMobility(
                start, arena=self.arena, speed=self.speed,
                seed=subseed(seed, i, 0xC0FFEE),
            ))
        return tuple(models)

    def shrink_variants(self) -> Iterator[FaultPrimitive]:
        if self.count > 1:
            yield replace(self, count=self.count // 2)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, composable bundle of fault primitives.

    The plan is the *only* thing a failing run needs besides the spec it
    was attached to: materialisation is a pure function of
    ``(primitives, seed, n)``.  Attach one to an experiment with
    ``ExperimentSpec(faults=plan)`` or ``scenario().faults(plan)``.
    """

    primitives: tuple[FaultPrimitive, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for p in self.primitives:
            if not isinstance(p, FaultPrimitive):
                raise TypeError(f"not a fault primitive: {p!r}")

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    def __or__(self, other: "FaultPlan | FaultPrimitive") -> "FaultPlan":
        """Union of plans: ``storm_plan | partition_plan`` (left seed wins)."""
        if isinstance(other, FaultPrimitive):
            return replace(self, primitives=self.primitives + (other,))
        return replace(self, primitives=self.primitives + other.primitives)

    # ------------------------------------------------------------------
    # Requirements
    # ------------------------------------------------------------------

    def rcf_requirement(self) -> Round:
        return max((p.rcf_requirement() for p in self.primitives), default=0)

    def racc_requirement(self) -> Round:
        return max((p.racc_requirement() for p in self.primitives), default=0)

    def stabilization_round(self) -> Round:
        """First round from which the whole environment is benign
        (crashes excepted — those are permanent)."""
        return max(self.rcf_requirement(), self.racc_requirement())


def plan(*primitives: FaultPrimitive, seed: int = 0) -> FaultPlan:
    """Shorthand constructor: ``plan(MessageStorm(), CrashWave(), seed=3)``."""
    return FaultPlan(primitives=tuple(primitives), seed=seed)
