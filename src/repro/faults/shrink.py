"""Deterministically minimise a failing (plan, world, workload) triple.

Given an :class:`~repro.faults.explorer.ExplorationCase` that failed,
:func:`shrink_case` greedily searches for the smallest configuration
that still fails *any* invariant: fewer primitives, weaker primitives
(each knows its own :meth:`~repro.faults.plan.FaultPrimitive.shrink_variants`),
fewer nodes, a shorter horizon.  Every oracle call is a fully seeded
re-run, so the search — and therefore the reproducer it emits — is
deterministic end to end.

The violation context captured by the invariant checkers
(:attr:`~repro.errors.SpecViolation.context`) steers the horizon cut:
if the checker named the violating instance, the shrinker first tries
truncating the run just past it, which typically collapses the horizon
in one step instead of a bisection ladder.

:func:`reproducer_source` renders the minimised case as a ready-to-paste
pytest test whose only dependency is :func:`repro.faults.explorer.run_case`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterator

from .explorer import Failure, ExplorationCase, run_case_detailed
from .plan import FaultPlan

#: Smallest world the shrinker will try (one potential victim plus the
#: standing correct node).
MIN_NODES = 2
#: Smallest workload the shrinker will try.
MIN_INSTANCES = 2


@dataclass(frozen=True)
class ShrinkResult:
    """The minimised failing case plus search statistics."""

    case: ExplorationCase
    #: Oracle re-runs spent (includes unsuccessful candidates).
    attempts: int
    #: Successful shrink steps taken.
    steps: int

    @property
    def plan(self) -> FaultPlan:
        return self.case.plan

    @property
    def failure(self) -> Failure:
        assert self.case.failure is not None
        return self.case.failure


def _instance_hint(failure: Failure) -> int | None:
    """The violating instance the checker reported, if any."""
    hints = [
        value for key in ("instance", "at", "green")
        if isinstance(value := failure.context.get(key), int) and value > 0
    ]
    return max(hints, default=None)


def _candidates(case: ExplorationCase) -> Iterator[ExplorationCase]:
    """Strictly smaller configurations, most aggressive first."""
    plan, n, instances = case.plan, case.n, case.instances

    def with_(plan=plan, n=n, instances=instances):
        return dataclasses.replace(case, plan=plan, n=n, instances=instances)

    # 1. Cut the horizon to just past the violating instance.
    if case.failure is not None:
        hint = _instance_hint(case.failure)
        if hint is not None and hint + 1 < instances:
            yield with_(instances=max(hint + 1, MIN_INSTANCES))
    # 2. Drop whole primitives (later ones first: earlier primitives are
    #    usually the ones that armed the violation window).
    for i in reversed(range(len(plan.primitives))):
        pruned = plan.primitives[:i] + plan.primitives[i + 1:]
        yield with_(plan=dataclasses.replace(plan, primitives=pruned))
    # 3. Shrink the world.
    if n // 2 >= MIN_NODES and n // 2 < n:
        yield with_(n=n // 2)
    if n - 1 >= MIN_NODES:
        yield with_(n=n - 1)
    # 4. Shrink the horizon.
    if instances // 2 >= MIN_INSTANCES:
        yield with_(instances=instances // 2)
    if instances - 1 >= MIN_INSTANCES:
        yield with_(instances=instances - 1)
    # 5. Weaken each primitive in place.
    for i, primitive in enumerate(plan.primitives):
        for variant in primitive.shrink_variants():
            prims = plan.primitives[:i] + (variant,) + plan.primitives[i + 1:]
            yield with_(plan=dataclasses.replace(plan, primitives=prims))


def shrink_case(case: ExplorationCase, *,
                max_attempts: int = 250) -> ShrinkResult:
    """Greedy deterministic minimisation of a failing exploration case.

    Takes the first improving candidate at each step and restarts the
    candidate scan from it, until no candidate still fails (a local
    minimum) or the attempt budget runs out.  The failing invariant may
    change along the way — any violation keeps a candidate.
    """
    if case.failure is None:
        raise ValueError("shrink_case needs a failing case")
    # Re-run the starting point so the verdict set matches this oracle.
    best = run_case_detailed(case.protocol, case.plan, n=case.n,
                             instances=case.instances)
    if best.failure is None:
        raise ValueError(
            "the case does not fail under re-execution; is the plan seeded?"
        )
    attempts, steps = 1, 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _candidates(best):
            if attempts >= max_attempts:
                break
            attempts += 1
            rerun = run_case_detailed(
                candidate.protocol, candidate.plan,
                n=candidate.n, instances=candidate.instances,
            )
            if rerun.failure is not None:
                best = rerun
                steps += 1
                improved = True
                break
    return ShrinkResult(case=best, attempts=attempts, steps=steps)


# ----------------------------------------------------------------------
# Reproducer emission
# ----------------------------------------------------------------------

def reproducer_source(result: ShrinkResult | ExplorationCase, *,
                      test_name: str = "test_fault_reproducer") -> str:
    """A runnable pytest module reproducing the (shrunk) failure.

    The plan's repr is eval-able (all primitives are frozen dataclasses
    of plain values), so the emitted file pins the exact seeded
    configuration and asserts the violation still fires.
    """
    case = result.case if isinstance(result, ShrinkResult) else result
    if case.failure is None:
        raise ValueError("only failing cases can be emitted as reproducers")
    names = sorted({type(p).__name__ for p in case.plan.primitives})
    imports = ", ".join(["FaultPlan"] + names)
    return f'''"""Auto-generated by repro.faults.shrink — a pinned, seeded reproducer.

Observed failure: {case.failure}
"""

from repro.faults import {imports}
from repro.faults.explorer import run_case


def {test_name}():
    plan = {case.plan!r}
    failure = run_case({case.protocol!r}, plan, n={case.n}, instances={case.instances})
    assert failure is not None, "the fault plan no longer reproduces the violation"
'''


def write_reproducer(result: ShrinkResult | ExplorationCase,
                     path: str) -> str:
    """Write :func:`reproducer_source` to ``path`` (returns the path)."""
    source = reproducer_source(result)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(source)
    return path
