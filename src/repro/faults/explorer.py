"""Fan seeded fault plans across every protocol, checking the spec.

The explorer is the systematic bug-hunting loop the ad-hoc soak tests
used to hand-wire: take a set of :class:`~repro.faults.FaultPlan`\\ s,
reseed each across a seed range, run every protocol under them through
:mod:`repro.experiment`, and check the executable CHA specification
(Validity/Agreement) plus every applicable glass-box lemma invariant on
each run.  Anything that fails comes back as an
:class:`ExplorationCase` ready to hand to :func:`repro.faults.shrink.shrink_case`.

``run_case`` is deliberately tiny — ``(protocol name, plan, n,
instances) -> failure-or-None`` — because it doubles as the oracle the
shrinker minimises against *and* the entrypoint emitted reproducers
call.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..core.cha import ROUNDS_PER_INSTANCE
from ..errors import ConfigurationError, ReproError
from ..experiment.spec import (
    CHA,
    CheckpointCHA,
    ClusterWorld,
    DeployedWorld,
    DeviceSpec,
    ExperimentSpec,
    MetricsSpec,
    NaiveRSM,
    TwoPhaseCHA,
    VIEmulation,
    WorkloadSpec,
)
from .plan import NEVER, FaultPlan

#: Slack instances run after the plan's stabilisation round so liveness
#: has room to resume and safety checkers see post-recovery behaviour.
POST_STABILIZATION_INSTANCES = 12


def _count_reducer(state: int, k: int, value: Any) -> int:
    """Module-level (hence picklable) checkpoint reducer: count decisions."""
    return state + 1


def liveness_deadline(plan: FaultPlan, instances: int, *,
                      rpi: int = ROUNDS_PER_INSTANCE) -> int | None:
    """The instance by which a faulted run must have converged.

    The first instance wholly after the plan's stabilisation round,
    plus slack for the instance poisoned mid-stabilisation to flush.
    ``None`` (liveness unchecked) when the plan never stabilises or the
    workload ends before the deadline.
    """
    stab = plan.stabilization_round()
    if stab >= NEVER:
        return None
    deadline = stab // rpi + 3
    return deadline if deadline <= instances else None


def _cluster_spec(protocol: Any, plan: FaultPlan, n: int,
                  instances: int) -> ExperimentSpec:
    from ..baselines.two_phase_cha import TWO_PHASE_ROUNDS

    # liveness_by arms the liveness invariant inside the "all" expansion
    # for the full-history protocols (ignored where not applicable).
    # The deadline must be measured in the protocol's own instance
    # cadence, or it lands inside the hostile window.
    rpi = (TWO_PHASE_ROUNDS if isinstance(protocol, TwoPhaseCHA)
           else ROUNDS_PER_INSTANCE)
    return ExperimentSpec(
        protocol=protocol,
        world=ClusterWorld(n=n),
        workload=WorkloadSpec(instances=instances),
        metrics=MetricsSpec(invariants=("all",),
                            liveness_by=liveness_deadline(plan, instances,
                                                          rpi=rpi)),
        faults=plan,
        keep_trace=False,
    )


def _vi_spec(plan: FaultPlan, n: int, instances: int) -> ExperimentSpec:
    from ..geometry import Point
    from ..vi.client import ScriptedClient
    from ..vi.program import CounterProgram
    from ..workloads.scenarios import single_region

    sites, positions = single_region(n_replicas=max(n - 1, 2))
    devices = tuple(DeviceSpec(mobility=p) for p in positions) + (
        DeviceSpec(
            mobility=Point(0.4, 0.0),
            client=ScriptedClient({vr: ("add", 1)
                                   for vr in range(1, instances, 2)}),
            initially_active=False,
        ),
    )
    # Post-stabilisation liveness: the final quarter of the virtual
    # rounds must all be live (the hostile window is sized to end well
    # before it — cf. default_instances).
    return ExperimentSpec(
        protocol=VIEmulation(programs={0: CounterProgram()}),
        world=DeployedWorld(sites=tuple(sites), devices=devices),
        workload=WorkloadSpec(virtual_rounds=instances),
        metrics=MetricsSpec(invariants=("replica_consistency", "liveness"),
                            liveness_by=max(1, (3 * instances) // 4)),
        faults=plan,
        keep_trace=False,
    )


#: Protocol name -> spec factory ``(plan, n, instances) -> ExperimentSpec``.
#: Every cluster entry runs with ``invariants=("all",)`` — the black-box
#: CHA spec (validity, agreement) plus each applicable lemma checker.
PROTOCOLS: dict[str, Callable[[FaultPlan, int, int], ExperimentSpec]] = {
    "cha": lambda plan, n, k: _cluster_spec(CHA(), plan, n, k),
    "checkpoint-cha": lambda plan, n, k: _cluster_spec(
        CheckpointCHA(reducer=_count_reducer, initial_state=0), plan, n, k),
    "naive-rsm": lambda plan, n, k: _cluster_spec(NaiveRSM(), plan, n, k),
    "two-phase-cha": lambda plan, n, k: _cluster_spec(TwoPhaseCHA(), plan, n, k),
    "vi": _vi_spec,
}

#: Protocols believed correct: the explorer finding a violation here is
#: a genuine bug (the two-phase ablation is *expected* to break).
SOUND_PROTOCOLS = ("cha", "checkpoint-cha", "naive-rsm", "vi")


@dataclass(frozen=True)
class Failure:
    """One invariant violation (or crash) observed by the explorer."""

    invariant: str
    message: str
    #: The checker's reproduction context (violating instance, nodes...).
    context: Mapping[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"{self.invariant}: {self.message}"


@dataclass(frozen=True)
class ExplorationCase:
    """One (protocol, plan, world size, workload) exploration outcome."""

    protocol: str
    plan: FaultPlan
    n: int
    instances: int
    verdicts: Mapping[str, str]
    failure: Failure | None

    @property
    def failed(self) -> bool:
        return self.failure is not None


def default_instances(plan: FaultPlan, *,
                      rpi: int = ROUNDS_PER_INSTANCE) -> int:
    """Enough instances to outlast the plan's hostile window.

    Runs extend :data:`POST_STABILIZATION_INSTANCES` instances past the
    stabilisation round so recovery behaviour is exercised too; plans
    that never stabilise get the slack alone.
    """
    stab = plan.stabilization_round()
    if stab >= NEVER:
        stab = 0
    return math.ceil(stab / rpi) + POST_STABILIZATION_INSTANCES


def run_case_detailed(protocol: str, plan: FaultPlan, *, n: int,
                      instances: int) -> ExplorationCase:
    """Run one protocol under one plan; never raises on spec violations."""
    try:
        factory = PROTOCOLS[protocol]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {protocol!r}; known: {sorted(PROTOCOLS)}"
        ) from None
    from ..experiment.runner import run

    spec = factory(plan, n, instances)
    try:
        result = run(spec)
    except ReproError as exc:
        # The protocol itself blew up (not a checker): still a finding.
        return ExplorationCase(
            protocol=protocol, plan=plan, n=n, instances=instances,
            verdicts={}, failure=Failure(
                invariant="exception",
                message=f"{type(exc).__name__}: {exc}",
                context=dict(getattr(exc, "context", {}) or {}),
            ),
        )
    failure = None
    for name, verdict in result.invariants.items():
        if verdict != "ok":
            failure = Failure(
                invariant=name, message=verdict,
                context=dict(result.violation_context.get(name, {})),
            )
            break
    return ExplorationCase(
        protocol=protocol, plan=plan, n=n, instances=instances,
        verdicts=dict(result.invariants), failure=failure,
    )


def run_case(protocol: str, plan: FaultPlan, *, n: int,
             instances: int) -> str | None:
    """The one-line oracle: first failure as a string, or ``None``.

    Emitted reproducers call exactly this.
    """
    case = run_case_detailed(protocol, plan, n=n, instances=instances)
    return str(case.failure) if case.failure is not None else None


@dataclass
class ExplorationReport:
    """Everything one :func:`explore` sweep observed."""

    cases: list[ExplorationCase]

    @property
    def failures(self) -> list[ExplorationCase]:
        return [c for c in self.cases if c.failed]

    @property
    def unsound_failures(self) -> list[ExplorationCase]:
        """Failures of protocols believed correct — genuine bugs."""
        return [c for c in self.failures if c.protocol in SOUND_PROTOCOLS]

    def summary(self) -> str:
        lines = [f"{len(self.cases)} runs, {len(self.failures)} failures"]
        for case in self.failures:
            lines.append(
                f"  {case.protocol} n={case.n} instances={case.instances} "
                f"seed={case.plan.seed}: {case.failure}"
            )
        return "\n".join(lines)


def explore(plans: Iterable[FaultPlan], *,
            protocols: Sequence[str] = ("cha", "checkpoint-cha",
                                        "naive-rsm", "two-phase-cha"),
            seeds: Iterable[int] = (0, 1, 2),
            n: int = 5,
            instances: int | None = None) -> ExplorationReport:
    """Fan every plan across ``seeds`` x ``protocols``.

    ``instances=None`` sizes each run to the plan via
    :func:`default_instances`.  Deterministic: cases are produced in
    plan-major, seed-middle, protocol-minor order.
    """
    seeds = tuple(seeds)
    cases = []
    for base_plan in plans:
        for seed in seeds:
            plan = base_plan.with_seed(seed)
            budget = (default_instances(plan) if instances is None
                      else instances)
            for protocol in protocols:
                cases.append(run_case_detailed(
                    protocol, plan, n=n, instances=budget,
                ))
    return ExplorationReport(cases=cases)
