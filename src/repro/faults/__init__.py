"""Deterministic fault injection: plans, exploration, shrinking repros.

The paper's guarantees are *conditional* on environment behaviour —
collisions are arbitrary before ``rcf``, detector false positives are
allowed before ``racc``, crashes may hit at any point of a send step.
This package makes that environment a first-class, declarative object:

* :mod:`~repro.faults.plan` — composable seeded **fault primitives**
  (:class:`CrashWave`, :class:`Partition`, :class:`MessageStorm`,
  :class:`SenderSuppression`, :class:`DetectorNoise`,
  :class:`MobilityChurn`) bundled into a :class:`FaultPlan` that any
  :class:`~repro.experiment.ExperimentSpec` carries via ``faults=``.
* :mod:`~repro.faults.compile` — compiles a plan down to the classic
  :class:`~repro.net.Adversary` / :class:`~repro.net.CrashSchedule` /
  :class:`~repro.net.MobilityModel` interfaces, raising the world's
  stabilisation rounds so plans stay inside the model.
* :mod:`~repro.faults.explorer` — fans seeded plans across every
  protocol, checking the executable CHA spec plus every lemma
  invariant on each run.
* :mod:`~repro.faults.shrink` — minimises a failing case (fewer faults,
  fewer nodes, shorter horizon) and emits a runnable pytest reproducer.

Quickstart::

    from repro.faults import (DetectorNoise, MessageStorm, explore, plan,
                              shrink_case, reproducer_source)

    report = explore([plan(MessageStorm(intensity=0.5, until=30),
                           DetectorNoise(p_false=0.4, until=30))],
                     seeds=range(5))
    assert not report.unsound_failures, report.summary()

    # The two-phase ablation *does* fail; pin it down:
    case = next(c for c in report.failures if c.protocol == "two-phase-cha")
    print(reproducer_source(shrink_case(case)))
"""

from .compile import MaterializedFaults, apply_faults, materialize
from .explorer import (
    ExplorationCase,
    ExplorationReport,
    Failure,
    PROTOCOLS,
    SOUND_PROTOCOLS,
    default_instances,
    explore,
    run_case,
    run_case_detailed,
)
from .plan import (
    NEVER,
    CrashWave,
    DetectorNoise,
    FaultPlan,
    FaultPrimitive,
    MessageStorm,
    MobilityChurn,
    Partition,
    SenderSuppression,
    plan,
    subseed,
)
from .shrink import (
    ShrinkResult,
    reproducer_source,
    shrink_case,
    write_reproducer,
)

__all__ = [
    "NEVER",
    "PROTOCOLS",
    "SOUND_PROTOCOLS",
    "CrashWave",
    "DetectorNoise",
    "ExplorationCase",
    "ExplorationReport",
    "Failure",
    "FaultPlan",
    "FaultPrimitive",
    "MaterializedFaults",
    "MessageStorm",
    "MobilityChurn",
    "Partition",
    "SenderSuppression",
    "ShrinkResult",
    "apply_faults",
    "default_instances",
    "explore",
    "materialize",
    "plan",
    "reproducer_source",
    "run_case",
    "run_case_detailed",
    "shrink_case",
    "subseed",
    "write_reproducer",
]
