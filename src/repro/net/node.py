"""The process interface run by the simulator, and crash-fault plumbing.

Every protocol in this library (CHAP replicas, emulation replicas, clients,
baselines) implements :class:`Process`.  A round proceeds in three steps
for every alive node:

1. :meth:`Process.contend` — name the contention manager the node contends
   for this round (or ``None``).  The simulator collects all contenders,
   asks each contention manager for advice, and passes the verdict down.
2. :meth:`Process.send` — given the advice, return a payload to broadcast
   or ``None`` to listen.
3. :meth:`Process.deliver` — receive the round's messages plus the
   collision-detector flag, and update local state.

Crash faults follow the paper: "Nodes can fail by crashing at any point
during the execution".  A :class:`CrashSchedule` can stop a node either
*before* its send step (it falls silent immediately) or *after* it (its
last broadcast escapes but it never sees the round's receptions) — the
latter is exactly the footnote-2 scenario where a node decides, informs
nobody, and dies.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..types import NodeId, Round
from .messages import Message, RoundBatch


class Process(ABC):
    """A deterministic per-node protocol driven by the simulator."""

    def contend(self, r: Round) -> str | None:
        """Name of the contention manager contended for in round ``r``.

        The default never contends; protocols that need channel access
        through a contention manager override this.
        """
        return None

    @abstractmethod
    def send(self, r: Round, active: bool) -> Any | None:
        """Payload to broadcast in round ``r``, or ``None`` to listen.

        ``active`` is the contention-manager advice (always ``False`` for
        non-contenders).  Property 3(3) guarantees advice only goes to
        contenders.
        """

    @abstractmethod
    def deliver(self, r: Round, messages: tuple[Message, ...], collision: bool) -> None:
        """Receive round ``r``'s messages and collision indication."""

    def deliver_batch(self, r: Round, messages: tuple[Message, ...],
                      collision: bool, batch: "RoundBatch") -> None:
        """Batched-engine delivery: :meth:`deliver` plus a shared
        per-round :class:`~repro.net.messages.RoundBatch`.

        ``batch`` carries the round's broadcasts decoded *once* for all
        receivers, so overrides can skip per-receiver attribute scans
        (e.g. tag filtering) whose outcome the batch already knows.  An
        override must update state exactly as :meth:`deliver` would —
        the differential suite pins the two paths byte-identical.  The
        default simply forwards; the simulator samples the override at
        :meth:`Simulator.add_node` time (like :meth:`contend`, gaining a
        ``deliver_batch`` attribute after registration is unsupported).
        """
        self.deliver(r, messages, collision)


class CrashPoint(enum.Enum):
    """When within a round a crash takes effect."""

    #: The node does not broadcast and does not receive in the round.
    BEFORE_SEND = "before_send"
    #: The node broadcasts (if it chose to) but never receives the round.
    AFTER_SEND = "after_send"


@dataclass(frozen=True, slots=True)
class Crash:
    """A single crash event."""

    node: NodeId
    round: Round
    point: CrashPoint = CrashPoint.BEFORE_SEND


class CrashSchedule:
    """A set of crash events, at most one per node."""

    def __init__(self, crashes: Iterable[Crash] = ()) -> None:
        self._by_node: dict[NodeId, Crash] = {}
        for crash in crashes:
            if crash.node in self._by_node:
                raise ValueError(f"node {crash.node} crashes twice")
            self._by_node[crash.node] = crash

    @classmethod
    def of(cls, schedule: Mapping[NodeId, Round]) -> "CrashSchedule":
        """Shorthand: every listed node crashes before send in its round."""
        return cls(Crash(node, r) for node, r in schedule.items())

    def crash_for(self, node: NodeId) -> Crash | None:
        return self._by_node.get(node)

    def crashed_by(self, node: NodeId, r: Round) -> bool:
        """True when ``node`` has fully crashed strictly before round ``r``
        begins (i.e. it takes no action at all in round ``r``)."""
        crash = self._by_node.get(node)
        if crash is None:
            return False
        if crash.point is CrashPoint.BEFORE_SEND:
            return r >= crash.round
        return r > crash.round

    def sends_in(self, node: NodeId, r: Round) -> bool:
        """True when ``node`` still executes its send step in round ``r``."""
        crash = self._by_node.get(node)
        if crash is None:
            return True
        if crash.point is CrashPoint.BEFORE_SEND:
            return r < crash.round
        return r <= crash.round

    def receives_in(self, node: NodeId, r: Round) -> bool:
        """True when ``node`` still executes its deliver step in round ``r``."""
        crash = self._by_node.get(node)
        if crash is None:
            return True
        return r < crash.round

    def __iter__(self):
        return iter(self._by_node.values())

    def __len__(self) -> int:
        return len(self._by_node)
