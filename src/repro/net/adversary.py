"""Channel adversaries: pre-stabilisation message loss and false collisions.

Section 2 of the paper allows collisions "for arbitrary and unpredictable
reasons" before the stabilisation round ``rcf``; after ``rcf`` only channel
contention loses messages.  Independently, the collision detector may emit
false positives before its own accuracy round ``racc`` (Property 2).

The adversary owns both knobs:

* :meth:`Adversary.drops` — which tentative deliveries to destroy in a
  round (exercised only while ``r < rcf``; the channel enforces this).
* :meth:`Adversary.false_collision` — whether to inject a spurious
  collision indication at a node (exercised only while ``r < racc``; the
  detector enforces this).

Adversaries see sender ids and full delivery maps: the adversary is part
of the *environment*, not of the anonymous protocol.
"""

from __future__ import annotations

# Only the seedable generator class is imported: every adversary owns a
# private random.Random so composed adversaries can never couple through
# (or perturb) the process-global RNG stream.
from random import Random
from abc import ABC, abstractmethod
from typing import Iterable, Mapping

from ..types import NodeId, Round
from .messages import Message


class Adversary(ABC):
    """Decides message drops and spurious collision indications."""

    @abstractmethod
    def drops(self, r: Round,
              tentative: Mapping[NodeId, tuple[Message, ...]]) -> dict[NodeId, frozenset[NodeId]]:
        """Senders whose message each receiver should lose in round ``r``.

        ``tentative`` maps each receiver to the messages the physical
        channel would deliver absent adversarial interference.  The return
        value maps receiver ids to the set of *sender* ids to suppress.
        Receivers absent from the result lose nothing.
        """

    @abstractmethod
    def false_collision(self, r: Round, node: NodeId) -> bool:
        """Whether to inject a spurious collision indication at ``node``."""


class NoAdversary(Adversary):
    """The benign environment: no drops, no false collisions."""

    def drops(self, r, tentative):  # noqa: D102 - interface documented above
        return {}

    def false_collision(self, r, node):  # noqa: D102
        return False


class RandomLossAdversary(Adversary):
    """Seeded i.i.d. loss: each (receiver, message) pair drops with ``p_drop``.

    Each dropped delivery is also a candidate false-collision trigger; in
    addition, ``p_false`` injects collision indications out of thin air to
    stress eventual accuracy.
    """

    def __init__(self, *, p_drop: float, p_false: float = 0.0, seed: int = 0) -> None:
        if not (0.0 <= p_drop <= 1.0 and 0.0 <= p_false <= 1.0):
            raise ValueError("probabilities must lie in [0, 1]")
        self._p_drop = p_drop
        self._p_false = p_false
        self._rng = Random(seed)
        # Independent stream for false collisions so that drop decisions do
        # not perturb false-collision decisions across configurations.
        self._rng_false = Random(seed ^ 0x5F5E_100)

    def drops(self, r, tentative):
        out: dict[NodeId, frozenset[NodeId]] = {}
        for receiver in sorted(tentative):
            doomed = frozenset(
                msg.sender
                for msg in tentative[receiver]
                if self._rng.random() < self._p_drop
            )
            if doomed:
                out[receiver] = doomed
        return out

    def false_collision(self, r, node):
        return self._rng_false.random() < self._p_false


class ScriptedAdversary(Adversary):
    """Fully scripted interference for targeted tests.

    ``drop_script`` maps ``(round, receiver)`` to either the string
    ``"all"`` (lose everything) or an iterable of sender ids to lose.
    ``false_script`` is a set of ``(round, node)`` pairs at which a
    spurious collision indication fires.
    """

    ALL = "all"

    def __init__(self,
                 drop_script: Mapping[tuple[Round, NodeId], object] | None = None,
                 false_script: Iterable[tuple[Round, NodeId]] | None = None) -> None:
        self._drop_script = dict(drop_script or {})
        self._false_script = set(false_script or ())

    def drops(self, r, tentative):
        out: dict[NodeId, frozenset[NodeId]] = {}
        for receiver, msgs in tentative.items():
            directive = self._drop_script.get((r, receiver))
            if directive is None:
                continue
            if directive == self.ALL:
                out[receiver] = frozenset(m.sender for m in msgs)
            else:
                wanted = frozenset(directive)  # type: ignore[arg-type]
                out[receiver] = frozenset(
                    m.sender for m in msgs if m.sender in wanted
                )
        return out

    def false_collision(self, r, node):
        return (r, node) in self._false_script


class PartitionAdversary(Adversary):
    """Splits the nodes into groups that cannot hear each other.

    While ``r < until_round``, a message crossing group boundaries is
    dropped.  This reproduces the footnote-2 scenario of the paper: two
    replicas that temporarily cannot exchange messages, one of which may
    decide and crash.
    """

    def __init__(self, groups: Iterable[Iterable[NodeId]], *, until_round: Round) -> None:
        self._group_of: dict[NodeId, int] = {}
        for idx, group in enumerate(groups):
            for node in group:
                if node in self._group_of:
                    raise ValueError(f"node {node} appears in two partition groups")
                self._group_of[node] = idx
        self._until = until_round

    def drops(self, r, tentative):
        if r >= self._until:
            return {}
        out: dict[NodeId, frozenset[NodeId]] = {}
        for receiver, msgs in tentative.items():
            rg = self._group_of.get(receiver)
            doomed = frozenset(
                m.sender for m in msgs
                if self._group_of.get(m.sender) != rg
            )
            if doomed:
                out[receiver] = doomed
        return out

    def false_collision(self, r, node):
        return False


class TargetedDropAdversary(Adversary):
    """Suppresses every delivery from a fixed set of senders.

    While ``start <= r < until``, any message whose sender is in
    ``senders`` is destroyed at every receiver — the "jam one node's
    transmitter" attack.  With ``until=None`` the suppression never ends
    on its own (the channel still stops honouring it at ``rcf``).
    """

    def __init__(self, senders: Iterable[NodeId], *,
                 start: Round = 0, until: Round | None = None) -> None:
        self._senders = frozenset(senders)
        self._start = start
        self._until = until

    def _active(self, r: Round) -> bool:
        return r >= self._start and (self._until is None or r < self._until)

    def drops(self, r, tentative):
        if not self._active(r):
            return {}
        out: dict[NodeId, frozenset[NodeId]] = {}
        for receiver, msgs in tentative.items():
            doomed = frozenset(
                m.sender for m in msgs if m.sender in self._senders
            )
            if doomed:
                out[receiver] = doomed
        return out

    def false_collision(self, r, node):
        return False


class NoiseBurstAdversary(Adversary):
    """Pure detector noise: seeded false-collision bursts, no drops.

    While ``start <= r < until``, each node independently receives a
    spurious collision indication with probability ``p_false`` per round.
    Owns a private :class:`random.Random` keyed by ``(seed, node)`` so the
    per-node streams are independent of visitation order.
    """

    def __init__(self, *, p_false: float, start: Round = 0,
                 until: Round | None = None, seed: int = 0) -> None:
        if not 0.0 <= p_false <= 1.0:
            raise ValueError("p_false must lie in [0, 1]")
        self._p_false = p_false
        self._start = start
        self._until = until
        self._seed = seed
        self._rngs: dict[NodeId, Random] = {}

    def drops(self, r, tentative):
        return {}

    def false_collision(self, r, node):
        if r < self._start or (self._until is not None and r >= self._until):
            return False
        rng = self._rngs.get(node)
        if rng is None:
            rng = self._rngs[node] = Random((self._seed << 20) ^ (node + 1))
        return rng.random() < self._p_false


class WindowAdversary(Adversary):
    """Gates another adversary to a round window ``[start, until)``.

    Outside the window the inner adversary is not consulted at all, so
    its RNG streams advance only while the window is open — a windowed
    run is a prefix-faithful replay of the unwindowed one.
    """

    def __init__(self, inner: Adversary, *, start: Round = 0,
                 until: Round | None = None) -> None:
        self._inner = inner
        self._start = start
        self._until = until

    def _active(self, r: Round) -> bool:
        return r >= self._start and (self._until is None or r < self._until)

    def drops(self, r, tentative):
        return self._inner.drops(r, tentative) if self._active(r) else {}

    def false_collision(self, r, node):
        return self._inner.false_collision(r, node) if self._active(r) else False


class ComposedAdversary(Adversary):
    """Union of several adversaries: drops and false collisions combine.

    Every part is consulted every round (no short-circuiting), so seeded
    parts consume their private RNG streams at the same rate whether or
    not a sibling already decided to interfere — composition never
    perturbs a part's behaviour relative to running it alone.
    """

    def __init__(self, *parts: Adversary) -> None:
        self._parts = parts

    @property
    def parts(self) -> tuple[Adversary, ...]:
        return tuple(self._parts)

    def drops(self, r, tentative):
        out: dict[NodeId, frozenset[NodeId]] = {}
        for part in self._parts:
            for receiver, senders in part.drops(r, tentative).items():
                out[receiver] = out.get(receiver, frozenset()) | senders
        return out

    def false_collision(self, r, node):
        # Evaluate every part (no any()-short-circuit): parts with seeded
        # state must see the same query sequence regardless of siblings.
        fired = [part.false_collision(r, node) for part in self._parts]
        return any(fired)
