"""Channel adversaries: pre-stabilisation message loss and false collisions.

Section 2 of the paper allows collisions "for arbitrary and unpredictable
reasons" before the stabilisation round ``rcf``; after ``rcf`` only channel
contention loses messages.  Independently, the collision detector may emit
false positives before its own accuracy round ``racc`` (Property 2).

The adversary owns both knobs:

* :meth:`Adversary.drops` — which tentative deliveries to destroy in a
  round (exercised only while ``r < rcf``; the channel enforces this).
* :meth:`Adversary.false_collision` — whether to inject a spurious
  collision indication at a node (exercised only while ``r < racc``; the
  detector enforces this).

Adversaries see sender ids and full delivery maps: the adversary is part
of the *environment*, not of the anonymous protocol.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Iterable, Mapping

from ..types import NodeId, Round
from .messages import Message


class Adversary(ABC):
    """Decides message drops and spurious collision indications."""

    @abstractmethod
    def drops(self, r: Round,
              tentative: Mapping[NodeId, tuple[Message, ...]]) -> dict[NodeId, frozenset[NodeId]]:
        """Senders whose message each receiver should lose in round ``r``.

        ``tentative`` maps each receiver to the messages the physical
        channel would deliver absent adversarial interference.  The return
        value maps receiver ids to the set of *sender* ids to suppress.
        Receivers absent from the result lose nothing.
        """

    @abstractmethod
    def false_collision(self, r: Round, node: NodeId) -> bool:
        """Whether to inject a spurious collision indication at ``node``."""


class NoAdversary(Adversary):
    """The benign environment: no drops, no false collisions."""

    def drops(self, r, tentative):  # noqa: D102 - interface documented above
        return {}

    def false_collision(self, r, node):  # noqa: D102
        return False


class RandomLossAdversary(Adversary):
    """Seeded i.i.d. loss: each (receiver, message) pair drops with ``p_drop``.

    Each dropped delivery is also a candidate false-collision trigger; in
    addition, ``p_false`` injects collision indications out of thin air to
    stress eventual accuracy.
    """

    def __init__(self, *, p_drop: float, p_false: float = 0.0, seed: int = 0) -> None:
        if not (0.0 <= p_drop <= 1.0 and 0.0 <= p_false <= 1.0):
            raise ValueError("probabilities must lie in [0, 1]")
        self._p_drop = p_drop
        self._p_false = p_false
        self._rng = random.Random(seed)
        # Independent stream for false collisions so that drop decisions do
        # not perturb false-collision decisions across configurations.
        self._rng_false = random.Random(seed ^ 0x5F5E_100)

    def drops(self, r, tentative):
        out: dict[NodeId, frozenset[NodeId]] = {}
        for receiver in sorted(tentative):
            doomed = frozenset(
                msg.sender
                for msg in tentative[receiver]
                if self._rng.random() < self._p_drop
            )
            if doomed:
                out[receiver] = doomed
        return out

    def false_collision(self, r, node):
        return self._rng_false.random() < self._p_false


class ScriptedAdversary(Adversary):
    """Fully scripted interference for targeted tests.

    ``drop_script`` maps ``(round, receiver)`` to either the string
    ``"all"`` (lose everything) or an iterable of sender ids to lose.
    ``false_script`` is a set of ``(round, node)`` pairs at which a
    spurious collision indication fires.
    """

    ALL = "all"

    def __init__(self,
                 drop_script: Mapping[tuple[Round, NodeId], object] | None = None,
                 false_script: Iterable[tuple[Round, NodeId]] | None = None) -> None:
        self._drop_script = dict(drop_script or {})
        self._false_script = set(false_script or ())

    def drops(self, r, tentative):
        out: dict[NodeId, frozenset[NodeId]] = {}
        for receiver, msgs in tentative.items():
            directive = self._drop_script.get((r, receiver))
            if directive is None:
                continue
            if directive == self.ALL:
                out[receiver] = frozenset(m.sender for m in msgs)
            else:
                wanted = frozenset(directive)  # type: ignore[arg-type]
                out[receiver] = frozenset(
                    m.sender for m in msgs if m.sender in wanted
                )
        return out

    def false_collision(self, r, node):
        return (r, node) in self._false_script


class PartitionAdversary(Adversary):
    """Splits the nodes into groups that cannot hear each other.

    While ``r < until_round``, a message crossing group boundaries is
    dropped.  This reproduces the footnote-2 scenario of the paper: two
    replicas that temporarily cannot exchange messages, one of which may
    decide and crash.
    """

    def __init__(self, groups: Iterable[Iterable[NodeId]], *, until_round: Round) -> None:
        self._group_of: dict[NodeId, int] = {}
        for idx, group in enumerate(groups):
            for node in group:
                if node in self._group_of:
                    raise ValueError(f"node {node} appears in two partition groups")
                self._group_of[node] = idx
        self._until = until_round

    def drops(self, r, tentative):
        if r >= self._until:
            return {}
        out: dict[NodeId, frozenset[NodeId]] = {}
        for receiver, msgs in tentative.items():
            rg = self._group_of.get(receiver)
            doomed = frozenset(
                m.sender for m in msgs
                if self._group_of.get(m.sender) != rg
            )
            if doomed:
                out[receiver] = doomed
        return out

    def false_collision(self, r, node):
        return False


class ComposedAdversary(Adversary):
    """Union of several adversaries: drops and false collisions combine."""

    def __init__(self, *parts: Adversary) -> None:
        self._parts = parts

    def drops(self, r, tentative):
        out: dict[NodeId, frozenset[NodeId]] = {}
        for part in self._parts:
            for receiver, senders in part.drops(r, tentative).items():
                out[receiver] = out.get(receiver, frozenset()) | senders
        return out

    def false_collision(self, r, node):
        return any(part.false_collision(r, node) for part in self._parts)
