"""The quasi-unit-disk, collision-prone broadcast channel of Section 2.

Reception rule (paper, Section 2): *after* the channel-stabilisation round
``rcf``, if ``pi`` broadcasts ``m`` in round ``r`` then a non-failed ``pj``
within distance ``R1`` of ``pi`` receives ``m`` provided no other node
within distance ``R2`` of ``pj`` broadcasts in round ``r``.  Before
``rcf`` the adversary may additionally drop any subset of deliveries.

Conventions this implementation fixes (documented in DESIGN.md §5):

* A broadcaster "receives" its own message (it knows what it sent) and
  never receives anyone else's in the same slot — it is busy transmitting,
  and any concurrent in-range transmission counts as contention at it.
* Contention is counted per *receiver*: two concurrent broadcasters within
  ``R2`` of a receiver destroy each other's messages at that receiver.

For the collision detector the channel also reports ground truth per
receiver: whether some message broadcast within ``R1`` was lost
(:class:`Reception.lost_within_r1`, the completeness trigger of Property
1) and whether some message broadcast within ``R2`` was lost
(:class:`Reception.lost_within_r2`, the accuracy licence of Property 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..errors import ConfigurationError
from ..geometry import Point
from ..types import NodeId, Round
from .adversary import Adversary, NoAdversary
from .messages import Message


@dataclass(frozen=True, slots=True)
class Reception:
    """What one node experienced on the channel in one round."""

    #: Messages actually delivered, ordered by sender id for determinism.
    messages: tuple[Message, ...]
    #: True when a message broadcast within R1 of this node was lost.
    lost_within_r1: bool
    #: True when a message broadcast within R2 of this node was lost.
    lost_within_r2: bool


@dataclass(frozen=True)
class RadioSpec:
    """Radii and stabilisation round of the physical channel."""

    r1: float
    r2: float
    #: First round from which only contention causes loss (the paper's rcf).
    rcf: Round = 0

    def __post_init__(self) -> None:
        if self.r1 <= 0:
            raise ConfigurationError(f"R1 must be positive, got {self.r1}")
        if self.r2 < self.r1:
            raise ConfigurationError(
                f"R2 must be at least R1 (quasi-unit disk), got R1={self.r1}, R2={self.r2}"
            )
        if self.rcf < 0:
            raise ConfigurationError("rcf must be non-negative")


class Channel:
    """Computes per-receiver deliveries for one synchronous round."""

    def __init__(self, spec: RadioSpec, adversary: Adversary | None = None) -> None:
        self.spec = spec
        self.adversary = adversary if adversary is not None else NoAdversary()

    def deliver(self, r: Round,
                positions: Mapping[NodeId, Point],
                broadcasts: Mapping[NodeId, Message]) -> dict[NodeId, Reception]:
        """Resolve one round of the channel.

        ``positions`` covers every *alive* node (listeners and
        broadcasters); ``broadcasts`` maps broadcasting node ids to their
        messages.  Returns a :class:`Reception` for every node in
        ``positions``.
        """
        senders = sorted(broadcasts)
        for s in senders:
            if s not in positions:
                raise ConfigurationError(f"broadcaster {s} has no position")

        # Physical-layer tentative deliveries (contention rule).
        tentative: dict[NodeId, tuple[Message, ...]] = {}
        in_r1: dict[NodeId, list[NodeId]] = {}
        in_r2: dict[NodeId, list[NodeId]] = {}
        for receiver, where in positions.items():
            r1_senders = [
                s for s in senders
                if s != receiver and positions[s].within(where, self.spec.r1)
            ]
            r2_senders = [
                s for s in senders
                if s != receiver and positions[s].within(where, self.spec.r2)
            ]
            in_r1[receiver] = r1_senders
            in_r2[receiver] = r2_senders
            if receiver in broadcasts:
                # Transmitting: hears only itself.
                tentative[receiver] = (broadcasts[receiver],)
            elif len(r2_senders) <= 1:
                tentative[receiver] = tuple(broadcasts[s] for s in r1_senders)
            else:
                # Contention within R2: everything is destroyed here.
                tentative[receiver] = ()

        # Adversarial drops are only permitted before channel stabilisation.
        dropped: dict[NodeId, frozenset[NodeId]] = {}
        if r < self.spec.rcf:
            dropped = self.adversary.drops(r, tentative)

        receptions: dict[NodeId, Reception] = {}
        for receiver in positions:
            doomed = dropped.get(receiver, frozenset())
            delivered = tuple(
                m for m in tentative[receiver] if m.sender not in doomed
            )
            got = {m.sender for m in delivered}
            missing_r1 = [s for s in in_r1[receiver] if s not in got]
            missing_r2 = [s for s in in_r2[receiver] if s not in got]
            receptions[receiver] = Reception(
                messages=delivered,
                lost_within_r1=bool(missing_r1),
                lost_within_r2=bool(missing_r2),
            )
        return receptions
