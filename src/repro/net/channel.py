"""The quasi-unit-disk, collision-prone broadcast channel of Section 2.

Reception rule (paper, Section 2): *after* the channel-stabilisation round
``rcf``, if ``pi`` broadcasts ``m`` in round ``r`` then a non-failed ``pj``
within distance ``R1`` of ``pi`` receives ``m`` provided no other node
within distance ``R2`` of ``pj`` broadcasts in round ``r``.  Before
``rcf`` the adversary may additionally drop any subset of deliveries.

Conventions this implementation fixes (documented in DESIGN.md §5):

* A broadcaster "receives" its own message (it knows what it sent) and
  never receives anyone else's in the same slot — it is busy transmitting,
  and any concurrent in-range transmission counts as contention at it.
* Contention is counted per *receiver*: two concurrent broadcasters within
  ``R2`` of a receiver destroy each other's messages at that receiver.

For the collision detector the channel also reports ground truth per
receiver: whether some message broadcast within ``R1`` was lost
(:class:`Reception.lost_within_r1`, the completeness trigger of Property
1) and whether some message broadcast within ``R2`` was lost
(:class:`Reception.lost_within_r2`, the accuracy licence of Property 2).

Two implementations of the reception rule coexist:

* :meth:`Channel._deliver_reference` — the straightforward all-pairs
  scan, kept as the executable specification.
* :meth:`Channel._deliver_indexed` — the default fast path: a
  :class:`~repro.net.index.SpatialGridIndex` turns the per-receiver scans
  into per-sender cell lookups, and the per-receiver ground-truth
  bookkeeping (the ``lost_within_*`` flags the detector consumes)
  collapses to constant-time set-size arithmetic whenever no adversarial
  drop is in play.

The two paths are guaranteed to produce *identical* reception maps — the
randomized differential suite (``tests/net/test_differential.py``)
asserts equality over geometries, radii, adversaries, and mobility, and
byte-identical trace pickles end to end.  Set ``REPRO_REFERENCE_CHANNEL=1``
in the environment (or pass ``use_reference=True``) to re-run anything on
the reference path when debugging.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping

from ..errors import ConfigurationError
from ..geometry import Point
from ..types import NodeId, Round
from .adversary import Adversary, NoAdversary
from .index import SpatialGridIndex
from .messages import Message

#: Environment switch: any value except ``""``/``"0"`` forces every newly
#: constructed channel onto the reference (all-pairs) delivery path.
REFERENCE_CHANNEL_ENV = "REPRO_REFERENCE_CHANNEL"


def reference_channel_forced() -> bool:
    """Whether the environment pins channels to the reference path."""
    return os.environ.get(REFERENCE_CHANNEL_ENV, "0") not in ("", "0")


@dataclass(frozen=True, slots=True)
class Reception:
    """What one node experienced on the channel in one round."""

    #: Messages actually delivered, ordered by sender id for determinism.
    messages: tuple[Message, ...]
    #: True when a message broadcast within R1 of this node was lost.
    lost_within_r1: bool
    #: True when a message broadcast within R2 of this node was lost.
    lost_within_r2: bool


#: Shared silent-round reception: nothing audible, nothing lost.  Frozen
#: and compared by value, so sharing one instance is invisible to callers
#: while sparing the fast path an allocation per idle receiver per round.
_SILENCE = Reception(messages=(), lost_within_r1=False, lost_within_r2=False)

#: Shared reception for "one audible sender, inside R2 but outside R1":
#: nothing delivered, nothing R1-lost, the R2 broadcast went undelivered.
_LOST_R2_ONLY = Reception(messages=(), lost_within_r1=False, lost_within_r2=True)


@dataclass(frozen=True)
class RadioSpec:
    """Radii and stabilisation round of the physical channel."""

    r1: float
    r2: float
    #: First round from which only contention causes loss (the paper's rcf).
    rcf: Round = 0

    def __post_init__(self) -> None:
        if self.r1 <= 0:
            raise ConfigurationError(f"R1 must be positive, got {self.r1}")
        if self.r2 < self.r1:
            raise ConfigurationError(
                f"R2 must be at least R1 (quasi-unit disk), got R1={self.r1}, R2={self.r2}"
            )
        if self.rcf < 0:
            raise ConfigurationError("rcf must be non-negative")


class Channel:
    """Computes per-receiver deliveries for one synchronous round."""

    def __init__(self, spec: RadioSpec, adversary: Adversary | None = None,
                 *, use_reference: bool | None = None) -> None:
        self.spec = spec
        self.adversary = adversary if adversary is not None else NoAdversary()
        if use_reference is None:
            use_reference = reference_channel_forced()
        self.use_reference = use_reference
        self._index = SpatialGridIndex(cell_size=spec.r2)
        self._index_synced = False
        #: Preallocated per-round scratch for the indexed path.  The
        #: ``in_r1``/``in_r2`` maps never escape ``deliver`` (receptions
        #: carry only booleans derived from them), so one pair of dicts
        #: is cleared and refilled every round instead of reallocated.
        self._in_r1_buf: dict[NodeId, list[NodeId]] = {}
        self._in_r2_buf: dict[NodeId, list[NodeId]] = {}

    def deliver(self, r: Round,
                positions: Mapping[NodeId, Point],
                broadcasts: Mapping[NodeId, Message],
                *, positions_unchanged: bool = False) -> dict[NodeId, Reception]:
        """Resolve one round of the channel.

        ``positions`` covers every *alive* node (listeners and
        broadcasters); ``broadcasts`` maps broadcasting node ids to their
        messages.  Returns a :class:`Reception` for every node in
        ``positions``.

        ``positions_unchanged`` is a caller promise that ``positions`` is
        element-for-element identical to the previous ``deliver`` call on
        this channel, letting the fast path skip re-synchronising its
        spatial index (the simulator asserts this from its own caches).
        """
        senders = sorted(broadcasts)
        for s in senders:
            if s not in positions:
                raise ConfigurationError(f"broadcaster {s} has no position")
        if self.use_reference:
            return self._deliver_reference(r, positions, broadcasts, senders)
        return self._deliver_indexed(r, positions, broadcasts, senders,
                                     positions_unchanged)

    def deliver_batch(self, r: Round,
                      positions: Mapping[NodeId, Point],
                      broadcasts: Mapping[NodeId, Message],
                      senders: list[NodeId],
                      *, positions_unchanged: bool = False) -> dict[NodeId, Reception]:
        """Batched-engine entrypoint: :meth:`deliver` minus re-derivation.

        ``senders`` is the already-ascending broadcaster list the round
        engine produced while collecting payloads (its send sweep walks
        node ids in sorted order), so the per-round ``sorted`` and the
        per-sender position check of :meth:`deliver` are skipped — the
        simulator guarantees every sender is positioned.  Semantics are
        otherwise identical, including the reference-path switch.
        """
        if self.use_reference:
            return self._deliver_reference(r, positions, broadcasts, senders)
        return self._deliver_indexed(r, positions, broadcasts, senders,
                                     positions_unchanged)

    # ------------------------------------------------------------------
    # Reference path (executable specification)
    # ------------------------------------------------------------------

    def _deliver_reference(self, r: Round,
                           positions: Mapping[NodeId, Point],
                           broadcasts: Mapping[NodeId, Message],
                           senders: list[NodeId] | None = None) -> dict[NodeId, Reception]:
        """The all-pairs scan the paper's reception rule transcribes to."""
        if senders is None:
            senders = sorted(broadcasts)

        # Physical-layer tentative deliveries (contention rule).  One R2
        # scan per receiver; R1 membership filters it (R1 <= R2 is a
        # RadioSpec invariant, and the within-predicate is monotone in
        # the radius, so the filter is exact).
        tentative: dict[NodeId, tuple[Message, ...]] = {}
        in_r1: dict[NodeId, list[NodeId]] = {}
        in_r2: dict[NodeId, list[NodeId]] = {}
        for receiver, where in positions.items():
            r2_senders = [
                s for s in senders
                if s != receiver and positions[s].within(where, self.spec.r2)
            ]
            r1_senders = [
                s for s in r2_senders if positions[s].within(where, self.spec.r1)
            ]
            in_r1[receiver] = r1_senders
            in_r2[receiver] = r2_senders
            if receiver in broadcasts:
                # Transmitting: hears only itself.
                tentative[receiver] = (broadcasts[receiver],)
            elif len(r2_senders) <= 1:
                tentative[receiver] = tuple(broadcasts[s] for s in r1_senders)
            else:
                # Contention within R2: everything is destroyed here.
                tentative[receiver] = ()

        # Adversarial drops are only permitted before channel stabilisation.
        dropped: dict[NodeId, frozenset[NodeId]] = {}
        if r < self.spec.rcf:
            dropped = self.adversary.drops(r, tentative)

        receptions: dict[NodeId, Reception] = {}
        for receiver in positions:
            doomed = dropped.get(receiver, frozenset())
            delivered = tuple(
                m for m in tentative[receiver] if m.sender not in doomed
            )
            got = {m.sender for m in delivered}
            missing_r1 = [s for s in in_r1[receiver] if s not in got]
            missing_r2 = [s for s in in_r2[receiver] if s not in got]
            receptions[receiver] = Reception(
                messages=delivered,
                lost_within_r1=bool(missing_r1),
                lost_within_r2=bool(missing_r2),
            )
        return receptions

    # ------------------------------------------------------------------
    # Indexed fast path
    # ------------------------------------------------------------------

    def _deliver_indexed(self, r: Round,
                         positions: Mapping[NodeId, Point],
                         broadcasts: Mapping[NodeId, Message],
                         senders: list[NodeId],
                         positions_unchanged: bool = False) -> dict[NodeId, Reception]:
        """Sender-centric delivery via the spatial grid.

        Instead of scanning all senders per receiver, each sender pushes
        itself onto the ``in_r1``/``in_r2`` lists of the nodes its cell
        neighborhood can reach.  Iterating senders in sorted order keeps
        every per-receiver list sorted by sender id, which is exactly the
        order the reference path produces.
        """
        spec = self.spec
        index = self._index
        if not senders:
            # Silent round: nobody to resolve, so the (possibly costly)
            # index sync is deferred — but an unsynced index must not
            # masquerade as current for the next round's skip hint.
            if not (positions_unchanged and self._index_synced):
                self._index_synced = False
            if r < spec.rcf:
                # The adversary is consulted exactly as on the general
                # path (stateful RNG streams must advance identically);
                # with nothing tentatively delivered it can doom nobody.
                self.adversary.drops(r, dict.fromkeys(positions, ()))
            return dict.fromkeys(positions, _SILENCE)
        if not (positions_unchanged and self._index_synced):
            index.update(positions)
            self._index_synced = True

        r1_sq = spec.r1 * spec.r1
        r2_sq = spec.r2 * spec.r2
        r2 = spec.r2
        if len(senders) == 1 and r >= spec.rcf:
            # Single audible sender past stabilisation — the dominant
            # round shape of every contention-managed cluster protocol.
            # One grid walk resolves everything: no contention can
            # exist, so the in_r1/in_r2 bookkeeping maps are never
            # needed (each in-R1 receiver still gets its own fresh
            # message tuple, matching the general path's object graph).
            s = senders[0]
            message = broadcasts[s]
            sx, sy = index.coords_of(s)
            receptions = dict.fromkeys(positions, _SILENCE)
            Rec = Reception
            for cell in index.buckets_overlapping(sx, sy, r2):
                for node, nx, ny in cell.values():
                    if node == s:
                        continue
                    dx = nx - sx
                    dy = ny - sy
                    dd = dx * dx + dy * dy
                    if dd <= r2_sq:
                        receptions[node] = (Rec((message,), False, False)
                                            if dd <= r1_sq else _LOST_R2_ONLY)
            receptions[s] = Rec((message,), False, False)
            return receptions
        in_r1 = self._in_r1_buf
        in_r2 = self._in_r2_buf
        in_r1.clear()
        in_r2.clear()
        r1_get = in_r1.get
        r2_get = in_r2.get
        coords_of = index.coords_of
        buckets_overlapping = index.buckets_overlapping
        for s in senders:
            sx, sy = coords_of(s)
            for cell in buckets_overlapping(sx, sy, r2):
                for node, nx, ny in cell.values():
                    if node == s:
                        continue
                    dx = nx - sx
                    dy = ny - sy
                    dd = dx * dx + dy * dy
                    if dd <= r2_sq:
                        bucket = r2_get(node)
                        if bucket is None:
                            in_r2[node] = [s]
                        else:
                            bucket.append(s)
                        if dd <= r1_sq:
                            bucket = r1_get(node)
                            if bucket is None:
                                in_r1[node] = [s]
                            else:
                                bucket.append(s)

        if r < spec.rcf:
            return self._resolve_with_drops(
                r, positions, broadcasts, in_r1, in_r2)

        # Post-stabilisation fast route: no adversary consultation, so no
        # tentative-delivery map is needed at all.  Receivers out of range
        # of every sender share one silent Reception (value-equal to what
        # the reference path builds); only nodes actually near a sender do
        # per-receiver work, and the detector's ground-truth flags reduce
        # to list-length arithmetic instead of missing-sender set scans.
        receptions: dict[NodeId, Reception] = dict.fromkeys(positions, _SILENCE)
        Rec = Reception
        for receiver, r2_senders in in_r2.items():
            if receiver in broadcasts:
                continue  # handled below
            if len(r2_senders) <= 1:
                r1_senders = r1_get(receiver)
                if r1_senders is None:
                    # One audible sender, out of R1: its message is lost.
                    receptions[receiver] = _LOST_R2_ONLY
                else:
                    receptions[receiver] = Rec(
                        (broadcasts[r1_senders[0]],), False, False)
            else:
                # Contention: every in-range broadcast died here.
                receptions[receiver] = Rec(
                    (), r1_get(receiver) is not None, True)
        for s in senders:
            # Transmitting: hears only itself; concurrent in-range
            # transmissions count as losses at it.
            receptions[s] = Rec(
                (broadcasts[s],), r1_get(s) is not None, r2_get(s) is not None)
        return receptions

    def _resolve_with_drops(self, r: Round,
                            positions: Mapping[NodeId, Point],
                            broadcasts: Mapping[NodeId, Message],
                            in_r1: dict[NodeId, list[NodeId]],
                            in_r2: dict[NodeId, list[NodeId]]) -> dict[NodeId, Reception]:
        """Pre-``rcf`` resolution: materialise tentative deliveries for
        the adversary, then apply its drops (general bookkeeping)."""
        empty: tuple[NodeId, ...] = ()
        r1_get = in_r1.get
        r2_get = in_r2.get
        tentative: dict[NodeId, tuple[Message, ...]] = {}
        for receiver in positions:
            if receiver in broadcasts:
                tentative[receiver] = (broadcasts[receiver],)
            else:
                r2_senders = r2_get(receiver, empty)
                if len(r2_senders) <= 1:
                    tentative[receiver] = tuple(
                        broadcasts[s] for s in r1_get(receiver, empty)
                    )
                else:
                    tentative[receiver] = ()

        dropped = self.adversary.drops(r, tentative)

        receptions: dict[NodeId, Reception] = {}
        dropped_get = dropped.get
        for receiver in positions:
            doomed = dropped_get(receiver)
            r1_senders = r1_get(receiver, empty)
            r2_senders = r2_get(receiver, empty)
            if doomed:
                delivered = tuple(
                    m for m in tentative[receiver] if m.sender not in doomed
                )
                got = {m.sender for m in delivered}
                receptions[receiver] = Reception(
                    messages=delivered,
                    lost_within_r1=any(s not in got for s in r1_senders),
                    lost_within_r2=any(s not in got for s in r2_senders),
                )
            elif receiver in broadcasts:
                receptions[receiver] = Reception(
                    messages=tentative[receiver],
                    lost_within_r1=bool(r1_senders),
                    lost_within_r2=bool(r2_senders),
                )
            elif len(r2_senders) <= 1:
                if not r2_senders:
                    receptions[receiver] = _SILENCE
                else:
                    receptions[receiver] = Reception(
                        messages=tentative[receiver],
                        lost_within_r1=False,
                        lost_within_r2=len(r2_senders) > len(r1_senders),
                    )
            else:
                receptions[receiver] = Reception(
                    messages=(),
                    lost_within_r1=bool(r1_senders),
                    lost_within_r2=True,
                )
        return receptions
