"""GPS-style location service.

Section 2: "Each node receives periodic updates as to its location from a
GPS, or some other variety of location service."  We model this as a
service that snapshots true positions every ``update_period`` rounds, so a
node's believed position may be up to ``update_period - 1`` rounds stale.
``update_period=1`` gives the fresh-GPS idealisation used by most tests.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..errors import ConfigurationError
from ..geometry import Point
from ..types import NodeId, Round


class LocationService:
    """Provides (possibly stale) positions to protocol code."""

    def __init__(self, *, update_period: int = 1) -> None:
        if update_period < 1:
            raise ConfigurationError("update_period must be at least 1")
        self._period = update_period
        self._snapshot: dict[NodeId, Point] = {}
        self._snapshot_round: Round = -1

    def observe(self, r: Round, true_positions: Mapping[NodeId, Point]) -> None:
        """Called by the simulator each round with ground truth."""
        if self._snapshot_round < 0 or r - self._snapshot_round >= self._period:
            self._snapshot = dict(true_positions)
            self._snapshot_round = r
        else:
            # Between updates, newly appearing nodes still get a first fix:
            # a GPS fix exists from the moment a device powers on.
            for node, where in true_positions.items():
                self._snapshot.setdefault(node, where)

    def locate(self, node: NodeId) -> Point:
        """Last known position of ``node``.

        Raises ``KeyError`` when the service has never seen the node.
        """
        return self._snapshot[node]

    def locator_for(self, node: NodeId) -> Callable[[], Point]:
        """A zero-argument callable a protocol can own without knowing ids."""
        return lambda: self.locate(node)

    @property
    def staleness_bound(self) -> int:
        """Maximum rounds by which a reported position may lag the truth."""
        return self._period - 1
