"""Structured execution traces.

Every simulator run records one :class:`RoundRecord` per round.  The
analysis layer (metrics, invariant checkers, benchmark tables) consumes
traces rather than poking protocol internals, so that an experiment is
always "run a simulation, then analyse its trace".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from ..geometry import Point
from ..types import NodeId, Round
from .messages import Message


@dataclass(frozen=True, slots=True)
class RoundRecord:
    """Everything that happened on the channel in one round."""

    round: Round
    #: Positions of alive nodes at the start of the round.
    positions: Mapping[NodeId, Point]
    #: Broadcasts that physically went out (post-crash filtering).
    broadcasts: Mapping[NodeId, Message]
    #: Messages each alive node received.
    receptions: Mapping[NodeId, tuple[Message, ...]]
    #: Collision flags handed to each alive node by its detector.
    collisions: Mapping[NodeId, bool]
    #: Nodes advised active by any contention manager this round.
    advised_active: frozenset[NodeId]
    #: Nodes that crashed during this round.
    crashed: frozenset[NodeId]


class Trace:
    """An append-only list of round records plus convenience metrics."""

    def __init__(self) -> None:
        self._records: list[RoundRecord] = []

    def append(self, record: RoundRecord) -> None:
        expected = len(self._records)
        if record.round != expected:
            raise ValueError(
                f"trace expected round {expected}, got {record.round}"
            )
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[RoundRecord]:
        return iter(self._records)

    def __getitem__(self, r: Round) -> RoundRecord:
        return self._records[r]

    # ------------------------------------------------------------------
    # Metrics helpers
    # ------------------------------------------------------------------

    def total_broadcasts(self) -> int:
        """Number of physical broadcasts over the whole execution."""
        return sum(len(rec.broadcasts) for rec in self._records)

    def message_sizes(self) -> list[int]:
        """Wire sizes of every broadcast message, in round order."""
        return [
            msg.size
            for rec in self._records
            for _, msg in sorted(rec.broadcasts.items())
        ]

    def max_message_size(self) -> int:
        return max(self.message_sizes(), default=0)

    def mean_message_size(self) -> float:
        sizes = self.message_sizes()
        return sum(sizes) / len(sizes) if sizes else 0.0

    def collision_rounds(self, node: NodeId) -> list[Round]:
        """Rounds in which ``node`` was handed a collision indication."""
        return [
            rec.round for rec in self._records
            if rec.collisions.get(node, False)
        ]

    def broadcasts_by(self, node: NodeId) -> list[tuple[Round, Message]]:
        return [
            (rec.round, rec.broadcasts[node])
            for rec in self._records
            if node in rec.broadcasts
        ]


def canonical_dump(trace: Trace) -> str:
    """A stable, human-diffable text rendering of a whole trace.

    Every line is deterministic for a deterministic run and stable
    across Python versions (float ``repr`` has been shortest-roundtrip
    since 3.1; all collections are emitted in sorted node order), so the
    golden-trace regression suite can commit these dumps and compare
    them byte-for-byte.
    """
    lines: list[str] = []
    for rec in trace:
        lines.append(f"round {rec.round}")
        lines.append("  positions: " + " ".join(
            f"{node}=({rec.positions[node].x!r},{rec.positions[node].y!r})"
            for node in sorted(rec.positions)
        ))
        lines.append("  broadcasts: " + " ".join(
            f"{node}:{rec.broadcasts[node].payload!r}"
            for node in sorted(rec.broadcasts)
        ))
        lines.append("  receptions: " + " ".join(
            "{}<-[{}]".format(
                node,
                ",".join(str(m.sender) for m in rec.receptions[node]),
            )
            for node in sorted(rec.receptions)
        ))
        lines.append("  collisions: " + " ".join(
            f"{node}={'+' if rec.collisions[node] else '-'}"
            for node in sorted(rec.collisions)
        ))
        lines.append(f"  advised: {sorted(rec.advised_active)}")
        lines.append(f"  crashed: {sorted(rec.crashed)}")
    return "\n".join(lines) + "\n"
