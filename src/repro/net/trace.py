"""Structured execution traces.

Every simulator run records one :class:`RoundRecord` per round.  The
analysis layer (metrics, invariant checkers, benchmark tables) consumes
traces rather than poking protocol internals, so that an experiment is
always "run a simulation, then analyse its trace".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from ..geometry import Point
from ..types import NodeId, Round
from .messages import Message


@dataclass(frozen=True, slots=True)
class RoundRecord:
    """Everything that happened on the channel in one round."""

    round: Round
    #: Positions of alive nodes at the start of the round.
    positions: Mapping[NodeId, Point]
    #: Broadcasts that physically went out (post-crash filtering).
    broadcasts: Mapping[NodeId, Message]
    #: Messages each alive node received.
    receptions: Mapping[NodeId, tuple[Message, ...]]
    #: Collision flags handed to each alive node by its detector.
    collisions: Mapping[NodeId, bool]
    #: Nodes advised active by any contention manager this round.
    advised_active: frozenset[NodeId]
    #: Nodes that crashed during this round.
    crashed: frozenset[NodeId]


class Trace:
    """An append-only list of round records plus convenience metrics."""

    def __init__(self) -> None:
        self._records: list[RoundRecord] = []

    def append(self, record: RoundRecord) -> None:
        expected = len(self._records)
        if record.round != expected:
            raise ValueError(
                f"trace expected round {expected}, got {record.round}"
            )
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[RoundRecord]:
        return iter(self._records)

    def __getitem__(self, r: Round) -> RoundRecord:
        return self._records[r]

    # ------------------------------------------------------------------
    # Metrics helpers
    # ------------------------------------------------------------------

    def total_broadcasts(self) -> int:
        """Number of physical broadcasts over the whole execution."""
        return sum(len(rec.broadcasts) for rec in self._records)

    def message_sizes(self) -> list[int]:
        """Wire sizes of every broadcast message, in round order."""
        return [
            msg.size
            for rec in self._records
            for _, msg in sorted(rec.broadcasts.items())
        ]

    def max_message_size(self) -> int:
        return max(self.message_sizes(), default=0)

    def mean_message_size(self) -> float:
        sizes = self.message_sizes()
        return sum(sizes) / len(sizes) if sizes else 0.0

    def collision_rounds(self, node: NodeId) -> list[Round]:
        """Rounds in which ``node`` was handed a collision indication."""
        return [
            rec.round for rec in self._records
            if rec.collisions.get(node, False)
        ]

    def broadcasts_by(self, node: NodeId) -> list[tuple[Round, Message]]:
        return [
            (rec.round, rec.broadcasts[node])
            for rec in self._records
            if node in rec.broadcasts
        ]
