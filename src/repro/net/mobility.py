"""Mobility models for the mobile nodes.

The system model (Section 2) lets nodes move arbitrarily subject to a
maximum velocity ``vmax`` (distance units per round).  Each node owns one
mobility-model instance; the simulator advances all models by one round at
the start of every slot and reads back positions.

All models are deterministic given their constructor arguments (random
models take an explicit seed), so entire executions replay exactly.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Sequence

from ..geometry import Point
from ..types import Round


class MobilityModel(ABC):
    """Produces one position per round for a single node."""

    @abstractmethod
    def position_at(self, r: Round) -> Point:
        """Position of the node at the start of round ``r``."""

    def max_speed(self) -> float:
        """Upper bound on per-round displacement (``vmax`` contribution).

        Models override this when they can promise a tighter bound; the
        default is conservative and only used by diagnostics.
        """
        return float("inf")

    def moved_in(self, r: Round) -> bool:
        """Dirty-set protocol: may round ``r``'s position differ from
        round ``r - 1``'s?

        Returning ``False`` is a hard promise of *object identity*:
        ``position_at(r) is position_at(r - 1)``.  The batched round
        engine then reuses the previous round's position entry without
        consulting :meth:`position_at` at all, and — because the very
        same :class:`~repro.geometry.Point` object lands in the round
        record — the skip is invisible even to trace pickles.  Models
        that build a fresh (if equal) ``Point`` per call must keep the
        conservative default ``True``.
        """
        return True


class StaticMobility(MobilityModel):
    """A node that never moves (the Section 3 setting)."""

    def __init__(self, position: Point) -> None:
        self._position = position

    def position_at(self, r: Round) -> Point:
        return self._position

    def max_speed(self) -> float:
        return 0.0

    def moved_in(self, r: Round) -> bool:
        return False


class LinearMobility(MobilityModel):
    """Constant-velocity straight-line motion.

    Used to model nodes drifting out of a virtual node's region at bounded
    speed, the scenario behind the "temporary leader" analysis of §4.2.
    """

    def __init__(self, start: Point, velocity: Point) -> None:
        self._start = start
        self._velocity = velocity

    def position_at(self, r: Round) -> Point:
        return self._start + self._velocity.scaled(float(r))

    def max_speed(self) -> float:
        return self._velocity.norm()


class WaypointMobility(MobilityModel):
    """Piecewise motion through an explicit list of waypoints.

    The node moves toward each waypoint in turn at ``speed`` per round and
    parks at the final waypoint.  Positions are computed eagerly once and
    cached, keeping ``position_at`` pure.
    """

    def __init__(self, start: Point, waypoints: Sequence[Point], speed: float,
                 horizon: int = 100_000) -> None:
        if speed < 0:
            raise ValueError("speed must be non-negative")
        self._speed = speed
        self._positions: list[Point] = [start]
        pending = list(waypoints)
        pos = start
        while pending and len(self._positions) < horizon:
            target = pending[0]
            pos = pos.moved_toward(target, speed)
            if pos == target:
                pending.pop(0)
            self._positions.append(pos)

    def position_at(self, r: Round) -> Point:
        if r < len(self._positions):
            return self._positions[r]
        return self._positions[-1]

    def max_speed(self) -> float:
        return self._speed

    def moved_in(self, r: Round) -> bool:
        # Distinct (eagerly cached) Point objects while the walk lasts;
        # once parked, position_at returns the final list entry — the
        # identical object — every round.
        return r < 1 or r < len(self._positions)


class RandomWaypointMobility(MobilityModel):
    """The classic random-waypoint model inside a rectangular arena.

    The node repeatedly picks a uniform random destination in the arena
    and walks toward it at ``speed`` per round.  Deterministic given the
    seed; positions are generated lazily and memoised.
    """

    def __init__(self, start: Point, *, arena: tuple[float, float, float, float],
                 speed: float, seed: int) -> None:
        x_lo, y_lo, x_hi, y_hi = arena
        if x_hi <= x_lo or y_hi <= y_lo:
            raise ValueError("arena must have positive width and height")
        if speed < 0:
            raise ValueError("speed must be non-negative")
        self._arena = arena
        self._speed = speed
        self._rng = random.Random(seed)
        self._positions: list[Point] = [start]
        self._target = self._pick_target()

    def _pick_target(self) -> Point:
        x_lo, y_lo, x_hi, y_hi = self._arena
        return Point(self._rng.uniform(x_lo, x_hi), self._rng.uniform(y_lo, y_hi))

    def position_at(self, r: Round) -> Point:
        while len(self._positions) <= r:
            pos = self._positions[-1].moved_toward(self._target, self._speed)
            if pos == self._target:
                self._target = self._pick_target()
            self._positions.append(pos)
        return self._positions[r]

    def max_speed(self) -> float:
        return self._speed


class OrbitMobility(MobilityModel):
    """Motion around a fixed anchor along a square orbit of given radius.

    The node walks the perimeter of an axis-aligned square centred on
    ``anchor`` at ``speed`` per round, wrapping forever.  Handy for keeping
    a node *near* a virtual-node location while still exercising position
    updates every round.
    """

    def __init__(self, anchor: Point, radius: float, speed: float) -> None:
        if radius <= 0:
            raise ValueError("radius must be positive")
        if speed < 0:
            raise ValueError("speed must be non-negative")
        self._corners = [
            anchor + Point(radius, radius),
            anchor + Point(-radius, radius),
            anchor + Point(-radius, -radius),
            anchor + Point(radius, -radius),
        ]
        self._side = 2.0 * radius
        self._perimeter = 4.0 * self._side
        self._speed = speed

    def position_at(self, r: Round) -> Point:
        travelled = (self._speed * r) % self._perimeter if self._speed else 0.0
        edge = int(travelled // self._side) % 4
        along = travelled - edge * self._side
        start = self._corners[edge]
        end = self._corners[(edge + 1) % 4]
        return start.moved_toward(end, along)

    def max_speed(self) -> float:
        return self._speed
