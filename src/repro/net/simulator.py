"""The synchronous ("slotted") round engine.

One :meth:`Simulator.step` executes one communication round of the model
in Section 2, in this order:

1. **Mobility & liveness** — positions of every *present* node (started,
   not yet fully crashed) are read from its mobility model, and the
   location service takes its periodic snapshot.
2. **Contention** — each node that still executes its send step names the
   contention manager it contends for; each manager issues advice, which
   the simulator clips to actual contenders (Property 3(3)).
3. **Send** — each sending node returns a payload or ``None``.  A node
   crashing ``AFTER_SEND`` this round still broadcasts (the footnote-2
   decide-and-die scenario); one crashing ``BEFORE_SEND`` is already gone.
4. **Channel** — the quasi-unit-disk channel resolves deliveries, with
   adversarial drops allowed only before ``rcf``.
5. **Detect & deliver** — each receiving node gets its messages and the
   collision flag computed by the configured detector (spurious-collision
   requests come from the adversary and are honoured only before the
   detector's accuracy round).
6. **Feedback** — contention managers observe whether their advisees'
   broadcasts suffered contention, so back-off managers can adapt.

All sources of nondeterminism (mobility, adversary, contention) are owned
by seeded components, so a run is a pure function of its configuration.

The engine carries a fast path (``fast_path=True``, the default) that
caches what cannot change between rounds: positions of provably static
nodes are resolved once instead of through mobility dispatch every round,
the location service skips re-snapshotting when no position changed, and
crash bookkeeping short-circuits when no crash schedule exists.  The fast
path is observably identical to the uncached one — the differential suite
asserts byte-identical trace pickles — and ``fast_path=False`` (or the
``REPRO_REFERENCE_CHANNEL`` environment switch, which also pins the
channel to its reference path) re-runs anything uncached for debugging.

On top of the caches sits the **batched dispatch engine** (the default):
one :meth:`Simulator.step` collects every sender's payload in a single
pass over prebound send methods, hands the channel the whole batch in
one :meth:`~repro.net.channel.Channel.deliver_batch` call, derives the
round's position map through the mobility dirty-set protocol
(:meth:`~repro.net.mobility.MobilityModel.moved_in` — untouched nodes
never rebuild their position entries), shares one decoded
:class:`~repro.net.messages.RoundBatch` across every receiver's
:meth:`~repro.net.node.Process.deliver_batch`, and skips contention
bookkeeping entirely when no node can ever contend.  The seed per-node
loop survives verbatim as :meth:`Simulator._step_reference`, selected by
``use_reference_engine=True`` or the ``REPRO_REFERENCE_ENGINE``
environment switch; the differential suite pins the two engines
byte-identical (traces, outputs, metrics, verdicts) across every
protocol family and switch combination.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Iterable

from ..detectors import CollisionDetector, EventuallyAccurateDetector
from ..contention import ContentionManager
from ..errors import ConfigurationError, SimulationError
from ..geometry import Point
from ..types import NodeId, Round
from .adversary import Adversary, NoAdversary
from .channel import Channel, RadioSpec, Reception, reference_channel_forced
from .location import LocationService
from .messages import Message, RoundBatch
from .mobility import MobilityModel, StaticMobility
from .node import CrashSchedule, Process
from .trace import RoundRecord, Trace

#: Per-round hook: called with each completed :class:`RoundRecord`.
RoundObserver = Callable[[RoundRecord], None]

#: Environment switch: any value except ``""``/``"0"`` pins every newly
#: constructed simulator to the seed per-node round loop instead of the
#: batched dispatch engine (mirrors ``REPRO_REFERENCE_CHANNEL``).
REFERENCE_ENGINE_ENV = "REPRO_REFERENCE_ENGINE"


def reference_engine_forced() -> bool:
    """Whether the environment pins simulators to the reference engine."""
    return os.environ.get(REFERENCE_ENGINE_ENV, "0") not in ("", "0")


@dataclass
class _NodeEntry:
    process: Process
    mobility: MobilityModel
    start_round: Round
    #: Resolved once for provably immobile nodes (``max_speed() == 0``);
    #: ``None`` means the mobility model must be consulted every round.
    static_position: Point | None = None


class Simulator:
    """Drives a set of processes over the collision-prone channel."""

    def __init__(self, *, spec: RadioSpec,
                 adversary: Adversary | None = None,
                 detector: CollisionDetector | None = None,
                 cms: dict[str, ContentionManager] | None = None,
                 crashes: CrashSchedule | None = None,
                 location_update_period: int = 1,
                 observers: Iterable[RoundObserver] = (),
                 record_trace: bool = True,
                 fast_path: bool | None = None,
                 use_reference_engine: bool | None = None) -> None:
        self.spec = spec
        self.adversary = adversary if adversary is not None else NoAdversary()
        self.channel = Channel(spec, self.adversary)
        if fast_path is None:
            fast_path = not reference_channel_forced()
        self.fast_path = fast_path
        if use_reference_engine is None:
            use_reference_engine = reference_engine_forced()
        #: Pin :meth:`step` to the seed per-node dispatch loop instead of
        #: the batched engine (read per step, so tests can flip it).
        self.use_reference_engine = use_reference_engine
        self.detector = detector if detector is not None else EventuallyAccurateDetector()
        self.cms: dict[str, ContentionManager] = dict(cms or {})
        self.crashes = crashes if crashes is not None else CrashSchedule()
        self.locations = LocationService(update_period=location_update_period)
        self.trace = Trace()
        self.record_trace = record_trace
        self._observers: list[RoundObserver] = list(observers)
        self._nodes: dict[NodeId, _NodeEntry] = {}
        self._round: Round = 0
        #: Fast-path caches: last round's present set, and whether the
        #: location service has observed the current (static) positions.
        self._last_present: list[NodeId] | None = None
        self._positions_observed = False
        #: Steady-state caches (maintained by add_node): sorted node ids,
        #: the latest start_round, whether every node is provably static,
        #: which processes can ever contend, and — built lazily — the
        #: full static position map.
        self._node_list: list[NodeId] = []
        self._max_start: Round = 0
        self._all_static = True
        self._contenders_possible: list[NodeId] = []
        self._steady_positions: dict[NodeId, Point] | None = None
        #: Batched-engine dispatch tables, indexed by (sequential) node
        #: id: prebound send/deliver methods, and the process's
        #: ``deliver_batch`` override (``None`` when it would just
        #: forward to ``deliver``, sparing the extra frame).
        self._send_fns: list[Callable] = []
        self._deliver_fns: list[Callable] = []
        self._deliver_batch_fns: list[Callable | None] = []
        self._contend_fns: list[Callable] = []
        #: Dirty-set cache: ``(round, present, positions)`` of the last
        #: batched round, the base the next round's position map is
        #: copied from when nothing joined, crashed, or moved.
        self._batch_prev: tuple[Round, list[NodeId],
                                dict[NodeId, Point]] | None = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def add_node(self, process: Process,
                 mobility: MobilityModel | Point,
                 *, start_round: Round = 0) -> NodeId:
        """Register a process; returns its simulator-assigned node id.

        ``mobility`` may be a bare :class:`Point` as shorthand for a static
        node at that position.  ``start_round`` models a device that powers
        on late (it neither transmits, receives, nor interferes earlier).

        On a running world ``start_round`` must not predate the current
        round: a node "powering on" in the past would claim rounds that
        already executed without it, silently breaking the pre-instance
        inertness contract (its early rounds never happened, yet
        ``alive()`` and the crash bookkeeping would report them as lived).
        """
        if start_round < 0:
            raise ConfigurationError("start_round must be non-negative")
        if start_round < self._round:
            raise ConfigurationError(
                f"start_round {start_round} predates the current round "
                f"{self._round}: a mid-run node cannot power on in the past"
            )
        if isinstance(mobility, Point):
            mobility = StaticMobility(mobility)
        node_id = len(self._nodes)
        # Only StaticMobility is cached: it returns the *same* Point
        # object every round, so the cached and uncached paths build
        # identical object graphs (and therefore identical trace pickles).
        static_position = (mobility.position_at(start_round)
                           if isinstance(mobility, StaticMobility) else None)
        self._nodes[node_id] = _NodeEntry(process, mobility, start_round,
                                          static_position)
        # Maintain the steady-state caches (node ids are sequential, so
        # appending keeps the node list sorted).
        self._node_list.append(node_id)
        self._max_start = max(self._max_start, start_round)
        self._all_static = self._all_static and static_position is not None
        # Overridden contend() — on the class or directly on the instance
        # — means this node may ask for channel access.  Sampled here:
        # assigning process.contend *after* add_node is unsupported.
        if (type(process).contend is not Process.contend
                or "contend" in getattr(process, "__dict__", {})):
            self._contenders_possible.append(node_id)
        # Batched-engine dispatch tables.  ``deliver_batch`` is sampled
        # like ``contend`` above: overriding it (on the class or the
        # instance) after add_node is unsupported.
        self._send_fns.append(process.send)
        self._deliver_fns.append(process.deliver)
        self._contend_fns.append(process.contend)
        batch_impl = getattr(type(process), "deliver_batch", None)
        if ((batch_impl is not None and batch_impl is not Process.deliver_batch)
                or "deliver_batch" in getattr(process, "__dict__", {})):
            self._deliver_batch_fns.append(process.deliver_batch)
        else:
            self._deliver_batch_fns.append(None)
        self._steady_positions = None
        # New nodes invalidate the positions-unchanged caches.
        self._last_present = None
        self._batch_prev = None
        return node_id

    def add_cm(self, name: str, cm: ContentionManager) -> None:
        if name in self.cms:
            raise ConfigurationError(f"contention manager {name!r} already registered")
        self.cms[name] = cm

    def add_observer(self, observer: RoundObserver) -> None:
        """Register a per-round callback.

        Observers see every :class:`RoundRecord` as it is produced, so
        metrics can be accumulated online instead of re-scanning the whole
        :class:`Trace` afterwards; with ``record_trace=False`` they are the
        *only* consumers and long runs need not retain the trace at all.
        """
        self._observers.append(observer)

    @property
    def current_round(self) -> Round:
        return self._round

    @property
    def node_ids(self) -> list[NodeId]:
        return sorted(self._nodes)

    def process_of(self, node_id: NodeId) -> Process:
        return self._nodes[node_id].process

    def alive(self, node_id: NodeId, r: Round | None = None) -> bool:
        """Present in the network at round ``r`` (default: current round)."""
        r = self._round if r is None else r
        entry = self._nodes[node_id]
        return entry.start_round <= r and not self.crashes.crashed_by(node_id, r)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> RoundRecord:
        """Execute one synchronous round and append it to the trace."""
        if self.use_reference_engine:
            return self._step_reference()
        return self._step_batched()

    def _step_reference(self) -> RoundRecord:
        """The seed per-node round loop (executable specification).

        Kept verbatim as the reference the batched engine is proven
        byte-identical against; ``use_reference_engine=True`` or
        ``REPRO_REFERENCE_ENGINE=1`` re-runs everything through it.
        """
        r = self._round
        # With no crash schedule, "alive" reduces to the start_round
        # check, and every present node both sends and receives.
        no_crashes = self.fast_path and not len(self.crashes)
        steady = no_crashes and self._max_start <= r
        if steady and self._all_static:
            # Steady state: every node is present and provably immobile,
            # so the position map is a copy of a once-built cache (same
            # insertion order, same Point objects as a fresh build).
            present = self._node_list
            if self._steady_positions is None:
                self._steady_positions = {
                    node: self._nodes[node].static_position
                    for node in present
                }
                unchanged = False
            else:
                unchanged = self._positions_observed
            positions: dict[NodeId, Point] = self._steady_positions.copy()
        else:
            if no_crashes:
                present = [
                    node for node in self._node_list
                    if self._nodes[node].start_round <= r
                ]
            else:
                present = [
                    node for node in self._node_list
                    if self.alive(node, r)
                ]
            positions = {}
            all_static = True
            for node in present:
                entry = self._nodes[node]
                if entry.static_position is not None:
                    positions[node] = entry.static_position
                else:
                    all_static = False
                    positions[node] = entry.mobility.position_at(r)
            unchanged = (all_static
                         and present == self._last_present
                         and self._positions_observed)
        if (self.fast_path and unchanged
                and self.locations.staleness_bound == 0):
            # Nothing moved and the service re-snapshots every round: the
            # current snapshot already equals ``positions`` element for
            # element, so re-observing would be a no-op dict copy.
            pass
        else:
            self.locations.observe(r, positions)
            self._positions_observed = True
        self._last_present = present

        # -- contention ------------------------------------------------
        contenders: dict[str, list[NodeId]] = {}
        contended_for: dict[NodeId, str] = {}
        # Nodes inheriting the base Process.contend can never contend
        # (it is stateless and returns None), so only nodes overriding it
        # are consulted; order matches the sorted ``present`` sweep.
        if not self.fast_path:
            candidates = present
        elif steady:
            candidates = self._contenders_possible
        elif no_crashes:
            candidates = [node for node in self._contenders_possible
                          if self._nodes[node].start_round <= r]
        elif len(self._contenders_possible) == len(self._nodes):
            candidates = present
        else:
            candidates = [node for node in self._contenders_possible
                          if self.alive(node, r)]
        for node in candidates:
            if not no_crashes and not self.crashes.sends_in(node, r):
                continue
            cm_name = self._nodes[node].process.contend(r)
            if cm_name is None:
                continue
            if cm_name not in self.cms:
                raise SimulationError(
                    f"node {node} contended for unknown manager {cm_name!r}"
                )
            contenders.setdefault(cm_name, []).append(node)
            contended_for[node] = cm_name

        advice: dict[str, frozenset[NodeId]] = {}
        advised: set[NodeId] = set()
        for cm_name, nodes in sorted(contenders.items()):
            granted = self.cms[cm_name].advise(r, nodes) & frozenset(nodes)
            advice[cm_name] = granted
            advised.update(granted)

        # -- send --------------------------------------------------------
        broadcasts: dict[NodeId, Message] = {}
        for node in present:
            if not no_crashes and not self.crashes.sends_in(node, r):
                continue
            payload = self._nodes[node].process.send(r, node in advised)
            if payload is not None:
                broadcasts[node] = Message(node, payload)

        # -- channel -----------------------------------------------------
        receptions = self.channel.deliver(
            r, positions, broadcasts,
            positions_unchanged=unchanged and self.fast_path)

        # -- detect & deliver ---------------------------------------------
        flags: dict[NodeId, bool] = {}
        delivered: dict[NodeId, tuple[Message, ...]] = {}
        # NoAdversary.false_collision is stateless-False, so skipping the
        # call is unobservable; stateful adversaries are always consulted
        # (their RNG streams must advance exactly as on the slow path).
        benign = type(self.adversary) is NoAdversary
        # Past its accuracy round the paper's detector is a pure function
        # of the reception's R2 ground truth; inline it.
        fast_detect = (self.fast_path
                       and type(self.detector) is EventuallyAccurateDetector
                       and r >= self.detector.racc)
        indicate = self.detector.indicate
        for node in present:
            if not no_crashes and not self.crashes.receives_in(node, r):
                continue
            reception = receptions[node]
            spurious = (False if benign
                        else self.adversary.false_collision(r, node))
            flag = (reception.lost_within_r2 if fast_detect
                    else indicate(r, node, reception, spurious))
            flags[node] = flag
            delivered[node] = reception.messages
            self._nodes[node].process.deliver(r, reception.messages, flag)

        # -- contention feedback ------------------------------------------
        for cm_name, nodes in sorted(contenders.items()):
            collided = any(flags.get(node, False) for node in nodes)
            self.cms[cm_name].feedback(
                r, active=advice[cm_name], collided=collided
            )

        if no_crashes:
            # Without a crash schedule, aliveness can only flip at a
            # node's start_round boundary, which never satisfies
            # ``start_round <= r`` — so nobody crashed this round.
            crashed_now = frozenset()
        else:
            crashed_now = frozenset(
                node for node in sorted(self._nodes)
                if self.alive(node, r) != self.alive(node, r + 1)
                and self._nodes[node].start_round <= r
            )
        record = RoundRecord(
            round=r,
            positions=positions,
            broadcasts=broadcasts,
            receptions=delivered,
            collisions=flags,
            advised_active=frozenset(advised),
            crashed=crashed_now,
        )
        if self.record_trace:
            self.trace.append(record)
        for observer in self._observers:
            observer(record)
        self._round += 1
        return record

    def _positions_batched(self, r: Round) -> tuple[
            list[NodeId], dict[NodeId, Point], bool]:
        """The batched engine's mobility & liveness block.

        Returns ``(present, positions, unchanged)`` for round ``r``
        exactly as :meth:`_step_batched` computes them (steady-state
        cache, dirty-set protocol, identical mobility call sequences).
        Factored out so the sharded executor (:mod:`repro.net.shard`)
        can derive every process's position map with byte-identical
        semantics; callers are responsible for the follow-up
        ``locations.observe`` / ``_last_present`` / ``_batch_prev``
        bookkeeping.
        """
        nodes = self._nodes
        fast = self.fast_path
        no_crashes = fast and not len(self.crashes)
        steady = no_crashes and self._max_start <= r
        if steady and self._all_static:
            present = self._node_list
            if self._steady_positions is None:
                self._steady_positions = {
                    node: nodes[node].static_position
                    for node in present
                }
                unchanged = False
            else:
                unchanged = self._positions_observed
            positions: dict[NodeId, Point] = self._steady_positions.copy()
        else:
            if no_crashes:
                present = [
                    node for node in self._node_list
                    if nodes[node].start_round <= r
                ]
            else:
                present = [
                    node for node in self._node_list
                    if self.alive(node, r)
                ]
            prev = self._batch_prev
            if fast and prev is not None and prev[0] == r - 1 \
                    and prev[1] == present:
                # Dirty set: same membership as last round, so start
                # from its map and rebuild only the moved entries (the
                # models' identity promise keeps the skip invisible,
                # pickles included).
                positions = prev[2].copy()
                clean = True
                for node in present:
                    entry = nodes[node]
                    if entry.static_position is not None:
                        continue
                    mobility = entry.mobility
                    if not mobility.moved_in(r):
                        continue
                    p = mobility.position_at(r)
                    if p is not positions[node]:
                        positions[node] = p
                        clean = False
                unchanged = clean and self._positions_observed
            else:
                positions = {}
                all_static = True
                for node in present:
                    entry = nodes[node]
                    p = entry.static_position
                    if p is None:
                        all_static = False
                        p = entry.mobility.position_at(r)
                    positions[node] = p
                unchanged = (all_static
                             and present == self._last_present
                             and self._positions_observed)
        return present, positions, unchanged

    def _step_batched(self) -> RoundRecord:
        """The batched dispatch engine (the default round loop).

        Observably identical to :meth:`_step_reference` — same component
        call sequences (contention managers, adversary and detector RNG
        streams, process methods) and identical round-record object
        graphs — but organised round-at-a-time instead of node-at-a-time:

        * the position map is maintained through the mobility dirty-set
          protocol (copy last round's map, touch only nodes whose model
          reports movement) instead of n ``position_at`` dispatches;
        * payload collection runs over prebound send methods and hands
          the channel the whole batch (with its already-sorted sender
          list) in one call;
        * deliveries share a single per-round :class:`RoundBatch`, so
          protocols with a ``deliver_batch`` override decode the round's
          broadcasts once for all receivers;
        * contention bookkeeping is skipped outright when no registered
          process can ever contend.
        """
        r = self._round
        nodes = self._nodes
        fast = self.fast_path
        crashes = self.crashes
        no_crashes = fast and not len(crashes)
        steady = no_crashes and self._max_start <= r

        # -- mobility & liveness ---------------------------------------
        present, positions, unchanged = self._positions_batched(r)
        if (fast and unchanged
                and self.locations.staleness_bound == 0):
            pass  # see _step_reference: re-observing would be a no-op
        else:
            self.locations.observe(r, positions)
            self._positions_observed = True
        self._last_present = present
        self._batch_prev = (r, present, positions)

        # -- contention ------------------------------------------------
        cms = self.cms
        possible = self._contenders_possible
        contenders: dict[str, list[NodeId]] | None = None
        advice: dict[str, frozenset[NodeId]] | None = None
        advised: set[NodeId] | None = None
        if possible:
            if not fast:
                candidates = present
            elif steady:
                candidates = possible
            elif no_crashes:
                candidates = [node for node in possible
                              if nodes[node].start_round <= r]
            elif len(possible) == len(nodes):
                candidates = present
            else:
                candidates = [node for node in possible
                              if self.alive(node, r)]
            contenders = {}
            contend_fns = self._contend_fns
            for node in candidates:
                if not no_crashes and not crashes.sends_in(node, r):
                    continue
                cm_name = contend_fns[node](r)
                if cm_name is None:
                    continue
                if cm_name not in cms:
                    raise SimulationError(
                        f"node {node} contended for unknown manager {cm_name!r}"
                    )
                bucket = contenders.get(cm_name)
                if bucket is None:
                    contenders[cm_name] = [node]
                else:
                    bucket.append(node)
            if contenders:
                advice = {}
                advised = set()
                for cm_name, cnodes in sorted(contenders.items()):
                    # Same clip as the reference's `& frozenset(cnodes)`
                    # without materialising the n-element operand.
                    granted = cms[cm_name].advise(r, cnodes).intersection(cnodes)
                    advice[cm_name] = granted
                    advised.update(granted)

        # -- send --------------------------------------------------------
        broadcasts: dict[NodeId, Message] = {}
        senders: list[NodeId] = []
        send_fns = self._send_fns
        if advised:
            for node in present:
                if not no_crashes and not crashes.sends_in(node, r):
                    continue
                payload = send_fns[node](r, node in advised)
                if payload is not None:
                    broadcasts[node] = Message(node, payload)
                    senders.append(node)
        else:
            for node in present:
                if not no_crashes and not crashes.sends_in(node, r):
                    continue
                payload = send_fns[node](r, False)
                if payload is not None:
                    broadcasts[node] = Message(node, payload)
                    senders.append(node)

        # -- channel -----------------------------------------------------
        receptions = self.channel.deliver_batch(
            r, positions, broadcasts, senders,
            positions_unchanged=unchanged and fast)

        # -- detect & deliver ---------------------------------------------
        flags: dict[NodeId, bool] = {}
        delivered: dict[NodeId, tuple[Message, ...]] = {}
        adversary = self.adversary
        benign = type(adversary) is NoAdversary
        false_collision = adversary.false_collision
        detector = self.detector
        fast_detect = (fast
                       and type(detector) is EventuallyAccurateDetector
                       and r >= detector.racc)
        indicate = detector.indicate
        batch = RoundBatch(broadcasts)
        deliver_fns = self._deliver_fns
        batch_fns = self._deliver_batch_fns
        any_flag = False
        for node in present:
            if not no_crashes and not crashes.receives_in(node, r):
                continue
            reception = receptions[node]
            spurious = False if benign else false_collision(r, node)
            flag = (reception.lost_within_r2 if fast_detect
                    else indicate(r, node, reception, spurious))
            flags[node] = flag
            if flag:
                any_flag = True
            messages = reception.messages
            delivered[node] = messages
            bfn = batch_fns[node]
            if bfn is not None:
                bfn(r, messages, flag, batch)
            else:
                deliver_fns[node](r, messages, flag)

        # -- contention feedback ------------------------------------------
        if contenders:
            flags_get = flags.get
            for cm_name, cnodes in sorted(contenders.items()):
                # A collision-free round (the overwhelmingly common one)
                # needs no per-contender flag scan: any() over any
                # subset of an all-False map is False.
                collided = any_flag and any(
                    flags_get(node, False) for node in cnodes)
                cms[cm_name].feedback(
                    r, active=advice[cm_name], collided=collided
                )

        if no_crashes:
            crashed_now: frozenset[NodeId] = frozenset()
        else:
            crashed_now = frozenset(
                node for node in sorted(nodes)
                if self.alive(node, r) != self.alive(node, r + 1)
                and nodes[node].start_round <= r
            )
        record = RoundRecord(
            round=r,
            positions=positions,
            broadcasts=broadcasts,
            receptions=delivered,
            collisions=flags,
            advised_active=frozenset(advised) if advised else frozenset(),
            crashed=crashed_now,
        )
        if self.record_trace:
            self.trace.append(record)
        for observer in self._observers:
            observer(record)
        self._round += 1
        return record

    def run(self, rounds: int) -> Trace:
        """Execute ``rounds`` rounds and return the accumulated trace."""
        if rounds < 0:
            raise ConfigurationError("rounds must be non-negative")
        for _ in range(rounds):
            self.step()
        return self.trace
