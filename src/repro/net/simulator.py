"""The synchronous ("slotted") round engine.

One :meth:`Simulator.step` executes one communication round of the model
in Section 2, in this order:

1. **Mobility & liveness** — positions of every *present* node (started,
   not yet fully crashed) are read from its mobility model, and the
   location service takes its periodic snapshot.
2. **Contention** — each node that still executes its send step names the
   contention manager it contends for; each manager issues advice, which
   the simulator clips to actual contenders (Property 3(3)).
3. **Send** — each sending node returns a payload or ``None``.  A node
   crashing ``AFTER_SEND`` this round still broadcasts (the footnote-2
   decide-and-die scenario); one crashing ``BEFORE_SEND`` is already gone.
4. **Channel** — the quasi-unit-disk channel resolves deliveries, with
   adversarial drops allowed only before ``rcf``.
5. **Detect & deliver** — each receiving node gets its messages and the
   collision flag computed by the configured detector (spurious-collision
   requests come from the adversary and are honoured only before the
   detector's accuracy round).
6. **Feedback** — contention managers observe whether their advisees'
   broadcasts suffered contention, so back-off managers can adapt.

All sources of nondeterminism (mobility, adversary, contention) are owned
by seeded components, so a run is a pure function of its configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from ..detectors import CollisionDetector, EventuallyAccurateDetector
from ..contention import ContentionManager
from ..errors import ConfigurationError, SimulationError
from ..geometry import Point
from ..types import NodeId, Round
from .adversary import Adversary, NoAdversary
from .channel import Channel, RadioSpec, Reception
from .location import LocationService
from .messages import Message
from .mobility import MobilityModel, StaticMobility
from .node import CrashSchedule, Process
from .trace import RoundRecord, Trace

#: Per-round hook: called with each completed :class:`RoundRecord`.
RoundObserver = Callable[[RoundRecord], None]


@dataclass
class _NodeEntry:
    process: Process
    mobility: MobilityModel
    start_round: Round


class Simulator:
    """Drives a set of processes over the collision-prone channel."""

    def __init__(self, *, spec: RadioSpec,
                 adversary: Adversary | None = None,
                 detector: CollisionDetector | None = None,
                 cms: dict[str, ContentionManager] | None = None,
                 crashes: CrashSchedule | None = None,
                 location_update_period: int = 1,
                 observers: Iterable[RoundObserver] = (),
                 record_trace: bool = True) -> None:
        self.spec = spec
        self.adversary = adversary if adversary is not None else NoAdversary()
        self.channel = Channel(spec, self.adversary)
        self.detector = detector if detector is not None else EventuallyAccurateDetector()
        self.cms: dict[str, ContentionManager] = dict(cms or {})
        self.crashes = crashes if crashes is not None else CrashSchedule()
        self.locations = LocationService(update_period=location_update_period)
        self.trace = Trace()
        self.record_trace = record_trace
        self._observers: list[RoundObserver] = list(observers)
        self._nodes: dict[NodeId, _NodeEntry] = {}
        self._round: Round = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def add_node(self, process: Process,
                 mobility: MobilityModel | Point,
                 *, start_round: Round = 0) -> NodeId:
        """Register a process; returns its simulator-assigned node id.

        ``mobility`` may be a bare :class:`Point` as shorthand for a static
        node at that position.  ``start_round`` models a device that powers
        on late (it neither transmits, receives, nor interferes earlier).
        """
        if start_round < 0:
            raise ConfigurationError("start_round must be non-negative")
        if isinstance(mobility, Point):
            mobility = StaticMobility(mobility)
        node_id = len(self._nodes)
        self._nodes[node_id] = _NodeEntry(process, mobility, start_round)
        return node_id

    def add_cm(self, name: str, cm: ContentionManager) -> None:
        if name in self.cms:
            raise ConfigurationError(f"contention manager {name!r} already registered")
        self.cms[name] = cm

    def add_observer(self, observer: RoundObserver) -> None:
        """Register a per-round callback.

        Observers see every :class:`RoundRecord` as it is produced, so
        metrics can be accumulated online instead of re-scanning the whole
        :class:`Trace` afterwards; with ``record_trace=False`` they are the
        *only* consumers and long runs need not retain the trace at all.
        """
        self._observers.append(observer)

    @property
    def current_round(self) -> Round:
        return self._round

    @property
    def node_ids(self) -> list[NodeId]:
        return sorted(self._nodes)

    def process_of(self, node_id: NodeId) -> Process:
        return self._nodes[node_id].process

    def alive(self, node_id: NodeId, r: Round | None = None) -> bool:
        """Present in the network at round ``r`` (default: current round)."""
        r = self._round if r is None else r
        entry = self._nodes[node_id]
        return entry.start_round <= r and not self.crashes.crashed_by(node_id, r)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> RoundRecord:
        """Execute one synchronous round and append it to the trace."""
        r = self._round
        present = [
            node for node in sorted(self._nodes)
            if self.alive(node, r)
        ]
        positions: dict[NodeId, Point] = {
            node: self._nodes[node].mobility.position_at(r) for node in present
        }
        self.locations.observe(r, positions)

        # -- contention ------------------------------------------------
        contenders: dict[str, list[NodeId]] = {}
        contended_for: dict[NodeId, str] = {}
        for node in present:
            if not self.crashes.sends_in(node, r):
                continue
            cm_name = self._nodes[node].process.contend(r)
            if cm_name is None:
                continue
            if cm_name not in self.cms:
                raise SimulationError(
                    f"node {node} contended for unknown manager {cm_name!r}"
                )
            contenders.setdefault(cm_name, []).append(node)
            contended_for[node] = cm_name

        advice: dict[str, frozenset[NodeId]] = {}
        advised: set[NodeId] = set()
        for cm_name, nodes in sorted(contenders.items()):
            granted = self.cms[cm_name].advise(r, nodes) & frozenset(nodes)
            advice[cm_name] = granted
            advised.update(granted)

        # -- send --------------------------------------------------------
        broadcasts: dict[NodeId, Message] = {}
        for node in present:
            if not self.crashes.sends_in(node, r):
                continue
            payload = self._nodes[node].process.send(r, node in advised)
            if payload is not None:
                broadcasts[node] = Message(node, payload)

        # -- channel -----------------------------------------------------
        receptions = self.channel.deliver(r, positions, broadcasts)

        # -- detect & deliver ---------------------------------------------
        flags: dict[NodeId, bool] = {}
        delivered: dict[NodeId, tuple[Message, ...]] = {}
        for node in present:
            if not self.crashes.receives_in(node, r):
                continue
            reception = receptions[node]
            spurious = self.adversary.false_collision(r, node)
            flag = self.detector.indicate(r, node, reception, spurious)
            flags[node] = flag
            delivered[node] = reception.messages
            self._nodes[node].process.deliver(r, reception.messages, flag)

        # -- contention feedback ------------------------------------------
        for cm_name, nodes in sorted(contenders.items()):
            collided = any(flags.get(node, False) for node in nodes)
            self.cms[cm_name].feedback(
                r, active=advice[cm_name], collided=collided
            )

        crashed_now = frozenset(
            node for node in sorted(self._nodes)
            if self.alive(node, r) != self.alive(node, r + 1)
            and self._nodes[node].start_round <= r
        )
        record = RoundRecord(
            round=r,
            positions=positions,
            broadcasts=broadcasts,
            receptions=delivered,
            collisions=flags,
            advised_active=frozenset(advised),
            crashed=crashed_now,
        )
        if self.record_trace:
            self.trace.append(record)
        for observer in self._observers:
            observer(record)
        self._round += 1
        return record

    def run(self, rounds: int) -> Trace:
        """Execute ``rounds`` rounds and return the accumulated trace."""
        if rounds < 0:
            raise ConfigurationError("rounds must be non-negative")
        for _ in range(rounds):
            self.step()
        return self.trace
