"""Spatial-grid neighbor index for the broadcast channel's fast path.

The reference channel resolves every round by scanning all (receiver,
sender) pairs — O(n·s) exact distance tests.  The fast path instead keeps
every node bucketed in a uniform grid of cell size ``R2`` and, for each
*sender*, visits only the 3x3 block of cells that can contain nodes within
``R2`` — near-O(senders) work when the deployment is spread out, and a
much smaller constant even when it is not (the inner loop runs on
unboxed float pairs instead of :meth:`repro.geometry.Point.within` calls).

Two properties matter for the byte-identical guarantee the differential
suite enforces (``tests/net/test_differential.py``):

* **Exactness** — the grid only *preselects* candidates; membership is
  always decided by the same squared-distance predicate the reference
  path uses (``dx*dx + dy*dy <= radius*radius`` on the same floats), so
  boundary cases resolve identically.
* **Conservative cell cover** — ``floor`` is monotone, so every node
  within ``radius`` of a query point lies in one of the covered cells;
  the grid can over-approximate but never miss.

Updates are incremental: :meth:`SpatialGridIndex.update` diffs the new
position map against the previous round and touches only nodes that
appeared, vanished, or actually moved, so static (and slow-mobility)
worlds pay a dict-lookup sweep instead of a rebuild.
"""

from __future__ import annotations

from math import floor
from typing import Iterator, Mapping

from ..geometry import Point
from ..types import NodeId

#: A bucketed node: (node id, x, y) with coordinates unboxed for the
#: channel's inner loop.
_Entry = tuple[NodeId, float, float]


class SpatialGridIndex:
    """Uniform-grid index over node positions, incrementally maintained."""

    __slots__ = ("_cell", "_inv_cell", "_cells", "_where")

    def __init__(self, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self._cell = cell_size
        self._inv_cell = 1.0 / cell_size
        #: (cx, cy) -> {node: (node, x, y)} — the value tuples carry the
        #: coordinates so candidate scans never re-hash into ``_where``.
        self._cells: dict[tuple[int, int], dict[NodeId, _Entry]] = {}
        #: node -> (x, y, cx, cy) of its current bucket.
        self._where: dict[NodeId, tuple[float, float, int, int]] = {}

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._where

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def update(self, positions: Mapping[NodeId, Point]) -> int:
        """Synchronise the index with ``positions``; returns nodes moved.

        Nodes absent from ``positions`` are evicted, new nodes inserted,
        and nodes whose coordinates changed re-bucketed.  A static world
        costs one dict lookup and tuple compare per node and allocates
        nothing.
        """
        where = self._where
        cells = self._cells
        known_before = len(where)
        inv = self._inv_cell
        moved = 0
        seen_known = 0
        where_get = where.get
        for node, point in positions.items():
            x, y = point.x, point.y
            prev = where_get(node)
            if prev is not None:
                seen_known += 1
                if prev[0] == x and prev[1] == y:
                    continue
                cx, cy = floor(x * inv), floor(y * inv)
                if prev[2] == cx and prev[3] == cy:
                    # Moved within its cell: refresh coordinates in place.
                    where[node] = (x, y, cx, cy)
                    cells[cx, cy][node] = (node, x, y)
                    moved += 1
                    continue
                old = cells[prev[2], prev[3]]
                del old[node]
                if not old:
                    del cells[prev[2], prev[3]]
            else:
                cx, cy = floor(x * inv), floor(y * inv)
            where[node] = (x, y, cx, cy)
            bucket = cells.get((cx, cy))
            if bucket is None:
                bucket = cells[cx, cy] = {}
            bucket[node] = (node, x, y)
            moved += 1
        if seen_known < known_before:
            # Some previously bucketed nodes are absent from ``positions``.
            for node in [n for n in where if n not in positions]:
                self._evict(node)
                moved += 1
        return moved

    def clear(self) -> None:
        self._cells.clear()
        self._where.clear()

    def _evict(self, node: NodeId) -> None:
        x, y, cx, cy = self._where.pop(node)
        bucket = self._cells[cx, cy]
        del bucket[node]
        if not bucket:
            del self._cells[cx, cy]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def buckets_overlapping(self, x: float, y: float,
                            radius: float) -> Iterator[dict[NodeId, _Entry]]:
        """Occupied cell buckets overlapping the query disk.

        A superset cover of the true neighborhood; callers iterate each
        bucket's ``.values()`` and apply the exact distance predicate
        themselves (the channel inlines it into unboxed float math).
        """
        inv = self._inv_cell
        cells = self._cells
        cx_lo, cx_hi = floor((x - radius) * inv), floor((x + radius) * inv)
        cy_lo, cy_hi = floor((y - radius) * inv), floor((y + radius) * inv)
        for cx in range(cx_lo, cx_hi + 1):
            for cy in range(cy_lo, cy_hi + 1):
                bucket = cells.get((cx, cy))
                if bucket is not None:
                    yield bucket

    def candidates(self, x: float, y: float, radius: float) -> Iterator[_Entry]:
        """All bucketed nodes in cells overlapping the query disk."""
        for bucket in self.buckets_overlapping(x, y, radius):
            yield from bucket.values()

    def neighbors_within(self, center: Point, radius: float) -> list[NodeId]:
        """Node ids within ``radius`` of ``center`` (sorted, exact).

        Uses the same squared-distance predicate as
        :meth:`repro.geometry.Point.within`, so results agree with a full
        scan bit-for-bit.
        """
        x, y = center.x, center.y
        r_sq = radius * radius
        out = []
        for node, nx, ny in self.candidates(x, y, radius):
            dx = nx - x
            dy = ny - y
            if dx * dx + dy * dy <= r_sq:
                out.append(node)
        out.sort()
        return out

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def cell_count(self) -> int:
        """Number of occupied grid cells (diagnostics / tests)."""
        return len(self._cells)

    def coords_of(self, node: NodeId) -> tuple[float, float]:
        """Unboxed coordinates of a bucketed node."""
        entry = self._where[node]
        return entry[0], entry[1]
