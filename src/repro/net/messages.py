"""Message envelopes and wire-size accounting.

Theorem 14 of the paper claims every CHAP message is *constant size*,
"independent of n and the length of the execution" (with the footnote that
an array index — an instance pointer — counts as constant size).  To make
that claim measurable we attach a deterministic wire-size estimate to every
payload: experiment E2 plots this estimate for CHAP against the naive
full-history replicated-state-machine baseline.

Protocols must treat :attr:`Message.sender` as invisible: the paper's model
has anonymous nodes, and the simulator attaches sender ids purely so that
traces and assertions can refer to them.  The test-suite enforces this by
running protocols whose logic touches only :attr:`Message.payload`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, is_dataclass
from typing import Any

from ..types import NodeId, Sentinel

#: Size charged for an integer field.  The paper's footnote 3 ("we consider
#: an array index to be of constant size") licenses a fixed cost for
#: instance pointers regardless of magnitude.
INT_SIZE = 4

#: Size charged for a float field.
FLOAT_SIZE = 8

#: Per-container overhead (length prefix / tag byte).
CONTAINER_OVERHEAD = 2

#: Size of the bottom symbol / None.
NONE_SIZE = 1


def wire_size(payload: Any) -> int:
    """Deterministic wire-size estimate, in bytes, of a payload.

    The estimate is a simple recursive encoding model: fixed-size scalars,
    length-prefixed strings and containers, and dataclasses encoded as the
    tuple of their fields.  It is *not* a real serialiser; it exists so
    that "message size" is a well-defined, reproducible metric.
    """
    if payload is None:
        return NONE_SIZE
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return INT_SIZE
    if isinstance(payload, float):
        return FLOAT_SIZE
    if isinstance(payload, (str, bytes)):
        return CONTAINER_OVERHEAD + len(payload)
    if isinstance(payload, (tuple, list, set, frozenset)):
        return CONTAINER_OVERHEAD + sum(wire_size(item) for item in payload)
    if isinstance(payload, dict):
        return CONTAINER_OVERHEAD + sum(
            wire_size(k) + wire_size(v) for k, v in payload.items()
        )
    if is_dataclass(payload) and not isinstance(payload, type):
        return CONTAINER_OVERHEAD + sum(
            wire_size(getattr(payload, f.name)) for f in fields(payload)
        )
    raise TypeError(f"wire_size: unsupported payload type {type(payload)!r}")


@dataclass(frozen=True, slots=True)
class Message:
    """A broadcast message as it appears on the channel.

    ``sender`` is simulator bookkeeping only (nodes are anonymous in the
    model); protocol logic must consult only ``payload``.
    """

    sender: NodeId
    payload: Any

    @property
    def size(self) -> int:
        """Wire-size estimate of the payload (envelope not charged)."""
        return wire_size(self.payload)


#: Sentinel: the round batch has not classified its broadcasts yet.
_UNRESOLVED = Sentinel(__name__, "_UNRESOLVED")

#: Sentinel returned by :meth:`RoundBatch.uniform_tag` when the round's
#: broadcasts carry no single common ``tag`` (or there are none at all).
#: Distinct from any real tag, including ``None``-tagged payloads.
#: Pickle-stable so ``is MIXED_TAGS`` keeps working for any state that
#: crosses a process boundary (e.g. the sharded engine's workers).
MIXED_TAGS = Sentinel(__name__, "MIXED_TAGS")


class RoundBatch:
    """A shared, per-round decoded view of one round's broadcasts.

    The batched round engine builds exactly one ``RoundBatch`` per round
    and hands it to every receiver's
    :meth:`~repro.net.node.Process.deliver_batch`, so work that depends
    only on *what was broadcast* — not on who received it — happens once
    per round instead of once per receiver.  All derived views are lazy:
    a round whose receivers never consult the batch pays one attribute
    store.  Batches are round-scoped; holding one past the round it was
    built for is a bug.
    """

    __slots__ = ("broadcasts", "_uniform_tag", "memo")

    def __init__(self, broadcasts: "dict[NodeId, Message]") -> None:
        self.broadcasts = broadcasts
        self._uniform_tag: Any = _UNRESOLVED
        #: Free-form per-round scratch space for receivers.  Reception
        #: work that depends only on what was broadcast — not on who is
        #: receiving — is computed by the round's first receiver and
        #: shared by the rest (the CHA family memoises its decoded
        #: payload and ballot lists here, keyed by tag and instance).
        #: Round-scoped like the batch itself.
        self.memo: dict = {}

    def uniform_tag(self) -> Any:
        """The single ``tag`` attribute shared by every broadcast payload
        this round, or :data:`MIXED_TAGS`.

        Tag-multiplexed protocols (the CHA family, the emulation) filter
        every reception by their own tag; when the whole round is known
        to carry one tag, a receiver whose tag matches can skip the
        per-message ``getattr`` scan entirely and one whose tag differs
        can discard the reception wholesale.
        """
        tag = self._uniform_tag
        if tag is _UNRESOLVED:
            tag = MIXED_TAGS
            first = True
            for message in self.broadcasts.values():
                t = getattr(message.payload, "tag", MIXED_TAGS)
                if first:
                    tag = t
                    first = False
                elif t != tag:
                    tag = MIXED_TAGS
                    break
            self._uniform_tag = tag
        return tag
