"""Message envelopes and wire-size accounting.

Theorem 14 of the paper claims every CHAP message is *constant size*,
"independent of n and the length of the execution" (with the footnote that
an array index — an instance pointer — counts as constant size).  To make
that claim measurable we attach a deterministic wire-size estimate to every
payload: experiment E2 plots this estimate for CHAP against the naive
full-history replicated-state-machine baseline.

Protocols must treat :attr:`Message.sender` as invisible: the paper's model
has anonymous nodes, and the simulator attaches sender ids purely so that
traces and assertions can refer to them.  The test-suite enforces this by
running protocols whose logic touches only :attr:`Message.payload`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, is_dataclass
from typing import Any

from ..types import NodeId

#: Size charged for an integer field.  The paper's footnote 3 ("we consider
#: an array index to be of constant size") licenses a fixed cost for
#: instance pointers regardless of magnitude.
INT_SIZE = 4

#: Size charged for a float field.
FLOAT_SIZE = 8

#: Per-container overhead (length prefix / tag byte).
CONTAINER_OVERHEAD = 2

#: Size of the bottom symbol / None.
NONE_SIZE = 1


def wire_size(payload: Any) -> int:
    """Deterministic wire-size estimate, in bytes, of a payload.

    The estimate is a simple recursive encoding model: fixed-size scalars,
    length-prefixed strings and containers, and dataclasses encoded as the
    tuple of their fields.  It is *not* a real serialiser; it exists so
    that "message size" is a well-defined, reproducible metric.
    """
    if payload is None:
        return NONE_SIZE
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return INT_SIZE
    if isinstance(payload, float):
        return FLOAT_SIZE
    if isinstance(payload, (str, bytes)):
        return CONTAINER_OVERHEAD + len(payload)
    if isinstance(payload, (tuple, list, set, frozenset)):
        return CONTAINER_OVERHEAD + sum(wire_size(item) for item in payload)
    if isinstance(payload, dict):
        return CONTAINER_OVERHEAD + sum(
            wire_size(k) + wire_size(v) for k, v in payload.items()
        )
    if is_dataclass(payload) and not isinstance(payload, type):
        return CONTAINER_OVERHEAD + sum(
            wire_size(getattr(payload, f.name)) for f in fields(payload)
        )
    raise TypeError(f"wire_size: unsupported payload type {type(payload)!r}")


@dataclass(frozen=True, slots=True)
class Message:
    """A broadcast message as it appears on the channel.

    ``sender`` is simulator bookkeeping only (nodes are anonymous in the
    model); protocol logic must consult only ``payload``.
    """

    sender: NodeId
    payload: Any

    @property
    def size(self) -> int:
        """Wire-size estimate of the payload (envelope not charged)."""
        return wire_size(self.payload)
