"""Sharded multi-process execution of the batched round engine.

The spatial grid index (:mod:`repro.net.index`) partitions *space*; this
module partitions the *world*: the deployment area is split into
contiguous **cell-column strips** (column width = ``R2``, the same
``floor(x / R2)`` arithmetic the grid index uses), each strip is owned by
one forked worker process, and every round the workers run the batched
engine's send/deliver hot loop over their resident nodes while the
coordinator handles the global, inherently-serial pieces (contention
advice, CM feedback, observers).  Only **boundary-cell payloads** cross
process borders: a sender can reach a receiver in another strip only
from the strip's outermost cell column (two columns apart is already
``> R2`` horizontally), so each worker exports just its edge-column
broadcasts and imports the neighbouring strips' edge columns as ghosts.

Determinism strategy — *compute, don't communicate*:

* **Positions** are never shipped.  Every process (coordinator and each
  worker) derives the full present set and position map through the very
  same :meth:`Simulator._positions_batched` block over its own forked
  mobility models; models are deterministic, so all copies agree to the
  bit, round after round.
* **Ownership** is a pure function of position: ``strip_of(floor(x/R2))``
  against the planned column bounds.  Every process evaluates it
  identically, so border **migrations** are detected everywhere without
  coordination — only the migrating node's process state travels
  (exporter → coordinator → importer, in a fixed order, deadlock-free).
* **Power-on** of a registered-but-dormant node (``start_round`` in the
  future) needs no transfer at all: forked copies are pristine until the
  node first acts, so the owner-at-start-round simply starts using its
  own copy.  Mid-run :meth:`ShardedSimulator.add_node` registers the new
  node on every process (the process/mobility objects must pickle).

Two execution modes, chosen automatically:

* **Mirror mode** (``record_trace=True``, or an observer without
  summary support): the coordinator runs the *full serial engine* itself
  — traces, records, metrics are its own organically-built object
  graphs, byte-identical to a serial run by construction — while the
  workers run the real sharded machinery in parallel and are
  **cross-checked** every round (collision flags, sender sets, per-CM
  feedback) and at finish (per-node protocol state).  This is the
  verification harness the ``shard_differential`` suite leans on; it is
  *not* faster than serial.
* **Fast mode** (``record_trace=False``, summary-capable observers,
  snapshot/restore-capable cores): the coordinator skips process
  dispatch entirely — it only derives positions, runs contention
  advice/feedback over the merged contender lists (exactly the serial
  call shapes), and feeds observers via ``observe_summary``.  At finish
  the workers ship their cores' state home and a canonicalisation walk
  re-unifies the object graph so outputs/metrics pickles match the
  serial engine byte for byte.  This is the bench speed path
  (``cha-10k-shard``).

Gated hard (raise :class:`ConfigurationError`): only the benign
:class:`NoAdversary` (adversary RNG streams are inherently global), only
the stateless :class:`EventuallyAccurateDetector`, and a ``fork``-capable
platform.  ``shards <= 1`` — or a world too narrow to split into two
cell columns — falls back to the serial engine transparently.

Canonicalisation caveat: the walk unifies *equal* strings and ballots
across worker pickle streams, which reproduces the serial object graph
exactly when equal values only arise by flowing through messages (true
for the default per-node-unique proposers).  A workload proposing the
same value string from different nodes may pickle with different (more
shared) memo structure than a serial run; results remain structurally
equal.
"""

from __future__ import annotations

import io
import os
import pickle
from bisect import bisect_right
from dataclasses import dataclass
from math import floor
from typing import Any, Mapping, Sequence

from ..detectors import EventuallyAccurateDetector
from ..errors import ConfigurationError, SimulationError
from ..geometry import Point
from ..types import NodeId, Round
from .adversary import NoAdversary
from .messages import Message, RoundBatch
from .mobility import MobilityModel
from .simulator import Simulator
from .trace import RoundRecord

#: Environment switch: an integer > 1 runs every experiment-runner
#: cluster execution sharded across that many worker processes (the
#: fifth reference-style switch, alongside ``REPRO_REFERENCE_CHANNEL``
#: / ``_HISTORY`` / ``_ENGINE`` / ``_CORE``).
SHARDS_ENV = "REPRO_SHARDS"


def shards_forced() -> int | None:
    """The shard count pinned by the environment, if any."""
    raw = os.environ.get(SHARDS_ENV, "")
    if raw in ("", "0"):
        return None
    try:
        shards = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{SHARDS_ENV} must be an integer, got {raw!r}"
        ) from None
    if shards < 1:
        raise ConfigurationError(f"{SHARDS_ENV} must be >= 1, got {shards}")
    return shards


# ----------------------------------------------------------------------
# Strip planning
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ShardPlan:
    """Contiguous cell-column strips over the deployment's x axis.

    ``bounds[i]`` is the first column owned by strip ``i + 1``; strip 0
    extends to ``-inf`` and the last strip to ``+inf``, so ownership is
    total over any position mobility may ever produce.  ``inv_cell`` is
    ``1 / R2`` — the *same* float the grid index multiplies by, so strip
    and grid cell boundaries agree bit for bit.
    """

    inv_cell: float
    bounds: tuple[int, ...]

    @property
    def shards(self) -> int:
        return len(self.bounds) + 1

    def col_of(self, x: float) -> int:
        return floor(x * self.inv_cell)

    def strip_of_col(self, col: int) -> int:
        return bisect_right(self.bounds, col)

    def strip_of(self, x: float) -> int:
        return bisect_right(self.bounds, floor(x * self.inv_cell))

    def edge_cols(self, strip: int) -> tuple[int | None, int | None]:
        """The strip's outermost owned columns facing each neighbour.

        ``(left, right)`` — ``None`` where there is no neighbour.  Only
        senders positioned exactly in an edge column can reach receivers
        across the border (two columns apart exceeds ``R2``), so these
        are the boundary-export columns.
        """
        left = self.bounds[strip - 1] if strip > 0 else None
        right = self.bounds[strip] - 1 if strip < len(self.bounds) else None
        return left, right


def plan_shards(positions: Sequence[Point], cell_size: float,
                shards: int) -> ShardPlan | None:
    """Balance ``shards`` contiguous column strips by node count.

    ``positions`` are the planning positions (initial deployment, or
    positions at each node's start round); balancing is a heuristic —
    ownership at run time always follows live positions.  Returns
    ``None`` when the deployment spans too few distinct columns to split
    (sharding then falls back to serial execution).
    """
    if shards < 2 or not positions:
        return None
    if cell_size <= 0:
        raise ConfigurationError(f"cell_size must be positive, got {cell_size}")
    inv = 1.0 / cell_size
    counts: dict[int, int] = {}
    for p in positions:
        col = floor(p.x * inv)
        counts[col] = counts.get(col, 0) + 1
    cols = sorted(counts)
    strips = min(shards, len(cols))
    if strips < 2:
        return None
    bounds: list[int] = []
    remaining_nodes = len(positions)
    taken = 0
    col_index = 0
    for strip in range(strips - 1):
        strips_left = strips - strip
        target = remaining_nodes / strips_left
        # Take at least one column, and leave at least one per later strip.
        latest = len(cols) - (strips - 1 - strip)
        acc = 0
        while col_index < latest:
            acc += counts[cols[col_index]]
            col_index += 1
            if acc >= target:
                break
        remaining_nodes -= acc
        taken += acc
        bounds.append(cols[col_index])
    return ShardPlan(inv_cell=inv, bounds=tuple(bounds))


def _update_owners(owner: dict[NodeId, int], plan: ShardPlan,
                   present: Sequence[NodeId],
                   positions: Mapping[NodeId, Point]
                   ) -> list[tuple[NodeId, int, int]]:
    """Advance the ownership map for one round; returns migrations.

    Pure function of (positions, plan) evaluated identically on every
    process.  A node appearing for the first time (power-on) is claimed
    without a migration — its forked process copies are still pristine
    everywhere, so the new owner's copy is already authoritative.
    """
    migrations: list[tuple[NodeId, int, int]] = []
    for node in present:
        strip = plan.strip_of(positions[node].x)
        old = owner.get(node)
        if old is None:
            owner[node] = strip
        elif old != strip:
            migrations.append((node, old, strip))
            owner[node] = strip
    return migrations


# ----------------------------------------------------------------------
# Canonicalisation (fast-mode state reassembly)
# ----------------------------------------------------------------------

class _Canonicalizer:
    """Re-unify object graphs unpickled from separate worker streams.

    Serial runs share equal strings/ballots *by reference* (values flow
    through messages and are adopted, not copied).  State shipped home
    from N workers arrives as N independent pickle graphs; this walk
    interns strings and ballots and rebuilds histories into their
    canonical dict representation, so the reassembled result pickles
    byte-identically to the serial engine's.
    """

    def __init__(self) -> None:
        self._strings: dict[str, str] = {}
        self._ballots: dict[tuple, Any] = {}

    def walk(self, value: Any) -> Any:
        t = type(value)
        if t is str:
            return self._strings.setdefault(value, value)
        if t is int or t is float or t is bool or value is None:
            return value
        if t is dict:
            return {self.walk(k): self.walk(v) for k, v in value.items()}
        if t is list:
            return [self.walk(v) for v in value]
        if t is tuple:
            return tuple(self.walk(v) for v in value)
        from ..core.ballot import Ballot
        from ..core.checkpoint import CheckpointOutput
        from ..core.history import History
        if t is History:
            return History(value.length,
                           {k: self.walk(v) for k, v in value.items()})
        if t is Ballot:
            key = (value.value, value.prev_instance)
            found = self._ballots.get(key)
            if found is None:
                found = Ballot(self.walk(value.value), value.prev_instance)
                self._ballots[key] = found
            return found
        if t is CheckpointOutput:
            return CheckpointOutput(
                checkpoint_instance=value.checkpoint_instance,
                checkpoint_state=self.walk(value.checkpoint_state),
                suffix=self.walk(value.suffix),
            )
        import enum
        if isinstance(value, enum.Enum):
            return value  # pickled by reference; already canonical
        if t is frozenset:
            return frozenset(self.walk(v) for v in value)
        # Unknown types (custom checkpoint reducer states, ...) pass
        # through: structurally correct, though cross-worker sharing of
        # *equal but distinct* instances is not re-unified.
        return value


def _picklable(obj: Any) -> bool:
    try:
        pickle.dump(obj, io.BytesIO(), protocol=pickle.HIGHEST_PROTOCOL)
        return True
    except Exception:
        return False


# ----------------------------------------------------------------------
# The worker loop
# ----------------------------------------------------------------------

def _rebind(sim: Simulator, node: NodeId, process: Any) -> None:
    """Point the simulator's dispatch tables at a migrated-in process."""
    from .node import Process
    sim._nodes[node].process = process
    sim._send_fns[node] = process.send
    sim._deliver_fns[node] = process.deliver
    sim._contend_fns[node] = process.contend
    batch_impl = getattr(type(process), "deliver_batch", None)
    if ((batch_impl is not None and batch_impl is not Process.deliver_batch)
            or "deliver_batch" in getattr(process, "__dict__", {})):
        sim._deliver_batch_fns[node] = process.deliver_batch
    else:
        sim._deliver_batch_fns[node] = None


def _export_state(process: Any) -> tuple:
    """A node's shippable protocol state (migration and finish both use
    this).  Core-bearing processes ship the core's snapshot — the whole
    process object is *not* picklable once the incremental history fold
    has grown chain links — and the receiving side restores into its own
    forked copy of the process; everything else ships wholesale."""
    core = getattr(process, "core", None)
    if (core is not None and hasattr(core, "snapshot")
            and hasattr(core, "restore")):
        return ("core", core.snapshot(), list(core.outputs),
                dict(core.proposals_made))
    if _picklable(process):
        return ("proc", process)
    return ("opaque",)


def _apply_state(sim: Simulator, node: NodeId, payload: tuple) -> None:
    """Adopt a shipped node state (the receiving half of migration)."""
    if payload[0] == "core":
        core = sim._nodes[node].process.core
        core.restore(payload[1])
        core.outputs = payload[2]
        core.proposals_made = payload[3]
    elif payload[0] == "proc":
        _rebind(sim, node, payload[1])
    else:
        raise SimulationError(
            f"node {node} cannot cross a shard border: its process is "
            f"neither snapshot-capable nor picklable")


def _worker_main(shard: "ShardedSimulator", strip: int, conn) -> None:
    """One strip's process: the batched hot loop over resident nodes."""
    try:
        _worker_loop(shard, strip, conn)
    except BaseException as exc:  # ship the failure home, then die
        import traceback
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}\n"
                              f"{traceback.format_exc()}"))
        except Exception:
            pass
    finally:
        conn.close()


def _worker_loop(shard: "ShardedSimulator", strip: int, conn) -> None:
    sim = shard.sim
    plan = shard._plan
    owner: dict[NodeId, int] = dict(shard._owner)
    possible = set(sim._contenders_possible)
    detector = sim.detector
    lo_col, hi_col = plan.edge_cols(strip)
    # Foreign columns whose senders can reach a resident (ghost sources).
    left_ghost_col = None if lo_col is None else lo_col - 1
    right_ghost_col = None if hi_col is None else hi_col + 1
    # The channel slice (residents plus the adjacent foreign ghost
    # columns) is a pure function of (positions, ownership), so steady
    # rounds reuse it verbatim and let the channel keep its index.
    residents: list[NodeId] = []
    slice_positions: dict[NodeId, Point] = {}
    slice_valid = False
    while True:
        msg = conn.recv()
        if msg[0] == "finish":
            mine = sorted(n for n, s in owner.items() if s == strip)
            conn.send(("state", {
                node: _export_state(sim._nodes[node].process)
                for node in mine
            }))
            return
        _, r, regs = msg
        for process, mobility, start_round in regs:
            sim.add_node(process, mobility, start_round=start_round)
            possible = set(sim._contenders_possible)

        # -- mobility & ownership (computed, not communicated) ----------
        present, positions, unchanged = sim._positions_batched(r)
        sim._last_present = present
        sim._batch_prev = (r, present, positions)
        sim._positions_observed = True
        if unchanged and slice_valid:
            # ``unchanged`` is only ever True when (present, positions)
            # are value-identical to last round's, so nobody changed
            # cells: ownership, residency and the channel slice all
            # stand, and no migration exchange can be pending (the
            # coordinator skips its _update_owners on the same signal).
            slice_unchanged = True
        else:
            slice_unchanged = False
            migrations = _update_owners(owner, plan, present, positions)
            if migrations:
                exports = [(node, _export_state(sim._nodes[node].process))
                           for node, old, new in migrations if old == strip]
                imports = sum(1 for node, old, new in migrations
                              if new == strip)
                if exports:
                    conn.send(("mig", exports))
                if imports:
                    mig = conn.recv()
                    if mig[0] != "mig":  # pragma: no cover - protocol bug
                        raise SimulationError(
                            f"expected migration, got {mig[0]!r}")
                    for node, payload in mig[1]:
                        _apply_state(sim, node, payload)
            # Rebuild the channel slice: residents plus every present
            # foreign node in the two adjacent ghost columns — exactly
            # the set a neighbour's boundary export can name, so ghost
            # senders always resolve, and independent of *who* sends, so
            # steady rounds reuse it with positions_unchanged=True.
            col_of = plan.col_of
            residents = []
            slice_positions = {}
            for node in present:
                position = positions[node]
                if owner[node] == strip:
                    residents.append(node)
                    slice_positions[node] = position
                else:
                    col = col_of(position.x)
                    if col == left_ghost_col or col == right_ghost_col:
                        slice_positions[node] = position
            slice_valid = True

        # -- contention (residents only; advice is global) --------------
        crashes = sim.crashes
        no_crashes = sim.fast_path and not len(crashes)
        contend_fns = sim._contend_fns
        contenders: dict[str, list[NodeId]] = {}
        for node in residents:
            if node not in possible:
                continue
            if not no_crashes and not crashes.sends_in(node, r):
                continue
            cm_name = contend_fns[node](r)
            if cm_name is None:
                continue
            if cm_name not in sim.cms:
                raise SimulationError(
                    f"node {node} contended for unknown manager {cm_name!r}"
                )
            contenders.setdefault(cm_name, []).append(node)
        conn.send(("cont", contenders))
        adv = conn.recv()
        advised = adv[1]

        # -- send (residents), boundary export --------------------------
        broadcasts: dict[NodeId, Message] = {}
        senders: list[NodeId] = []
        send_fns = sim._send_fns
        for node in residents:
            if not no_crashes and not crashes.sends_in(node, r):
                continue
            payload = send_fns[node](r, node in advised)
            if payload is not None:
                broadcasts[node] = Message(node, payload)
                senders.append(node)
        left_out: list[tuple[NodeId, Message]] = []
        right_out: list[tuple[NodeId, Message]] = []
        if senders and (lo_col is not None or hi_col is not None):
            col_of = plan.col_of
            for node in senders:
                col = col_of(positions[node].x)
                if lo_col is not None and col == lo_col:
                    left_out.append((node, broadcasts[node]))
                elif hi_col is not None and col == hi_col:
                    right_out.append((node, broadcasts[node]))
        conn.send(("bsend", left_out, right_out))
        ghosts = conn.recv()[1]

        # -- channel over the strip slice (residents + ghosts) ----------
        if ghosts:
            merged = dict(broadcasts)
            for node, message in ghosts:
                merged[node] = message
            all_senders = sorted(merged)
            # Ascending sender order fixes the reception tuple order the
            # serial engine produces from its globally-sorted sweep.
            all_broadcasts = {node: merged[node] for node in all_senders}
        else:
            all_senders = senders
            all_broadcasts = broadcasts
        receptions = sim.channel.deliver_batch(
            r, slice_positions, all_broadcasts, all_senders,
            positions_unchanged=slice_unchanged)

        # -- detect & deliver (residents) --------------------------------
        flags: dict[NodeId, bool] = {}
        fast_detect = (sim.fast_path
                       and type(detector) is EventuallyAccurateDetector
                       and r >= detector.racc)
        indicate = detector.indicate
        batch = RoundBatch(all_broadcasts)
        deliver_fns = sim._deliver_fns
        batch_fns = sim._deliver_batch_fns
        for node in residents:
            if not no_crashes and not crashes.receives_in(node, r):
                continue
            reception = receptions[node]
            flag = (reception.lost_within_r2 if fast_detect
                    else indicate(r, node, reception, False))
            flags[node] = flag
            bfn = batch_fns[node]
            if bfn is not None:
                bfn(r, reception.messages, flag, batch)
            else:
                deliver_fns[node](r, reception.messages, flag)

        # -- feedback partials + wire summary ----------------------------
        partials = {cm_name: any(flags.get(node, False) for node in nodes)
                    for cm_name, nodes in contenders.items()}
        flagged = [node for node in residents if flags.get(node, False)]
        size_sum = 0
        size_max = 0
        for node in senders:
            size = broadcasts[node].size
            size_sum += size
            if size > size_max:
                size_max = size
        conn.send(("fb", partials, flagged, size_sum, size_max, senders))
        sim._round += 1


# ----------------------------------------------------------------------
# The coordinator facade
# ----------------------------------------------------------------------

class ShardedSimulator:
    """Drives a :class:`Simulator` across forked strip workers.

    Wraps an already-configured simulator; undeclared attributes
    (``current_round``, ``alive``, ``trace``, ...) pass through, so the
    facade is a drop-in for the serial engine wherever the experiment
    runner steps one.  Workers fork lazily on the first :meth:`step`, so
    instrumentation applied after construction is inherited.
    """

    def __init__(self, sim: Simulator, shards: int, *,
                 plan_positions: Sequence[Point] | None = None) -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        self.sim = sim
        self.shards = shards
        self._plan_positions = plan_positions
        self._plan: ShardPlan | None = None
        self._workers: list[Any] | None = None
        self._conns: list[Any] = []
        self._owner: dict[NodeId, int] = {}
        self._pending_reg: list[tuple] = []
        self._started = False
        self._finished = False
        self.mirror: bool | None = None

    def __getattr__(self, name: str) -> Any:
        if name == "sim":  # guard: never recurse before __init__ binds it
            raise AttributeError(name)
        return getattr(self.sim, name)

    @property
    def serial_fallback(self) -> bool:
        """Whether this facade ended up running the plain serial engine
        (``shards <= 1`` or a world too narrow to split)."""
        return self._started and self._plan is None

    # -- configuration ---------------------------------------------------

    def add_node(self, process: Any, mobility: MobilityModel | Point,
                 *, start_round: Round = 0) -> NodeId:
        node = self.sim.add_node(process, mobility, start_round=start_round)
        if self._workers is not None:
            if not _picklable(process) or not _picklable(mobility):
                raise ConfigurationError(
                    "mid-run add_node on a sharded simulator requires a "
                    "picklable process and mobility model (they are "
                    "registered on every worker)"
                )
            self._pending_reg.append((process, mobility, start_round))
        return node

    # -- execution -------------------------------------------------------

    def step(self) -> RoundRecord | None:
        """One sharded round.  Returns the round record in mirror mode
        (and under serial fallback); fast mode builds no records and
        returns ``None``."""
        if self._finished:
            raise SimulationError("sharded simulator already finished")
        if not self._started:
            self._setup()
        if self._plan is None:
            return self.sim.step()
        return self._step_sharded()

    def run(self, rounds: int) -> Any:
        if rounds < 0:
            raise ConfigurationError("rounds must be non-negative")
        for _ in range(rounds):
            self.step()
        return self.sim.trace

    def _setup(self) -> None:
        self._started = True
        sim = self.sim
        if self.shards < 2:
            return  # serial fallback
        if type(sim.adversary) is not NoAdversary:
            raise ConfigurationError(
                "sharded execution requires the benign NoAdversary: "
                "adversary RNG streams are global per-round state"
            )
        if type(sim.detector) is not EventuallyAccurateDetector:
            raise ConfigurationError(
                "sharded execution requires the stateless "
                "EventuallyAccurateDetector"
            )
        import multiprocessing
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                "sharded execution requires the fork start method"
            )
        plan = plan_shards(self._planning_positions(), sim.spec.r2,
                           self.shards)
        if plan is None:
            return  # too narrow to split: serial fallback
        self._plan = plan
        # Mirror unless every consumer supports the summary protocol and
        # every process can ship its state home through a core.
        self.mirror = (sim.record_trace
                       or any(not hasattr(obs, "observe_summary")
                              for obs in sim._observers)
                       or any(not hasattr(getattr(e.process, "core", None),
                                          "restore")
                              for e in sim._nodes.values()))
        ctx = multiprocessing.get_context("fork")
        self._workers = []
        for strip in range(plan.shards):
            parent, child = ctx.Pipe()
            worker = ctx.Process(target=_worker_main,
                                 args=(self, strip, child), daemon=True)
            worker.start()
            child.close()
            self._workers.append(worker)
            self._conns.append(parent)

    def _planning_positions(self) -> list[Point]:
        if self._plan_positions is not None:
            return list(self._plan_positions)
        sim = self.sim
        r = sim._round
        out = []
        for node in sim._node_list:
            entry = sim._nodes[node]
            if entry.static_position is not None:
                out.append(entry.static_position)
            else:
                # position_at is memoised/pure on every model, so an
                # early planning query cannot perturb the engine's later
                # per-round reads.
                out.append(entry.mobility.position_at(
                    max(r, entry.start_round)))
        return out

    def _recv(self, strip: int) -> tuple:
        try:
            msg = self._conns[strip].recv()
        except EOFError:
            raise SimulationError(
                f"shard worker {strip} died mid-round"
            ) from None
        if msg[0] == "err":
            raise SimulationError(f"shard worker {strip} failed:\n{msg[1]}")
        return msg

    def _step_sharded(self) -> RoundRecord | None:
        sim = self.sim
        r = sim._round
        regs = self._pending_reg
        self._pending_reg = []
        header = ("round", r, regs)
        for conn in self._conns:
            conn.send(header)

        record: RoundRecord | None = None
        if self.mirror:
            # The authoritative universe: a full serial round on the
            # coordinator's own objects, run *before* any position query.
            # Calling _positions_batched here first would warm the
            # steady-position cache and swallow the unchanged=False signal
            # the serial step needs right after add_node — the channel
            # index would then never ingest the new node.  The record
            # already carries the full position map, so mirror mode reads
            # ownership from it instead.
            record = sim.step()
            positions = record.positions
            present = list(positions)
            unchanged = False
        else:
            # The coordinator derives the same positions every worker
            # does (this is the engine's single per-round call, exactly
            # as in the serial step).
            present, positions, unchanged = sim._positions_batched(r)
        if unchanged:
            # Value-identical (present, positions): nobody changed cells,
            # ownership stands, and the workers skip their own
            # _update_owners on the same signal — so no migration
            # exchange can be pending.
            migrations = []
        else:
            migrations = _update_owners(self._owner, self._plan, present,
                                        positions)
        if migrations:
            exporters = sorted({old for _, old, _ in migrations})
            inbound: dict[int, list] = {}
            for strip in exporters:
                msg = self._recv(strip)
                if msg[0] != "mig":  # pragma: no cover - protocol bug
                    raise SimulationError(
                        f"expected migration from worker {strip}, "
                        f"got {msg[0]!r}")
                for node, payload in msg[1]:
                    inbound.setdefault(self._owner[node], []).append(
                        (node, payload))
            for strip, items in sorted(inbound.items()):
                self._conns[strip].send(("mig", items))

        # -- merge contenders (ascending node id = serial sweep order) --
        shards = self._plan.shards
        contenders: dict[str, list[NodeId]] = {}
        strip_contenders: list[set[NodeId]] = []
        for strip in range(shards):
            local: set[NodeId] = set()
            for cm_name, nodes in self._recv(strip)[1].items():
                contenders.setdefault(cm_name, []).extend(nodes)
                local.update(nodes)
            strip_contenders.append(local)
        for nodes in contenders.values():
            nodes.sort()

        if self.mirror:
            # Workers only get cross-checked against the record above.
            advised = frozenset(record.advised_active)
            advice: dict[str, frozenset[NodeId]] | None = None
        else:
            # The serial engine's bookkeeping for the position block.
            if (sim.fast_path and unchanged
                    and sim.locations.staleness_bound == 0):
                pass  # see Simulator._step_batched
            else:
                sim.locations.observe(r, positions)
                sim._positions_observed = True
            sim._last_present = present
            sim._batch_prev = (r, present, positions)
            advice = {}
            advised_set: set[NodeId] = set()
            if contenders:
                for cm_name, cnodes in sorted(contenders.items()):
                    granted = sim.cms[cm_name].advise(
                        r, cnodes).intersection(cnodes)
                    advice[cm_name] = granted
                    advised_set.update(granted)
            advised = frozenset(advised_set)
        # Advice is global, but a worker only ever asks "is this resident
        # advised?" and advised ⊆ its contenders' union — so each strip
        # gets just the slice of advice its own contenders can match.
        for strip, conn in enumerate(self._conns):
            conn.send(("adv", advised.intersection(strip_contenders[strip])))

        # -- boundary exchange ------------------------------------------
        exports = [self._recv(strip) for strip in range(shards)]
        for strip in range(shards):
            ghosts: list[tuple[NodeId, Message]] = []
            if strip > 0:
                ghosts.extend(exports[strip - 1][2])  # left neighbour's right
            if strip + 1 < shards:
                ghosts.extend(exports[strip + 1][1])  # right neighbour's left
            self._conns[strip].send(("ghost", ghosts))

        # -- feedback & summaries ---------------------------------------
        results = [self._recv(strip) for strip in range(shards)]
        if self.mirror:
            self._cross_check(r, record, contenders, results)
            return record
        if contenders:
            for cm_name, cnodes in sorted(contenders.items()):
                collided = any(res[1].get(cm_name, False) for res in results)
                sim.cms[cm_name].feedback(
                    r, active=advice[cm_name], collided=collided)
        flagged: list[NodeId] = sorted(
            node for res in results for node in res[2])
        n_broadcasts = sum(len(res[5]) for res in results)
        size_sum = sum(res[3] for res in results)
        size_max = max(res[4] for res in results)
        for observer in sim._observers:
            observer.observe_summary(
                r, n_broadcasts=n_broadcasts, size_sum=size_sum,
                size_max=size_max, flagged=flagged)
        sim._round += 1
        return None

    def _cross_check(self, r: Round, record: RoundRecord,
                     contenders: dict[str, list[NodeId]],
                     results: list[tuple]) -> None:
        """Mirror mode: the workers must agree with the serial round."""
        worker_senders = sorted(
            node for res in results for node in res[5])
        serial_senders = sorted(record.broadcasts)
        if worker_senders != serial_senders:
            raise SimulationError(
                f"shard cross-check failed at round {r}: sender sets "
                f"differ (workers {worker_senders} != serial "
                f"{serial_senders})")
        worker_flagged = sorted(
            node for res in results for node in res[2])
        serial_flagged = sorted(
            node for node, flag in record.collisions.items() if flag)
        if worker_flagged != serial_flagged:
            raise SimulationError(
                f"shard cross-check failed at round {r}: collision flags "
                f"differ (workers {worker_flagged} != serial "
                f"{serial_flagged})")
        collisions = record.collisions
        for cm_name, cnodes in sorted(contenders.items()):
            workers = any(res[1].get(cm_name, False) for res in results)
            serial = any(collisions.get(node, False) for node in cnodes)
            if workers != serial:
                raise SimulationError(
                    f"shard cross-check failed at round {r}: feedback for "
                    f"manager {cm_name!r} differs")

    # -- teardown --------------------------------------------------------

    def finish(self) -> None:
        """Collect worker state: restore it (fast mode) or byte-check it
        against the coordinator's own (mirror mode), then reap workers.

        Idempotent; must be called before reading protocol outcomes off
        a fast-mode run.
        """
        if self._finished:
            return
        self._finished = True
        if self._workers is None:
            return
        for conn in self._conns:
            conn.send(("finish",))
        states: dict[NodeId, tuple] = {}
        for strip in range(len(self._conns)):
            msg = self._recv(strip)
            states.update(msg[1])
        try:
            if self.mirror:
                self._check_final(states)
            else:
                self._restore_final(states)
        finally:
            for conn in self._conns:
                conn.close()
            for worker in self._workers:
                worker.join(timeout=10)
                if worker.is_alive():  # pragma: no cover - hung worker
                    worker.terminate()

    def _check_final(self, states: dict[NodeId, tuple]) -> None:
        sim = self.sim
        for node in sorted(states):
            payload = states[node]
            process = sim._nodes[node].process
            if payload[0] == "core":
                core = process.core
                mine = (core.snapshot(), list(core.outputs),
                        dict(core.proposals_made))
                if payload[1:] != mine:
                    raise SimulationError(
                        f"shard cross-check failed: node {node} final "
                        f"state diverges from the serial engine")
            elif payload[0] == "proc":
                if payload[1].__dict__ != process.__dict__:
                    raise SimulationError(
                        f"shard cross-check failed: node {node} final "
                        f"process state diverges from the serial engine")
            # "opaque": unshippable custom process; nothing to compare.

    def _restore_final(self, states: dict[NodeId, tuple]) -> None:
        sim = self.sim
        canon = _Canonicalizer()
        for node in sorted(states):
            payload = states[node]
            if payload[0] == "core":
                core = sim._nodes[node].process.core
                core.restore(canon.walk(payload[1]))
                core.outputs = canon.walk(payload[2])
                core.proposals_made = canon.walk(payload[3])
            elif payload[0] == "proc":
                _rebind(sim, node, payload[1])
            else:
                raise SimulationError(
                    f"node {node}'s process cannot ship its state home "
                    f"(not picklable, no snapshot/restore core)")

    def close(self) -> None:
        """Abandon the run without collecting state (error paths)."""
        if self._workers is None or self._finished:
            self._finished = True
            return
        self._finished = True
        for conn in self._conns:
            try:
                conn.close()
            except Exception:  # pragma: no cover - already broken pipe
                pass
        for worker in self._workers:
            worker.terminate()
            worker.join(timeout=5)
