"""Radio-network substrate: the slotted collision-prone channel model."""

from .adversary import (
    Adversary,
    ComposedAdversary,
    NoAdversary,
    NoiseBurstAdversary,
    PartitionAdversary,
    RandomLossAdversary,
    ScriptedAdversary,
    TargetedDropAdversary,
    WindowAdversary,
)
from .channel import (
    Channel,
    RadioSpec,
    Reception,
    REFERENCE_CHANNEL_ENV,
    reference_channel_forced,
)
from .index import SpatialGridIndex
from .location import LocationService
from .messages import MIXED_TAGS, Message, RoundBatch, wire_size
from .mobility import (
    LinearMobility,
    MobilityModel,
    OrbitMobility,
    RandomWaypointMobility,
    StaticMobility,
    WaypointMobility,
)
from .node import Crash, CrashPoint, CrashSchedule, Process
from .simulator import (
    REFERENCE_ENGINE_ENV,
    RoundObserver,
    Simulator,
    reference_engine_forced,
)
from .trace import RoundRecord, Trace, canonical_dump

__all__ = [
    "Adversary",
    "Channel",
    "ComposedAdversary",
    "Crash",
    "CrashPoint",
    "CrashSchedule",
    "LinearMobility",
    "LocationService",
    "MIXED_TAGS",
    "Message",
    "MobilityModel",
    "NoAdversary",
    "NoiseBurstAdversary",
    "OrbitMobility",
    "PartitionAdversary",
    "Process",
    "RadioSpec",
    "REFERENCE_CHANNEL_ENV",
    "REFERENCE_ENGINE_ENV",
    "RandomLossAdversary",
    "RandomWaypointMobility",
    "Reception",
    "RoundBatch",
    "RoundObserver",
    "RoundRecord",
    "ScriptedAdversary",
    "Simulator",
    "SpatialGridIndex",
    "reference_channel_forced",
    "reference_engine_forced",
    "StaticMobility",
    "TargetedDropAdversary",
    "Trace",
    "WaypointMobility",
    "WindowAdversary",
    "canonical_dump",
    "wire_size",
]
