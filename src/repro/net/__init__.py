"""Radio-network substrate: the slotted collision-prone channel model."""

from .adversary import (
    Adversary,
    ComposedAdversary,
    NoAdversary,
    NoiseBurstAdversary,
    PartitionAdversary,
    RandomLossAdversary,
    ScriptedAdversary,
    TargetedDropAdversary,
    WindowAdversary,
)
from .channel import Channel, RadioSpec, Reception
from .location import LocationService
from .messages import Message, wire_size
from .mobility import (
    LinearMobility,
    MobilityModel,
    OrbitMobility,
    RandomWaypointMobility,
    StaticMobility,
    WaypointMobility,
)
from .node import Crash, CrashPoint, CrashSchedule, Process
from .simulator import RoundObserver, Simulator
from .trace import RoundRecord, Trace

__all__ = [
    "Adversary",
    "Channel",
    "ComposedAdversary",
    "Crash",
    "CrashPoint",
    "CrashSchedule",
    "LinearMobility",
    "LocationService",
    "Message",
    "MobilityModel",
    "NoAdversary",
    "NoiseBurstAdversary",
    "OrbitMobility",
    "PartitionAdversary",
    "Process",
    "RadioSpec",
    "RandomLossAdversary",
    "RandomWaypointMobility",
    "Reception",
    "RoundObserver",
    "RoundRecord",
    "ScriptedAdversary",
    "Simulator",
    "StaticMobility",
    "TargetedDropAdversary",
    "Trace",
    "WaypointMobility",
    "WindowAdversary",
    "wire_size",
]
