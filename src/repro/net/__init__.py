"""Radio-network substrate: the slotted collision-prone channel model."""

from .adversary import (
    Adversary,
    ComposedAdversary,
    NoAdversary,
    NoiseBurstAdversary,
    PartitionAdversary,
    RandomLossAdversary,
    ScriptedAdversary,
    TargetedDropAdversary,
    WindowAdversary,
)
from .channel import (
    Channel,
    RadioSpec,
    Reception,
    REFERENCE_CHANNEL_ENV,
    reference_channel_forced,
)
from .index import SpatialGridIndex
from .location import LocationService
from .messages import Message, wire_size
from .mobility import (
    LinearMobility,
    MobilityModel,
    OrbitMobility,
    RandomWaypointMobility,
    StaticMobility,
    WaypointMobility,
)
from .node import Crash, CrashPoint, CrashSchedule, Process
from .simulator import RoundObserver, Simulator
from .trace import RoundRecord, Trace, canonical_dump

__all__ = [
    "Adversary",
    "Channel",
    "ComposedAdversary",
    "Crash",
    "CrashPoint",
    "CrashSchedule",
    "LinearMobility",
    "LocationService",
    "Message",
    "MobilityModel",
    "NoAdversary",
    "NoiseBurstAdversary",
    "OrbitMobility",
    "PartitionAdversary",
    "Process",
    "RadioSpec",
    "REFERENCE_CHANNEL_ENV",
    "RandomLossAdversary",
    "RandomWaypointMobility",
    "Reception",
    "RoundObserver",
    "RoundRecord",
    "ScriptedAdversary",
    "Simulator",
    "SpatialGridIndex",
    "reference_channel_forced",
    "StaticMobility",
    "TargetedDropAdversary",
    "Trace",
    "WaypointMobility",
    "WindowAdversary",
    "canonical_dump",
    "wire_size",
]
