"""Idealised leader-election contention manager (Property 3, exactly).

Before its stabilisation round the manager can be configured to behave
badly — advising everyone, nobody, or a random subset — which is precisely
the freedom the paper grants real back-off protocols during unstable
periods.  From ``stable_round`` onward it advises exactly one contender:
the least node id among contenders.  Because a crashed node stops
contending, advice automatically migrates to a surviving node, satisfying
Property 3(2).

The use of node ids here does not contradict the protocol's anonymity:
the contention manager is an *environment service* (the paper treats it
as an abstraction realised by, e.g., randomised back-off) and ids are
merely how this oracle realisation breaks symmetry.
"""

from __future__ import annotations

import random
from typing import Literal, Sequence

from ..errors import ConfigurationError
from ..types import NodeId, Round
from .base import ContentionManager

ChaosMode = Literal["all", "none", "random"]


class LeaderElectionCM(ContentionManager):
    """Oracle leader election with configurable pre-stability chaos."""

    def __init__(self, *, stable_round: Round = 0, chaos: ChaosMode = "all",
                 seed: int = 0) -> None:
        if stable_round < 0:
            raise ConfigurationError("stable_round must be non-negative")
        if chaos not in ("all", "none", "random"):
            raise ConfigurationError(f"unknown chaos mode {chaos!r}")
        self.stable_round = stable_round
        self.chaos = chaos
        self._rng = random.Random(seed)

    def advise(self, r: Round, contenders: Sequence[NodeId]) -> frozenset[NodeId]:
        if not contenders:
            return frozenset()
        if r >= self.stable_round:
            return frozenset({min(contenders)})
        if self.chaos == "all":
            return frozenset(contenders)
        if self.chaos == "none":
            return frozenset()
        return frozenset(
            node for node in contenders if self._rng.random() < 0.5
        )


class FixedLeaderCM(ContentionManager):
    """Always advises a designated node (when it contends).

    Useful in unit tests that need complete control of who broadcasts.
    """

    def __init__(self, leader: NodeId) -> None:
        self.leader = leader

    def advise(self, r: Round, contenders: Sequence[NodeId]) -> frozenset[NodeId]:
        if self.leader in contenders:
            return frozenset({self.leader})
        return frozenset()


class ScriptedCM(ContentionManager):
    """Advice read from an explicit per-round script.

    ``script`` maps round -> iterable of node ids to advise; missing
    rounds advise nobody.  The simulator still intersects with actual
    contenders (Property 3(3)).
    """

    def __init__(self, script: dict[Round, Sequence[NodeId]]) -> None:
        self._script = {r: frozenset(nodes) for r, nodes in script.items()}

    def advise(self, r: Round, contenders: Sequence[NodeId]) -> frozenset[NodeId]:
        return self._script.get(r, frozenset()) & frozenset(contenders)
