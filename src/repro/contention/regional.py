"""The regional contention manager of Section 4.2.

Each virtual node ``v`` at location ``ℓ`` owns a regional manager that
reduces contention among nodes *near* ``ℓ`` and elects "temporary"
leaders: contenders expected to remain within the emulation region
(``R1/4`` of ``ℓ``) for at least ``tenure`` rounds — the paper asks for
``2(s+10)`` rounds, long enough to carry a whole virtual round.

This realisation consults the location service for contender positions
and prefers, among in-region contenders, the one closest to ``ℓ`` (a node
near the centre stays inside longest under the ``vmax`` bound).  A sitting
leader is retained while it remains in-region and contending, giving the
stability the emulation's progress argument needs; on loss of the leader
a new one is elected immediately.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..errors import ConfigurationError
from ..geometry import Point
from ..types import NodeId, Round
from .base import ContentionManager


class RegionalCM(ContentionManager):
    """Location-aware leader election for one virtual-node region."""

    def __init__(self, *, location: Point, region_radius: float,
                 locate: Callable[[NodeId], Point],
                 tenure: int = 0,
                 stable_round: Round = 0) -> None:
        if region_radius <= 0:
            raise ConfigurationError("region_radius must be positive")
        if tenure < 0:
            raise ConfigurationError("tenure must be non-negative")
        self.location = location
        self.region_radius = region_radius
        self._locate = locate
        self.tenure = tenure
        self.stable_round = stable_round
        self._leader: NodeId | None = None
        self._leader_set: frozenset[NodeId] = frozenset()
        self._elected_at: Round = -1

    def _in_region(self, node: NodeId) -> bool:
        try:
            where = self._locate(node)
        except KeyError:
            return False
        return self.location.within(where, self.region_radius)

    def advise(self, r: Round, contenders: Sequence[NodeId]) -> frozenset[NodeId]:
        # Steady-state short circuit: a sitting leader that is still
        # contending and still in-region is retained regardless of the
        # other contenders, so their region checks can be skipped — the
        # answer (and every state transition) is identical to the full
        # scan below.
        leader = self._leader
        if leader is not None and r >= self.stable_round \
                and leader in contenders and self._in_region(leader):
            return self._leader_set
        eligible = [node for node in sorted(contenders) if self._in_region(node)]
        if not eligible:
            self._leader = None
            return frozenset()
        if r < self.stable_round:
            # Pre-stability chaos: everyone eligible is let through,
            # modelling an unconverged back-off protocol.
            return frozenset(eligible)
        if self._leader in eligible:
            return self._leader_set
        # Elect the contender nearest the virtual-node location; ties break
        # by node id for determinism.
        self._leader = min(
            eligible,
            key=lambda node: (self._locate(node).distance_to(self.location), node),
        )
        self._elected_at = r
        self._leader_set = frozenset({self._leader})
        return self._leader_set

    @property
    def leader(self) -> NodeId | None:
        return self._leader

    def leader_age(self, r: Round) -> int:
        """Rounds the sitting leader has held office at round ``r``."""
        if self._leader is None:
            return 0
        return max(0, r - self._elected_at)
