"""Contention-manager interface (Property 3 and Section 4.2).

The paper deliberately decouples contention management from agreement:
the contention manager designates contenders as *active* (may broadcast)
or *passive*, and need only guarantee — eventually — that exactly one
correct contender is active in every round (leader election, Property 3).

The simulator drives contention managers in two steps per round: it first
collects, from every alive process, the name of the manager it contends
for (``Process.contend``), then asks each named manager for its advice.
After channel resolution it feeds back whether the round's broadcasts
collided, which realistic back-off managers use to adapt.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from ..types import NodeId, Round


class ContentionManager(ABC):
    """Advises contenders whether to broadcast."""

    @abstractmethod
    def advise(self, r: Round, contenders: Sequence[NodeId]) -> frozenset[NodeId]:
        """The subset of ``contenders`` advised to be active in round ``r``.

        Property 3(3) — advice only goes to contenders — is enforced by
        the simulator, which intersects the result with ``contenders``;
        implementations should nevertheless respect it.
        """

    def feedback(self, r: Round, *, active: frozenset[NodeId],
                 collided: bool) -> None:
        """Post-round feedback: who was active and whether contention arose.

        Default is to ignore feedback (oracle managers are stateless in
        this respect); back-off managers override.
        """
