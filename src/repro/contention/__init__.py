"""Contention managers (Property 3, Section 4.2)."""

from .backoff import ExponentialBackoffCM
from .base import ContentionManager
from .leader import FixedLeaderCM, LeaderElectionCM, ScriptedCM
from .regional import RegionalCM

__all__ = [
    "ContentionManager",
    "ExponentialBackoffCM",
    "FixedLeaderCM",
    "LeaderElectionCM",
    "RegionalCM",
    "ScriptedCM",
]
