"""A realistic randomised exponential back-off contention manager.

The paper: "In practice, contention managers are typically implemented
using randomized back-off protocols ... we believe even a simple
exponential back-off scheme to be sufficient."  This implementation
realises that scheme with channel feedback:

* every contender holds a back-off window ``w`` (initially 1) and is
  advised active with probability ``1/w``;
* when a round in which several advisees broadcast collides, every
  advisee doubles its window (up to ``max_window``);
* when exactly one advisee broadcasts uncontested, it *captures* the
  channel: its window pins to 1, and every other contender's window is
  raised to ``max_window`` — modelling carrier-sense deference to an
  established leader;
* a capture lapses if the captured node stops contending (it crashed or
  left), after which competition resumes.

The guarantees are probabilistic — Property 3 holds with probability
approaching 1 — which is exactly the gap between the oracle manager used
in proofs and deployable back-off; experiment A3/E6 quantifies it.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..errors import ConfigurationError
from ..types import NodeId, Round
from .base import ContentionManager


class ExponentialBackoffCM(ContentionManager):
    """Seeded randomised exponential back-off with channel capture."""

    def __init__(self, *, seed: int = 0, max_window: int = 1 << 16) -> None:
        if max_window < 2:
            raise ConfigurationError("max_window must be at least 2")
        self._rng = random.Random(seed)
        self._max_window = max_window
        self._window: dict[NodeId, int] = {}
        self._captured_by: NodeId | None = None
        self._last_advice: frozenset[NodeId] = frozenset()

    def advise(self, r: Round, contenders: Sequence[NodeId]) -> frozenset[NodeId]:
        contenders = sorted(contenders)
        if self._captured_by is not None and self._captured_by not in contenders:
            # Leader left: reopen competition from scratch, otherwise the
            # survivors sit at max_window and re-election takes forever.
            self._captured_by = None
            for node in contenders:
                self._window[node] = 1
        if self._captured_by is not None:
            advice = frozenset({self._captured_by})
        else:
            advice = frozenset(
                node for node in contenders
                if self._rng.random() < 1.0 / self._window.setdefault(node, 1)
            )
        self._last_advice = advice
        return advice

    def feedback(self, r: Round, *, active: frozenset[NodeId],
                 collided: bool) -> None:
        if len(active) == 1 and not collided:
            winner = next(iter(active))
            self._captured_by = winner
            self._window[winner] = 1
            for node in self._window:
                if node != winner:
                    self._window[node] = self._max_window
        elif len(active) > 1 or collided:
            self._captured_by = None
            for node in active:
                self._window[node] = min(
                    self._window.get(node, 1) * 2, self._max_window
                )

    @property
    def captured_by(self) -> NodeId | None:
        """The current channel owner, if the manager has converged."""
        return self._captured_by
