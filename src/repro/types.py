"""Common type aliases and constants shared across the reproduction.

The paper (Chockler, Gilbert, Lynch, PODC 2008) works in a slotted,
synchronous radio model.  Rounds, instances and virtual rounds are all
non-negative integers.  Proposal values live in a totally-ordered domain
``V``; we realise ``V`` as arbitrary hashable, orderable Python values
(strings and tuples of strings/ints in practice), with ``None`` reserved
to play the role of the paper's bottom symbol (written ``BOTTOM`` below).
"""

from __future__ import annotations

import enum
from typing import Hashable, TypeAlias

#: A communication round index (a slot of the synchronous channel).
Round: TypeAlias = int

#: A CHA agreement-instance index.  Instances are numbered from 1 in the
#: paper; instance 0 is a sentinel meaning "before the first instance".
Instance: TypeAlias = int

#: A virtual-round index of the emulated infrastructure.
VirtualRound: TypeAlias = int

#: A node identifier.  The *protocols* never rely on identifiers (the paper
#: stresses that participants need not have unique ids); simulators use ids
#: purely for bookkeeping, tracing and assertions.
NodeId: TypeAlias = int

#: A proposal value in the totally-ordered domain ``V``.
Value: TypeAlias = Hashable

#: Sentinel for the paper's bottom symbol.  We deliberately use ``None`` so
#: that "no value" round-trips naturally through Python containers.
BOTTOM = None


class Sentinel:
    """A unique marker whose identity survives pickling.

    Bare ``object()`` sentinels break every ``is`` check the moment they
    cross a process boundary: each unpickle manufactures a fresh object,
    so state shipped between the sharded engine's workers (or through any
    other serialisation) stops matching its module's singleton.  A
    ``Sentinel`` instead pickles as a reference to the module-level name
    it is bound to, so every process resolves it back to the same object.
    """

    __slots__ = ("_module", "_name")

    def __init__(self, module: str, name: str) -> None:
        self._module = module
        self._name = name

    def __repr__(self) -> str:
        return f"<{self._name}>"

    def __reduce__(self) -> tuple:
        return (_resolve_sentinel, (self._module, self._name))


def _resolve_sentinel(module: str, name: str) -> Sentinel:
    import importlib

    return getattr(importlib.import_module(module), name)

#: The sentinel instance index used before any instance has completed.
NO_INSTANCE: Instance = 0


class Color(enum.IntEnum):
    """The CHAP status colours, ordered ``red < orange < yellow < green``.

    The colour a node assigns to an instance encodes its local knowledge of
    how widely the instance's ballot is known:

    * ``GREEN``  -- the node received a ballot and saw no veto or collision
      in either veto phase; it outputs a history for this instance.
    * ``YELLOW`` -- trouble appeared only in the veto-2 phase; the instance
      is still *good* (it advances ``prev_instance``) but the node outputs
      the bottom symbol.
    * ``ORANGE`` -- trouble appeared in the veto-1 phase; the instance is
      not good, output is bottom.
    * ``RED``    -- the ballot phase itself failed (no ballot received, or a
      collision was detected); output is bottom and the node may hold no
      ballot for the instance.

    ``IntEnum`` gives us the ``min``-based downgrade operations of Figure 1
    for free.
    """

    RED = 0
    ORANGE = 1
    YELLOW = 2
    GREEN = 3

    @property
    def is_good(self) -> bool:
        """A *good* instance advances the ``prev_instance`` pointer."""
        return self >= Color.YELLOW

    def shade_distance(self, other: "Color") -> int:
        """Number of shades separating two colours (Property 4 metric)."""
        return abs(int(self) - int(other))


#: Collision-notification symbol (the paper's ``±``).  Delivered by the
#: collision detector alongside (possibly zero) received messages.
COLLISION = "±"
