"""Geographic routing over a virtual-node overlay ([12, 16, 17, 40]).

Virtual nodes form a static overlay (they never move), which turns ad hoc
routing into routing on a fixed graph — the paper's motivating
observation.  This module builds mailbox virtual nodes wired with static
next-hop tables computed by shortest paths on the overlay graph, plus the
sender/receiver client programs.

Delivery semantics: a packet hops one virtual node per *scheduled emit*
along its path and is finally broadcast as ``("deliver", dest_vn, body)``
in the destination's region.  Hops ride the collision-prone virtual
channel — lost relays are lost packets, exactly like real radio.
"""

from __future__ import annotations

from typing import Any

import networkx as nx

from ..geometry import Point
from ..types import VirtualRound
from ..vi.client import ClientProgram
from ..vi.program import MailboxProgram, VirtualObservation
from ..vi.schedule import VNSite


class DeliveringMailboxProgram(MailboxProgram):
    """A mailbox that announces arrivals: inbox items are broadcast as
    ``("deliver", vn_id, body)`` (and then dropped), so receiver clients
    in the region can pick them up."""

    def emit(self, state, vr):
        if not self.is_my_slot(vr):
            return None
        inbox, outbox = state
        if inbox:
            _, body = inbox[0]
            return ("deliver", self.vn_id, body)
        return super().emit(state, vr)

    def step(self, state, vr, observation: VirtualObservation):
        inbox, outbox = state
        emitted = self.emit(state, vr)
        if emitted is not None and emitted[0] == "deliver":
            state = (inbox[1:], outbox)
        inbox, outbox = state
        if emitted is not None and emitted[0] == "relay":
            outbox = outbox[1:]

        def accept(dest, body):
            nonlocal inbox, outbox
            if dest == self.vn_id:
                inbox = inbox + ((dest, body),)
            elif dest in self.next_hop:
                outbox = outbox + ((dest, body),)

        for item in observation.messages:
            if item[0] == "cl":
                payload = item[1]
                if (isinstance(payload, tuple) and len(payload) == 4
                        and payload[0] == "send" and payload[1] == self.vn_id):
                    accept(payload[2], payload[3])
            elif item[0] == "vn":
                payload = item[2]
                if (isinstance(payload, tuple) and len(payload) == 4
                        and payload[0] == "relay" and payload[1] == self.vn_id):
                    accept(payload[2], payload[3])
        return (inbox, outbox)


def overlay_graph(sites: list[VNSite], *, virtual_range: float) -> nx.Graph:
    """The overlay: virtual nodes joined when within mutual virtual range."""
    g = nx.Graph()
    g.add_nodes_from(site.vn_id for site in sites)
    for i, a in enumerate(sites):
        for b in sites[i + 1:]:
            if a.location.within(b.location, virtual_range):
                g.add_edge(a.vn_id, b.vn_id)
    return g


def build_routing_programs(sites: list[VNSite], *, virtual_range: float = 0.5,
                           ) -> dict[int, DeliveringMailboxProgram]:
    """One mailbox program per site, with shortest-path next-hop tables."""
    g = overlay_graph(sites, virtual_range=virtual_range)
    programs = {}
    for site in sites:
        table: dict[int, int] = {}
        paths = nx.single_source_shortest_path(g, site.vn_id)
        for dest, path in paths.items():
            if dest != site.vn_id and len(path) >= 2:
                table[dest] = path[1]
        programs[site.vn_id] = DeliveringMailboxProgram(site.vn_id, table)
    return programs


class SenderClient(ClientProgram):
    """Deposits scripted packets at a named ingress virtual node:
    ``sends[vr] = (dest_vn, body)`` enter the overlay at ``ingress``."""

    def __init__(self, ingress: int,
                 sends: dict[VirtualRound, tuple[int, Any]]) -> None:
        self.ingress = ingress
        self.sends = dict(sends)

    def on_round(self, vr, observation):
        target = vr + 1
        if target in self.sends:
            dest, body = self.sends[target]
            return ("send", self.ingress, dest, body)
        return None


class ReceiverClient(ClientProgram):
    """Collects ``("deliver", vn, body)`` announcements it overhears."""

    def __init__(self) -> None:
        self.received: list[tuple[VirtualRound, int, Any]] = []

    def on_round(self, vr, observation):
        for item in observation.messages:
            if item[0] == "vn" and isinstance(item[2], tuple) \
                    and item[2][0] == "deliver":
                _, vn, body = item[2]
                self.received.append((vr, vn, body))
        return None
