"""Applications over virtual infrastructure (the paper's Section 1 list)."""

from .atomic_memory import ReaderClient, RegisterProgram, WriterClient
from .robots import (
    CoordinatorProgram,
    RobotClient,
    circle_formation,
    from_fixed,
    to_fixed,
)
from .routing import (
    DeliveringMailboxProgram,
    ReceiverClient,
    SenderClient,
    build_routing_programs,
    overlay_graph,
)
from .tracking import (
    TargetClient,
    TrackerProgram,
    estimate_position,
    last_seen_map,
)

__all__ = [
    "CoordinatorProgram",
    "DeliveringMailboxProgram",
    "ReaderClient",
    "ReceiverClient",
    "RegisterProgram",
    "RobotClient",
    "SenderClient",
    "TargetClient",
    "TrackerProgram",
    "WriterClient",
    "build_routing_programs",
    "circle_formation",
    "estimate_position",
    "from_fixed",
    "last_seen_map",
    "overlay_graph",
    "to_fixed",
]
