"""Atomic read/write memory on a virtual node (GeoQuorums-style, [13,14]).

The paper's headline application: because a virtual node is a reliable,
deterministic automaton at a fixed place, implementing an atomic register
becomes trivial — the focal virtual node *is* the register, serialising
every operation in virtual-round order.  (GeoQuorums generalises to
quorums of focal points for availability across regions; the consistency
argument per focal point is the one exercised here.)

Protocol:

* A writer sends ``("write", seq, value)``; the register adopts the pair
  with the largest ``(seq, value)`` it has seen (last-writer-wins with a
  deterministic tie-break).
* The register broadcasts ``("reg", seq, value)`` every virtual round.
* A reader treats the next ``("reg", ...)`` broadcast it hears as the
  read's return value.

Atomicity holds because all state transitions happen inside one virtual
node: the linearisation order is the virtual-round order, and the CHA
layer guarantees all replicas agree on it.
"""

from __future__ import annotations

from typing import Any

from ..types import VirtualRound
from ..vi.client import ClientProgram
from ..vi.program import VNProgram, VirtualObservation


class RegisterProgram(VNProgram):
    """The register automaton: state is ``(seq, value)``."""

    def init_state(self):
        return (0, None)

    def emit(self, state, vr):
        seq, value = state
        if value is None:
            return None
        return ("reg", seq, value)

    def step(self, state, vr, observation: VirtualObservation):
        from ..core.ballot import canonical_key

        def rank(pair):
            seq, value = pair
            return (seq, canonical_key(value) if value is not None else ())

        best = state
        for item in observation.messages:
            if item[0] != "cl":
                continue
            payload = item[1]
            if (isinstance(payload, tuple) and len(payload) == 3
                    and payload[0] == "write"):
                candidate = (payload[1], payload[2])
                if rank(candidate) > rank(best):
                    best = candidate
        return best


class WriterClient(ClientProgram):
    """Issues a scripted sequence of writes, one per listed round."""

    def __init__(self, writes: dict[VirtualRound, Any], *, base_seq: int = 1) -> None:
        self.writes = dict(writes)
        self._seq = base_seq
        self.issued: list[tuple[VirtualRound, int, Any]] = []

    def on_round(self, vr, observation):
        target = vr + 1
        if target in self.writes:
            seq = self._seq
            self._seq += 1
            self.issued.append((target, seq, self.writes[target]))
            return ("write", seq, self.writes[target])
        return None


class ReaderClient(ClientProgram):
    """Continuously reads: records every register value it observes."""

    def __init__(self) -> None:
        #: (virtual round, seq, value) observations, in order.
        self.reads: list[tuple[VirtualRound, int, Any]] = []

    def on_round(self, vr, observation):
        for item in observation.messages:
            if item[0] == "vn" and isinstance(item[2], tuple) \
                    and item[2][0] == "reg":
                _, seq, value = item[2]
                self.reads.append((vr, seq, value))
        return None

    def observed_sequence(self) -> list[int]:
        """The sequence numbers in observation order (monotone iff the
        register behaves atomically from this reader's viewpoint)."""
        return [seq for _, seq, _ in self.reads]
