"""Mobile-robot coordination via a virtual node ([4, 27]).

Lynch, Mitra & Nolte's motion-coordination work puts the *planner* on a
virtual node: unreliable robots report positions; the reliable virtual
node computes a formation assignment and broadcasts it; robots move
toward their targets.  The virtual node's determinism makes the plan
consistent, no matter which replicas emulate it.

Robot kinematics here are *virtual* (each robot client integrates its own
position in program state, moving at a bounded step per virtual round):
the devices hosting the robot clients can themselves be static, which
isolates the coordination logic from the emulation's churn dynamics.
Positions are fixed-point integers (hundredths) to stay in the canonical
value domain.
"""

from __future__ import annotations

import math
from typing import Any

from ..types import VirtualRound
from ..vi.client import ClientProgram
from ..vi.program import VNProgram, VirtualObservation

#: Fixed-point scale for coordinates carried in messages.
SCALE = 100


def to_fixed(x: float) -> int:
    return round(x * SCALE)


def from_fixed(n: int) -> float:
    return n / SCALE


def circle_formation(count: int, *, radius: float) -> list[tuple[int, int]]:
    """``count`` evenly spaced fixed-point targets on a circle."""
    return [
        (to_fixed(radius * math.cos(2 * math.pi * i / count)),
         to_fixed(radius * math.sin(2 * math.pi * i / count)))
        for i in range(count)
    ]


class CoordinatorProgram(VNProgram):
    """Assigns each reporting robot a slot on a circle formation.

    State: sorted tuple of ``(robot_id, slot)`` assignments.  Robots are
    assigned slots in the (deterministic) order their reports were first
    agreed; each round the coordinator broadcasts the full assignment of
    one robot, cycling round-robin so every robot eventually hears its
    target (a constant-size message per round).
    """

    def __init__(self, *, radius: float = 2.0, capacity: int = 8) -> None:
        self.radius = radius
        self.capacity = capacity

    def init_state(self):
        return ()

    def emit(self, state, vr):
        if not state:
            return None
        robot, slot = state[vr % len(state)]
        targets = circle_formation(self.capacity, radius=self.radius)
        tx, ty = targets[slot % self.capacity]
        return ("goto", robot, tx, ty)

    def step(self, state, vr, observation: VirtualObservation):
        assigned = dict(state)
        for item in observation.messages:
            if item[0] == "cl":
                payload = item[1]
                if (isinstance(payload, tuple) and len(payload) == 4
                        and payload[0] == "pos"):
                    robot = payload[1]
                    if robot not in assigned and len(assigned) < self.capacity:
                        assigned[robot] = len(assigned)
        return tuple(sorted(assigned.items()))


class RobotClient(ClientProgram):
    """A robot: reports its (virtual) position, obeys ``goto`` commands."""

    def __init__(self, robot_id: str, *, start: tuple[float, float],
                 step_length: float = 0.25, report_period: int = 2,
                 report_offset: int = 0) -> None:
        self.robot_id = robot_id
        self.x, self.y = start
        self.step_length = step_length
        self.report_period = max(1, report_period)
        #: Staggers reports: robots sharing a period must use distinct
        #: offsets or their announcements collide every single round.
        self.report_offset = report_offset % self.report_period
        self.target: tuple[float, float] | None = None
        self.track: list[tuple[float, float]] = [start]

    def _advance(self) -> None:
        if self.target is None:
            return
        dx, dy = self.target[0] - self.x, self.target[1] - self.y
        dist = math.hypot(dx, dy)
        if dist <= self.step_length:
            self.x, self.y = self.target
        elif dist > 0:
            self.x += dx / dist * self.step_length
            self.y += dy / dist * self.step_length

    def on_round(self, vr, observation):
        for item in observation.messages:
            if item[0] == "vn" and isinstance(item[2], tuple) \
                    and item[2][0] == "goto" and item[2][1] == self.robot_id:
                self.target = (from_fixed(item[2][2]), from_fixed(item[2][3]))
        self._advance()
        self.track.append((self.x, self.y))
        if (vr + 1) % self.report_period == self.report_offset:
            return ("pos", self.robot_id, to_fixed(self.x), to_fixed(self.y))
        return None

    def distance_to_target(self) -> float | None:
        if self.target is None:
            return None
        return math.hypot(self.target[0] - self.x, self.target[1] - self.y)
