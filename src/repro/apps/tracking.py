"""A location/tracking service over a virtual-node grid ([11, 16, 34, 36]).

Mobile targets announce themselves; each virtual node remembers which
targets it heard recently and broadcasts a digest.  Because virtual nodes
sit at known locations, "target T was last heard by virtual node v"
*is* a location estimate — the core trick of the paper's cited tracking
services.

The target's motion is carried by the device's real mobility model; its
announcements reach whichever virtual nodes are in (emergent) virtual
range, so the trace of last-seen records follows the target across the
grid.
"""

from __future__ import annotations

from typing import Any

from ..geometry import Point
from ..types import VirtualRound
from ..vi.client import ClientProgram
from ..vi.program import VNProgram, VirtualObservation
from ..vi.world import VIWorld


class TrackerProgram(VNProgram):
    """Remembers the last virtual round each target was heard.

    State: a sorted tuple of ``(target_id, last_seen_vr)`` pairs.  Emits
    a digest of the most recently heard target so that queriers (and
    neighbouring virtual nodes) can follow hand-offs.
    """

    def init_state(self):
        return ()

    def emit(self, state, vr):
        if not state:
            return None
        target, seen = max(state, key=lambda pair: (pair[1], pair[0]))
        return ("seen", target, seen)

    def step(self, state, vr, observation: VirtualObservation):
        last = dict(state)
        for item in observation.messages:
            if item[0] == "cl":
                payload = item[1]
                if (isinstance(payload, tuple) and len(payload) == 2
                        and payload[0] == "here"):
                    last[payload[1]] = vr
        return tuple(sorted(last.items()))


class TargetClient(ClientProgram):
    """A target announcing ``("here", target_id)`` every ``period`` rounds."""

    def __init__(self, target_id: str, *, period: int = 1) -> None:
        self.target_id = target_id
        self.period = max(1, period)

    def on_round(self, vr, observation):
        if (vr + 1) % self.period == 0:
            return ("here", self.target_id)
        return None


def last_seen_map(world: VIWorld, target_id: str) -> dict[int, VirtualRound]:
    """Per-virtual-node last-seen round for a target (from replica state)."""
    out: dict[int, VirtualRound] = {}
    for site in world.sites:
        for state in world.vn_states(site.vn_id).values():
            seen = dict(state).get(target_id)
            if seen is not None:
                out[site.vn_id] = max(out.get(site.vn_id, -1), seen)
            break  # replicas agree; one is enough
    return out


def estimate_position(world: VIWorld, target_id: str) -> Point | None:
    """The home location of the virtual node that heard the target last."""
    seen = last_seen_map(world, target_id)
    if not seen:
        return None
    best_vn = max(seen, key=lambda vn: (seen[vn], -vn))
    for site in world.sites:
        if site.vn_id == best_vn:
            return site.location
    return None
