"""Plane geometry substrate: points, disks and virtual-node grids."""

from .points import (
    ORIGIN,
    Point,
    centroid,
    max_pairwise_distance,
    pairwise_distances,
)
from .regions import Disk, GridSpec

__all__ = [
    "ORIGIN",
    "Point",
    "centroid",
    "max_pairwise_distance",
    "pairwise_distances",
    "Disk",
    "GridSpec",
]
