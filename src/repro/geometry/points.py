"""Plane geometry primitives.

The paper's model places nodes in the Euclidean plane with a bounded
maximum velocity ``vmax`` and two radii: the broadcast radius ``R1`` and
the interference radius ``R2 >= R1`` (quasi-unit-disk model).  Everything
downstream only needs points, distances and straight-line motion, which we
keep dependency-free and exact enough for deterministic simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable point (or displacement vector) in the plane."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance between two points."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def within(self, other: "Point", radius: float) -> bool:
        """True when ``other`` lies within ``radius`` of this point.

        Uses squared distances so that membership tests are exact for the
        integer/rational coordinates the test-suite favours.
        """
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy <= radius * radius

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def scaled(self, factor: float) -> "Point":
        """This point treated as a vector, scaled by ``factor``."""
        return Point(self.x * factor, self.y * factor)

    def norm(self) -> float:
        """Euclidean norm of this point treated as a vector."""
        return math.hypot(self.x, self.y)

    def unit(self) -> "Point":
        """Unit vector in this direction (zero vector maps to itself)."""
        n = self.norm()
        if n == 0.0:
            return Point(0.0, 0.0)
        return Point(self.x / n, self.y / n)

    def moved_toward(self, target: "Point", step: float) -> "Point":
        """The point reached by moving ``step`` toward ``target``.

        Never overshoots: if ``target`` is closer than ``step`` the result
        is exactly ``target``.  This is the primitive used by the mobility
        models to honour the ``vmax`` bound of the system model.
        """
        gap = self.distance_to(target)
        if gap <= step:
            return target
        return self + (target - self).unit().scaled(step)

    def as_tuple(self) -> tuple[float, float]:
        return (self.x, self.y)


ORIGIN = Point(0.0, 0.0)


def centroid(points: Iterable[Point]) -> Point:
    """Arithmetic mean of a non-empty collection of points."""
    pts = list(points)
    if not pts:
        raise ValueError("centroid of an empty point collection is undefined")
    sx = sum(p.x for p in pts)
    sy = sum(p.y for p in pts)
    return Point(sx / len(pts), sy / len(pts))


def pairwise_distances(points: Iterable[Point]) -> Iterator[float]:
    """Yield the distance of every unordered pair of distinct indices."""
    pts = list(points)
    for i in range(len(pts)):
        for j in range(i + 1, len(pts)):
            yield pts[i].distance_to(pts[j])


def max_pairwise_distance(points: Iterable[Point]) -> float:
    """Diameter of a point set (0.0 for fewer than two points)."""
    return max(pairwise_distances(points), default=0.0)
