"""Regions of the plane: disks and regular grids of virtual-node sites.

Section 4 of the paper replicates virtual node ``v`` at every device within
distance ``R1/4`` of its home location, and schedules virtual nodes so that
two nodes scheduled together are farther apart than ``R1 + 2*R2``.  These
helpers express both notions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .points import Point


@dataclass(frozen=True, slots=True)
class Disk:
    """A closed disk: the region within ``radius`` of ``center``."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError(f"disk radius must be non-negative, got {self.radius}")

    def contains(self, point: Point) -> bool:
        return self.center.within(point, self.radius)

    def intersects(self, other: "Disk") -> bool:
        return self.center.within(other.center, self.radius + other.radius)


@dataclass(frozen=True, slots=True)
class GridSpec:
    """A rectangular grid of virtual-node home locations.

    ``rows`` x ``cols`` sites spaced ``spacing`` apart, with the (0, 0)
    site at ``origin``.  This is the canonical "virtual infrastructure
    deployed at regular locations throughout the world" of Section 1.2.
    """

    rows: int
    cols: int
    spacing: float
    origin: Point = Point(0.0, 0.0)

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("grid must have at least one row and one column")
        if self.spacing <= 0:
            raise ValueError("grid spacing must be positive")

    def site(self, row: int, col: int) -> Point:
        """Home location of the virtual node at grid coordinate (row, col)."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"grid coordinate ({row}, {col}) out of range")
        return Point(
            self.origin.x + col * self.spacing,
            self.origin.y + row * self.spacing,
        )

    def sites(self) -> Iterator[Point]:
        """All home locations in row-major order."""
        for row in range(self.rows):
            for col in range(self.cols):
                yield self.site(row, col)

    def __len__(self) -> int:
        return self.rows * self.cols

    def nearest_site(self, point: Point) -> tuple[int, int]:
        """Grid coordinate of the site nearest ``point`` (ties break low)."""
        col = round((point.x - self.origin.x) / self.spacing)
        row = round((point.y - self.origin.y) / self.spacing)
        row = min(max(row, 0), self.rows - 1)
        col = min(max(col, 0), self.cols - 1)
        return (row, col)
