"""Time benchmark scenarios on the fast and reference engine paths.

Each scenario trial builds a fresh spec (fresh seeded components) and
drives it through :func:`repro.experiment.runner.run`, with a timing
proxy around :meth:`Channel.deliver` installed via the runner's
``instrument`` hook and the history fold timer armed, so the report can
break each round's wall time into the *channel* phase, the *history*
phase (``calculate-history`` folding) and the *protocol + engine*
remainder.

Reference timings re-run the same scenario on the full reference stack:
the channel pinned to its all-pairs path, the simulator's caches
disabled *and* its round loop pinned to the seed per-node engine,
every protocol core pinned to the seed dict-based core *and* its
re-walking history fold, and VI emulations pinned to the seed
per-device phase dispatch — the same five switches
``REPRO_REFERENCE_CHANNEL=1`` / ``REPRO_REFERENCE_HISTORY=1`` /
``REPRO_REFERENCE_ENGINE=1`` / ``REPRO_REFERENCE_CORE=1`` /
``REPRO_REFERENCE_VI=1`` flip globally — giving the machine-independent
``speedup_vs_reference`` ratio the regression gate
(:mod:`repro.bench.compare`) is keyed on.

Scenarios with :attr:`~.scenarios.BenchScenario.serial_baseline` set
swap that reference trial for the *same* spec pinned to ``shards=1``:
their ratio is the sharded engine against its serial twin (mirrored
into ``extras["speedup_vs_serial"]``), which is machine-*dependent* —
it needs real cores — so such scenarios ship ungated.

``run_benchmarks(..., workers=N)`` fans whole scenarios out over
:func:`repro.experiment.sweep.pool_map` (the sweep subsystem's worker
pool); each scenario is still timed inside its own dedicated process, so
the deterministic fields of a parallel report match the serial one.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from ..core.history import HISTORY_TIMER
from ..experiment.runner import run
from ..experiment.sweep import pool_map
from .scenarios import ALL_SCENARIOS, BenchScenario, LoadScenario, scenario_by_name

#: BENCH_results.json schema version.
SCHEMA = 1


class _ChannelTimer:
    """Delegating proxy accumulating time spent in channel delivery
    (both the classic per-call entrypoint and the batched one)."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.seconds = 0.0
        self.calls = 0

    def deliver(self, *args, **kwargs):
        t0 = time.perf_counter()
        out = self._inner.deliver(*args, **kwargs)
        self.seconds += time.perf_counter() - t0
        self.calls += 1
        return out

    def deliver_batch(self, *args, **kwargs):
        t0 = time.perf_counter()
        out = self._inner.deliver_batch(*args, **kwargs)
        self.seconds += time.perf_counter() - t0
        self.calls += 1
        return out

    def __getattr__(self, name):
        return getattr(self._inner, name)


@dataclass
class BenchResult:
    """One scenario's measurements (the unit of BENCH_results.json)."""

    name: str
    family: str
    n: int
    description: str
    rounds: int
    #: Whether this scenario participates in the speedup regression gate
    #: (channel-dominated scenarios only; see BenchScenario.gated).
    gated: bool
    #: Fast-path wall time (best of ``repeats`` trials) and throughput.
    wall_s: float
    rounds_per_sec: float
    #: Per-phase wall-time breakdown of the best fast trial.
    phases: dict[str, float] = field(default_factory=dict)
    #: Reference-path numbers (None when ``--no-reference``).
    reference_wall_s: float | None = None
    reference_rounds_per_sec: float | None = None
    #: The machine-independent regression metric.
    speedup_vs_reference: float | None = None
    #: Scenario-kind-specific numbers.  For ``svc-*`` load scenarios:
    #: proposals/sec, decision-latency percentiles, dropped events,
    #: session counts.  Empty for batch scenarios.
    extras: dict = field(default_factory=dict)


def _time_once(scenario: BenchScenario, *,
               reference: bool) -> tuple[float, int, dict[str, float]]:
    """One trial: returns (wall_s, rounds, phase breakdown)."""
    spec = scenario.make_spec()
    serial_baseline = scenario.serial_baseline
    if reference:
        if serial_baseline:
            # The "reference" trial is the same spec pinned to the
            # serial engine: speedup_vs_reference becomes sharded vs
            # serial on an otherwise identical fast-path stack.
            spec = dataclasses.replace(spec, shards=1)
        else:
            spec = dataclasses.replace(spec, use_reference_history=True,
                                       use_reference_core=True,
                                       use_reference_vi=True)
    timer_box: list[_ChannelTimer] = []

    def instrument(sim) -> None:
        if reference and not serial_baseline:
            sim.fast_path = False
            sim.channel.use_reference = True
            sim.use_reference_engine = True
        timer = _ChannelTimer(sim.channel)
        sim.channel = timer
        timer_box.append(timer)

    with HISTORY_TIMER:
        result = run(spec, instrument=instrument)
    wall = result.timings["wall_s"]
    rounds = int(result.timings.get("rounds", 0))
    channel_s = timer_box[0].seconds if timer_box else 0.0
    history_s = result.timings.get("history_s", 0.0)
    phases = {
        "channel_s": channel_s,
        "history_s": history_s,
        "protocol_and_engine_s": max(0.0, wall - channel_s - history_s),
    }
    return wall, rounds, phases


def _run_load_scenario(scenario: LoadScenario, *, repeats: int,
                       log: Callable[[str], None] | None) -> BenchResult:
    """Serve a world under a seeded client population; best of ``repeats``.

    "Best" is the trial with the lowest wall time — its service-level
    numbers (latency percentiles, drop counts) travel with it so a
    report row is internally consistent rather than a mix of trials.
    """
    from ..service.loadgen import run_load_sync

    say = log or (lambda msg: None)
    best: dict | None = None
    for trial in range(repeats):
        say(f"  {scenario.name}: load trial {trial + 1}/{repeats} ...")
        spec, profile, config = scenario.make_load()
        report = run_load_sync(spec, profile, config)
        if best is None or report["wall_s"] < best["wall_s"]:
            best = report
    assert best is not None
    return BenchResult(
        name=scenario.name,
        family=scenario.family,
        n=scenario.n,
        description=scenario.description,
        rounds=best["rounds"],
        gated=scenario.gated,
        wall_s=best["wall_s"],
        rounds_per_sec=best["rounds_per_sec"],
        extras={
            "sessions": best["profile"]["sessions"],
            "pattern": best["profile"]["pattern"],
            "worlds": best["profile"].get("worlds", 1),
            "per_world": best.get("per_world", {}),
            "sessions_opened": best["sessions_opened"],
            "peak_sessions": best["peak_sessions"],
            "reconnects": best["reconnects"],
            "proposals_submitted": best["proposals_submitted"],
            "proposals_accepted": best["proposals_accepted"],
            "proposals_per_sec": best["proposals_per_sec"],
            "decisions_observed": best["decisions_observed"],
            "decision_latency_s": best["decision_latency_s"],
            "dropped_events": best["dropped_events"],
            "dropped_samples": best["dropped_samples"],
            "unserved": best["unserved"],
            "invariants": best["invariants"],
        },
    )


def run_scenario(scenario: BenchScenario | LoadScenario, *, repeats: int = 3,
                 reference: bool = True,
                 log: Callable[[str], None] | None = None) -> BenchResult:
    """Benchmark one scenario; wall times are the best of ``repeats``."""
    if isinstance(scenario, LoadScenario):
        return _run_load_scenario(scenario, repeats=repeats, log=log)
    say = log or (lambda msg: None)
    say(f"  {scenario.name}: fast path x{repeats} ...")
    fast_trials = [_time_once(scenario, reference=False)
                   for _ in range(repeats)]
    wall, rounds, phases = min(fast_trials, key=lambda t: t[0])
    result = BenchResult(
        name=scenario.name,
        family=scenario.family,
        n=scenario.n,
        description=scenario.description,
        rounds=rounds,
        gated=scenario.gated,
        wall_s=wall,
        rounds_per_sec=rounds / wall if wall > 0 else 0.0,
        phases=phases,
    )
    if scenario.serial_baseline:
        result.extras["shards"] = scenario.make_spec().shards
    if reference:
        label = ("serial engine" if scenario.serial_baseline
                 else "reference path")
        say(f"  {scenario.name}: {label} x{repeats} ...")
        ref_trials = [_time_once(scenario, reference=True)
                      for _ in range(repeats)]
        ref_wall, ref_rounds, _ = min(ref_trials, key=lambda t: t[0])
        result.reference_wall_s = ref_wall
        result.reference_rounds_per_sec = (
            ref_rounds / ref_wall if ref_wall > 0 else 0.0)
        if wall > 0:
            result.speedup_vs_reference = ref_wall / wall
        if scenario.serial_baseline:
            # The acceptance metric for the sharded engine: the same
            # fast-path stack, shards=N vs shards=1.
            result.extras["speedup_vs_serial"] = result.speedup_vs_reference
            result.extras["serial_wall_s"] = ref_wall
    return result


def _scenario_job(job: tuple[str, int, bool]) -> dict:
    """Worker-pool unit: benchmark one registered scenario by name.

    Scenarios carry closures, so the pool ships names and re-resolves
    them in the worker (fork inherits the registry, including any test
    monkeypatching).
    """
    name, repeats, reference = job
    return asdict(run_scenario(scenario_by_name(name),
                               repeats=repeats, reference=reference))


def run_benchmarks(scenarios: Iterable[BenchScenario] = ALL_SCENARIOS, *,
                   repeats: int = 3, reference: bool = True,
                   workers: int = 1,
                   machine_class: str | None = None,
                   log: Callable[[str], None] | None = None) -> dict:
    """Run a scenario matrix and assemble the report dict.

    ``machine_class`` is an operator-assigned label for the hardware
    class the run executed on (e.g. ``"github-ubuntu-24.04"``).  It is
    recorded verbatim in the report; the absolute rounds/sec gate
    (:func:`repro.bench.compare.compare_absolute`) only arms itself when
    a report and a baseline carry the *same* non-empty label, so
    machine-dependent numbers are never compared across machine classes.

    ``workers > 1`` fans scenarios out over the sweep subsystem's worker
    pool (one scenario per process at a time; requires every scenario to
    be resolvable via :func:`~repro.bench.scenarios.scenario_by_name`).
    This is a throughput mode: every measurement — wall times *and* the
    speedup ratio — then reflects a machine loaded by the co-scheduled
    scenarios, so gate comparisons and baseline updates should run
    serially.
    """
    scenarios = list(scenarios)
    if workers > 1:
        for scenario in scenarios:
            # Workers re-resolve by name; a caller-supplied scenario
            # shadowing a registered name would silently measure the
            # registered spec instead.
            if scenario_by_name(scenario.name) is not scenario:
                raise ValueError(
                    f"parallel bench requires registered scenarios, but "
                    f"{scenario.name!r} is not the registered scenario "
                    "of that name"
                )
        say = log or (lambda msg: None)
        say(f"  fanning {len(scenarios)} scenario(s) over "
            f"{workers} workers ...")
        rows = pool_map(
            _scenario_job,
            [(s.name, repeats, reference) for s in scenarios],
            workers=workers,
        )
        results = {s.name: row for s, row in zip(scenarios, rows)}
    else:
        results = {}
        for scenario in scenarios:
            results[scenario.name] = asdict(run_scenario(
                scenario, repeats=repeats, reference=reference, log=log))
    return {
        "schema": SCHEMA,
        "machine_class": machine_class,
        "config": {"repeats": repeats, "reference": reference,
                   "workers": workers},
        "results": results,
    }


def write_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def load_report(path: str | Path) -> dict:
    report = json.loads(Path(path).read_text())
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unsupported bench report schema "
            f"{report.get('schema')!r} (expected {SCHEMA})"
        )
    return report
