"""repro.bench — the performance trajectory of the simulation engine.

Seeded, deterministic benchmark scenarios over every protocol family
(plain CHA, checkpoint-CHA, two-phase-CHA, the naive and majority RSM
baselines, and the full virtual-infrastructure emulation) at 50-400
nodes, a runner that times them on the indexed fast path *and* on the
reference channel (``REPRO_REFERENCE_CHANNEL``-equivalent), and a
comparison mode that fails on regressions against a committed baseline.

Usage::

    python -m repro.bench                 # full matrix -> BENCH_results.json
    python -m repro.bench --quick         # the CI smoke matrix
    python -m repro.bench --compare       # fail on >15% regression vs
                                          # benchmarks/BENCH_baseline.json
    python -m repro.bench --update-baseline

The committed baseline stores the *speedup versus the reference channel*
per scenario — a machine-independent ratio — so CI regression gating does
not depend on runner hardware.  Absolute wall times and rounds/sec are
reported alongside for humans.
"""

from .compare import (
    DEFAULT_ABSOLUTE_TOLERANCE,
    DEFAULT_BASELINE_PATH,
    DEFAULT_TOLERANCE,
    compare_absolute,
    compare_reports,
)
from .history import append_history, history_entry, load_history
from .runner import (
    BenchResult,
    load_report,
    run_benchmarks,
    run_scenario,
    write_report,
)
from .scenarios import (
    ALL_SCENARIOS,
    QUICK_SCENARIOS,
    BenchScenario,
    LoadScenario,
    scenario_by_name,
)

__all__ = [
    "ALL_SCENARIOS",
    "BenchResult",
    "BenchScenario",
    "LoadScenario",
    "DEFAULT_ABSOLUTE_TOLERANCE",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_TOLERANCE",
    "QUICK_SCENARIOS",
    "append_history",
    "compare_absolute",
    "compare_reports",
    "history_entry",
    "load_history",
    "load_report",
    "run_benchmarks",
    "run_scenario",
    "scenario_by_name",
    "write_report",
]
