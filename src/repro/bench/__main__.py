"""``python -m repro.bench`` — run the benchmark matrix.

Emits ``BENCH_results.json`` (wall time, rounds/sec, per-phase breakdown
and speedup-vs-reference per scenario) and optionally gates against the
committed baseline, exiting non-zero on a >15% regression.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from .compare import (
    DEFAULT_ABSOLUTE_TOLERANCE,
    DEFAULT_BASELINE_PATH,
    DEFAULT_TOLERANCE,
    compare_absolute,
    compare_reports,
    comparison_notes,
)
from .history import append_history
from .runner import load_report, run_benchmarks, write_report
from .scenarios import ALL_SCENARIOS, QUICK_SCENARIOS, scenario_by_name


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark the simulation engine across protocol "
                    "families and emit BENCH_results.json.",
    )
    parser.add_argument("--out", default="BENCH_results.json",
                        help="result file path (default: %(default)s)")
    parser.add_argument("--quick", action="store_true",
                        help="run only the reduced CI smoke matrix")
    parser.add_argument("--scenarios",
                        help="comma-separated scenario names (see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list scenarios and exit")
    parser.add_argument("--repeats", type=int, default=3,
                        help="trials per path; best is reported "
                             "(default: %(default)s)")
    parser.add_argument("--workers", type=int, default=1,
                        help="fan scenarios out over this many sweep-pool "
                             "worker processes (default: serial). "
                             "Throughput mode: measurements reflect a "
                             "loaded machine, so gate and baseline runs "
                             "should stay serial")
    parser.add_argument("--no-reference", action="store_true",
                        help="skip reference-channel timings (faster; "
                             "disables the speedup metric)")
    parser.add_argument("--compare", nargs="?", const=str(DEFAULT_BASELINE_PATH),
                        metavar="BASELINE",
                        help="after running, fail on regression vs this "
                             "baseline (default: %(const)s)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="maximum tolerated fractional regression "
                             "(default: %(default)s)")
    parser.add_argument("--metric", default="speedup_vs_reference",
                        choices=("speedup_vs_reference", "rounds_per_sec"),
                        help="regression metric (default: %(default)s; "
                             "rounds_per_sec only makes sense on the "
                             "machine that produced the baseline)")
    parser.add_argument("--update-baseline", action="store_true",
                        help=f"also write results to {DEFAULT_BASELINE_PATH}")
    parser.add_argument("--machine-class",
                        default=os.environ.get("REPRO_MACHINE_CLASS") or None,
                        help="hardware-class label recorded in the report "
                             "(default: $REPRO_MACHINE_CLASS); required on "
                             "both sides for --absolute to arm")
    parser.add_argument("--absolute", action="store_true",
                        help="with --compare: additionally gate absolute "
                             "rounds/sec floors — armed only when the "
                             "baseline's machine_class matches this run's "
                             "(the nightly pinned-machine gate)")
    parser.add_argument("--absolute-tolerance", type=float,
                        default=DEFAULT_ABSOLUTE_TOLERANCE,
                        help="maximum tolerated fractional rounds/sec "
                             "regression for --absolute "
                             "(default: %(default)s)")
    parser.add_argument("--append-history", metavar="JSONL",
                        help="append a one-line digest of this run to the "
                             "given JSONL trend log (the bench-trend CI "
                             "job's BENCH_history.jsonl)")
    args = parser.parse_args(argv)
    if args.absolute and args.compare is None:
        parser.error("--absolute requires --compare")

    if args.list:
        for s in ALL_SCENARIOS:
            tag = " [quick]" if s.quick else ""
            print(f"{s.name:24s} {s.family:14s} n={s.n:<4d}{tag} {s.description}")
        return 0

    if args.scenarios:
        scenarios = [scenario_by_name(name.strip())
                     for name in args.scenarios.split(",") if name.strip()]
    elif args.quick:
        scenarios = list(QUICK_SCENARIOS)
    else:
        scenarios = list(ALL_SCENARIOS)

    print(f"repro.bench: {len(scenarios)} scenario(s), "
          f"{args.repeats} repeat(s), reference="
          f"{'off' if args.no_reference else 'on'}"
          + (f", {args.workers} workers" if args.workers > 1 else ""))
    if args.workers > 1 and (args.compare is not None or args.update_baseline):
        print("warning: --workers distorts timings under load; gate "
              "comparisons and baseline updates should run serially",
              file=sys.stderr)
    report = run_benchmarks(
        scenarios, repeats=args.repeats,
        reference=not args.no_reference, workers=args.workers,
        machine_class=args.machine_class, log=print,
    )
    out = write_report(report, args.out)
    print(f"wrote {out}")
    for name, row in report["results"].items():
        speedup = row["speedup_vs_reference"]
        speedup_txt = f"  speedup {speedup:.2f}x" if speedup else ""
        print(f"  {name:24s} {row['rounds']:>6d} rounds  "
              f"{row['rounds_per_sec']:>10.0f} rounds/s{speedup_txt}")

    if args.update_baseline:
        write_report(report, DEFAULT_BASELINE_PATH)
        print(f"updated {DEFAULT_BASELINE_PATH}")

    if args.append_history:
        entry = append_history(report, args.append_history)
        print(f"appended trend entry to {args.append_history} "
              f"(revision {entry['revision']}, "
              f"machine_class {entry['machine_class']})")

    if args.compare is not None:
        baseline_path = Path(args.compare)
        if not baseline_path.exists():
            print(f"error: baseline {baseline_path} does not exist",
                  file=sys.stderr)
            return 2
        baseline = load_report(baseline_path)
        for note in comparison_notes(report, baseline):
            print(f"note: {note}")
        regressions = compare_reports(
            report, baseline,
            tolerance=args.tolerance, metric=args.metric,
        )
        if args.absolute:
            absolute_regressions, skip_reason = compare_absolute(
                report, baseline, tolerance=args.absolute_tolerance,
            )
            if skip_reason is not None:
                print(f"absolute gate skipped: {skip_reason}")
            else:
                regressions += absolute_regressions
        if regressions:
            print(f"REGRESSION vs {baseline_path}:", file=sys.stderr)
            for message in regressions:
                print(f"  {message}", file=sys.stderr)
            return 1
        print(f"no regression vs {baseline_path} "
              f"(metric {args.metric}, tolerance {args.tolerance:.0%}"
              + (f"; absolute floors at {args.absolute_tolerance:.0%}"
                 if args.absolute else "") + ")")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
