"""The benchmark trend log: append-only JSONL of report digests.

``benchmarks/BENCH_history.jsonl`` holds one line per recorded benchmark
run — a timestamped digest of the interesting per-scenario numbers
(rounds/sec, speedup-vs-reference, wall time), plus the machine class
and git revision that produced them — so the performance trajectory of
the engine is finally a dataset instead of folklore.  The nightly
``bench-trend`` CI job appends an entry after every full matrix run and
re-uploads the file as an artifact (and cache), giving a cumulative
record across runs.

The digest deliberately drops descriptions and phase breakdowns: one
line must stay greppable and the full ``BENCH_results.json`` artifact
exists for forensics.

Usage::

    python -m repro.bench --append-history benchmarks/BENCH_history.jsonl
    python -m repro.bench.history BENCH_results.json BENCH_history.jsonl
"""

from __future__ import annotations

import json
import os
import subprocess
from datetime import datetime, timezone
from pathlib import Path

#: History-line schema version (independent of the report schema).
HISTORY_SCHEMA = 1

#: Per-scenario fields copied into a history entry, in this order.
DIGEST_FIELDS = ("rounds_per_sec", "speedup_vs_reference", "wall_s",
                 "rounds", "gated")


def _git_revision() -> str | None:
    """Current commit id, from CI env if available, else git itself."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        # Covers TimeoutExpired too: a wedged git must not abort the
        # trend append after a full matrix has already been measured.
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def history_entry(report: dict, *,
                  timestamp: str | None = None,
                  revision: str | None = None) -> dict:
    """One JSONL-ready digest of a benchmark report.

    ``timestamp`` (ISO-8601) and ``revision`` default to the current
    UTC time and the checked-out commit; pass them explicitly for
    reproducible tests.
    """
    if timestamp is None:
        timestamp = datetime.now(timezone.utc).isoformat(timespec="seconds")
    if revision is None:
        revision = _git_revision()
    return {
        "schema": HISTORY_SCHEMA,
        "timestamp": timestamp,
        "revision": revision,
        "machine_class": report.get("machine_class"),
        "config": report.get("config", {}),
        "results": {
            name: {field: row.get(field) for field in DIGEST_FIELDS}
            for name, row in sorted(report.get("results", {}).items())
        },
    }


def append_history(report: dict, path: str | Path, *,
                   timestamp: str | None = None,
                   revision: str | None = None) -> dict:
    """Append one digest line for ``report`` to the JSONL file at
    ``path`` (created, parents included, if absent) and return it."""
    entry = history_entry(report, timestamp=timestamp, revision=revision)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(path: str | Path) -> list[dict]:
    """All recorded entries, oldest first (empty when the file is new)."""
    path = Path(path)
    if not path.exists():
        return []
    entries = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line:
            entries.append(json.loads(line))
    return entries


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.bench.history RESULTS HISTORY`` — append one
    digest of an existing report file to a history file."""
    import argparse

    from .runner import load_report

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.history",
        description="Append a benchmark report digest to a JSONL trend log.",
    )
    parser.add_argument("results", help="BENCH_results.json to digest")
    parser.add_argument("history", help="JSONL trend log to append to")
    args = parser.parse_args(argv)
    entry = append_history(load_report(args.results), args.history)
    scenarios = len(entry["results"])
    print(f"appended {scenarios} scenario digest(s) to {args.history} "
          f"(revision {entry['revision']}, "
          f"machine_class {entry['machine_class']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
