"""Regression gating against a committed benchmark baseline.

The committed baseline (``benchmarks/BENCH_baseline.json``) stores, per
scenario, the indexed fast path's speedup over the reference channel.
That ratio cancels out machine speed, so a laptop and a CI runner gate
on the same number: a change that erodes the fast path's advantage by
more than the tolerance (default 15%) fails, however fast the hardware.

Absolute metrics (``rounds_per_sec``) can be gated too — meaningful only
when baseline and current run were produced on comparable machines.
"""

from __future__ import annotations

from pathlib import Path

#: The committed baseline the CI smoke job compares against.
DEFAULT_BASELINE_PATH = Path("benchmarks") / "BENCH_baseline.json"

#: Maximum tolerated fractional regression.
DEFAULT_TOLERANCE = 0.15


def compare_reports(current: dict, baseline: dict, *,
                    tolerance: float = DEFAULT_TOLERANCE,
                    metric: str = "speedup_vs_reference") -> list[str]:
    """Regression messages (empty when everything is within tolerance).

    A scenario regresses when its ``metric`` falls more than
    ``tolerance`` below the baseline's.  Scenarios present on only one
    side are skipped — the gate compares what both reports measured —
    and so are scenarios the baseline marks ``"gated": false`` (their
    speedup ratio sits within run-to-run noise; they are informational).
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must lie in [0, 1), got {tolerance}")
    regressions = []
    base_results = baseline.get("results", {})
    cur_results = current.get("results", {})
    for name in sorted(base_results):
        if name not in cur_results:
            continue
        if base_results[name].get("gated", True) is False:
            continue
        base_value = base_results[name].get(metric)
        cur_value = cur_results[name].get(metric)
        if base_value is None or cur_value is None:
            continue
        floor = base_value * (1.0 - tolerance)
        if cur_value < floor:
            regressions.append(
                f"{name}: {metric} regressed {base_value:.3f} -> "
                f"{cur_value:.3f} (floor {floor:.3f} at "
                f"{tolerance:.0%} tolerance)"
            )
    return regressions
