"""Regression gating against a committed benchmark baseline.

The committed baseline (``benchmarks/BENCH_baseline.json``) stores, per
scenario, the fast engine's speedup over the full reference stack
(all-pairs channel, re-walking history fold, per-node round loop).
That ratio cancels out machine speed, so a laptop and a CI runner gate
on the same number: a change that erodes the fast path's advantage by
more than the tolerance (default 15%) fails, however fast the hardware.

Once a scenario's fast path saturates, the ratio stops moving and only
absolute throughput can regress further.  :func:`compare_absolute` is
the opt-in second gate for that regime: it checks ``rounds_per_sec``
floors — but *only* when the baseline and the current report declare the
same ``machine_class`` label, so machine-dependent numbers are never
compared across hardware classes.  The nightly bench-trend job runs it
on the pinned CI machine class; push/PR smoke runs stay on the
machine-independent ratio.
"""

from __future__ import annotations

from pathlib import Path

#: The committed baseline the CI smoke job compares against.
DEFAULT_BASELINE_PATH = Path("benchmarks") / "BENCH_baseline.json"

#: Maximum tolerated fractional regression of the speedup ratio.
DEFAULT_TOLERANCE = 0.15

#: Maximum tolerated fractional regression of absolute rounds/sec.
#: Looser than the ratio gate: even on a pinned machine class, cloud
#: runners share tenancy and absolute throughput jitters more.
DEFAULT_ABSOLUTE_TOLERANCE = 0.30


def compare_reports(current: dict, baseline: dict, *,
                    tolerance: float = DEFAULT_TOLERANCE,
                    metric: str = "speedup_vs_reference") -> list[str]:
    """Regression messages (empty when everything is within tolerance).

    A scenario regresses when its ``metric`` falls more than
    ``tolerance`` below the baseline's.  Scenarios present on only one
    side are skipped — the gate compares what both reports measured —
    and so are scenarios the baseline marks ``"gated": false`` (their
    speedup ratio sits within run-to-run noise; they are informational).
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must lie in [0, 1), got {tolerance}")
    regressions = []
    base_results = baseline.get("results", {})
    cur_results = current.get("results", {})
    for name in sorted(base_results):
        if name not in cur_results:
            continue
        if base_results[name].get("gated", True) is False:
            continue
        base_value = base_results[name].get(metric)
        cur_value = cur_results[name].get(metric)
        if base_value is None or cur_value is None:
            continue
        floor = base_value * (1.0 - tolerance)
        if cur_value < floor:
            regressions.append(
                f"{name}: {metric} regressed {base_value:.3f} -> "
                f"{cur_value:.3f} (floor {floor:.3f} at "
                f"{tolerance:.0%} tolerance)"
            )
    return regressions


def comparison_notes(current: dict, baseline: dict) -> list[str]:
    """Non-gating observations the skip logic of :func:`compare_reports`
    would otherwise swallow.

    The gate compares what both reports measured and trusts the
    *baseline's* ``gated`` flags — which means a renamed or dropped
    gated scenario, or a current report that flips a scenario's
    ``gated`` flag, silently disarms its gate.  These notes make every
    such skip visible in the comparator output (no-silent-caps): one
    line per scenario present on only one side, and one per gated-flag
    disagreement between the two reports.
    """
    notes = []
    base_results = baseline.get("results", {})
    cur_results = current.get("results", {})
    for name in sorted(base_results):
        if name in cur_results:
            continue
        gated = base_results[name].get("gated", True) is not False
        if gated:
            notes.append(f"{name}: gated in the baseline but missing from "
                         "the current report — its gate decided nothing")
        else:
            notes.append(f"{name}: in the baseline only (informational); "
                         "skipped")
    for name in sorted(cur_results):
        if name in base_results:
            continue
        gated = cur_results[name].get("gated", True) is not False
        if gated:
            notes.append(f"{name}: gated in the current report but absent "
                         "from the baseline — no floor to gate against")
        else:
            notes.append(f"{name}: in the current report only "
                         "(informational); skipped")
    for name in sorted(set(base_results) & set(cur_results)):
        base_gated = base_results[name].get("gated", True) is not False
        cur_gated = cur_results[name].get("gated", True) is not False
        if base_gated != cur_gated:
            notes.append(
                f"{name}: gated flag disagrees (baseline "
                f"{str(base_gated).lower()}, current "
                f"{str(cur_gated).lower()}); the baseline's flag decides"
            )
    return notes


def compare_absolute(current: dict, baseline: dict, *,
                     tolerance: float = DEFAULT_ABSOLUTE_TOLERANCE
                     ) -> tuple[list[str], str | None]:
    """The opt-in absolute rounds/sec gate.

    Returns ``(regressions, skip_reason)``.  The gate only arms when
    both reports carry the same non-empty ``machine_class`` — otherwise
    it reports *why* it stayed disarmed (missing label on either side,
    or a class mismatch) and no regressions.  When armed, every gated
    scenario present on both sides must keep its ``rounds_per_sec`` at
    or above the baseline's value minus the tolerance.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must lie in [0, 1), got {tolerance}")
    base_class = baseline.get("machine_class")
    cur_class = current.get("machine_class")
    if not base_class:
        return [], ("baseline declares no machine_class; record one with "
                    "`python -m repro.bench --machine-class <label> "
                    "--update-baseline` on the pinned machine")
    if not cur_class:
        return [], ("current report declares no machine_class; pass "
                    "--machine-class <label> to arm the absolute gate")
    if base_class != cur_class:
        return [], (f"machine_class mismatch (baseline {base_class!r}, "
                    f"current {cur_class!r}); absolute floors only bind "
                    "on the machine class that recorded them")
    regressions = []
    base_results = baseline.get("results", {})
    cur_results = current.get("results", {})
    for name in sorted(base_results):
        if name not in cur_results:
            continue
        if base_results[name].get("gated", True) is False:
            continue
        base_value = base_results[name].get("rounds_per_sec")
        cur_value = cur_results[name].get("rounds_per_sec")
        if not base_value or cur_value is None:
            continue
        floor = base_value * (1.0 - tolerance)
        if cur_value < floor:
            regressions.append(
                f"{name}: rounds_per_sec regressed {base_value:.0f} -> "
                f"{cur_value:.0f} on machine class {base_class!r} "
                f"(floor {floor:.0f} at {tolerance:.0%} tolerance)"
            )
    return regressions, None


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.bench.compare CURRENT BASELINE`` — gate an
    *existing* report file against a baseline without re-running the
    matrix.

    This is the offline half of ``python -m repro.bench --compare``: the
    nightly bench-trend job measures once, then gates the same
    ``BENCH_results.json`` against two baselines (the committed
    machine-independent ratio baseline and the cache-carried
    pinned-machine absolute one) with two invocations of this command.
    ``--absolute-only`` skips the ratio gate for the second invocation.
    Exits 1 on regression, 2 on a missing/unreadable report.
    """
    import argparse
    import sys

    from .runner import load_report

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description="Gate an existing benchmark report against a baseline.",
    )
    parser.add_argument("current", help="BENCH_results.json to gate")
    parser.add_argument("baseline", help="baseline report to gate against")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="maximum tolerated fractional regression of the "
                             "ratio metric (default: %(default)s)")
    parser.add_argument("--metric", default="speedup_vs_reference",
                        choices=("speedup_vs_reference", "rounds_per_sec"),
                        help="ratio-gate metric (default: %(default)s)")
    parser.add_argument("--absolute", action="store_true",
                        help="additionally gate absolute rounds/sec floors "
                             "(arms only on a machine_class match)")
    parser.add_argument("--absolute-only", action="store_true",
                        help="gate only the absolute floors (implies "
                             "--absolute; the nightly pinned-machine pass)")
    parser.add_argument("--absolute-tolerance", type=float,
                        default=DEFAULT_ABSOLUTE_TOLERANCE,
                        help="maximum tolerated fractional rounds/sec "
                             "regression (default: %(default)s)")
    args = parser.parse_args(argv)

    for path in (args.current, args.baseline):
        if not Path(path).exists():
            print(f"error: report {path} does not exist", file=sys.stderr)
            return 2
    current = load_report(args.current)
    baseline = load_report(args.baseline)

    for note in comparison_notes(current, baseline):
        print(f"note: {note}")

    regressions: list[str] = []
    gates: list[str] = []
    if not args.absolute_only:
        regressions += compare_reports(
            current, baseline, tolerance=args.tolerance, metric=args.metric)
        gates.append(f"metric {args.metric}, tolerance {args.tolerance:.0%}")
    if args.absolute or args.absolute_only:
        absolute_regressions, skip_reason = compare_absolute(
            current, baseline, tolerance=args.absolute_tolerance)
        if skip_reason is not None:
            print(f"absolute gate skipped: {skip_reason}")
            if args.absolute_only:
                # The caller asked for exactly this gate; a silent skip
                # would look like a pass.  Still exit 0 — arming is the
                # baseline recorder's job — but say so unmissably.
                print("absolute-only comparison decided nothing "
                      "(gate disarmed)")
                return 0
        else:
            regressions += absolute_regressions
            gates.append(f"absolute floors at {args.absolute_tolerance:.0%} "
                         f"on machine class "
                         f"{baseline.get('machine_class')!r}")

    if regressions:
        print(f"REGRESSION vs {args.baseline}:", file=sys.stderr)
        for message in regressions:
            print(f"  {message}", file=sys.stderr)
        return 1
    print(f"no regression vs {args.baseline} ({'; '.join(gates)})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
