"""Seeded benchmark scenarios over every protocol family.

Each scenario is a pure description that builds a fresh
:class:`~repro.experiment.spec.ExperimentSpec` on demand, so repeated
trials never share mutable state (seeded adversaries and mobility models
are re-constructed per trial and replay identically).

The node range spans 50-1000 physical nodes.  ``e8-majority-200`` and
``e8-cha-200`` are the E8-style headliners: the two columns of benchmark
E1.5/E8 (CHAP and the majority-quorum RSM sharing one collision-prone
channel) at 200 nodes, which is where the engine's speedup over the
reference paths (all-pairs channel + re-walking history fold) is
asserted by the acceptance tests.  ``cha-1k-spread`` is the ROADMAP
scale-out world: a 1000-node ring spread far beyond R2, where the
spatial grid index is near-O(senders) while the reference channel stays
all-pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable

from ..experiment import (
    CHA,
    CheckpointCHA,
    ClusterWorld,
    DeployedWorld,
    DeviceSpec,
    ExperimentSpec,
    MajorityRSM,
    MetricsSpec,
    NaiveRSM,
    TwoPhaseCHA,
    VIEmulation,
    WorkloadSpec,
)
from ..geometry import Point
from ..net import RandomLossAdversary
from ..service.loadgen import LoadProfile
from ..service.server import ServiceConfig
from ..vi.program import CounterProgram
from ..vi.schedule import VNSite


def _count_reducer(state: Any, k: int, value: Any) -> Any:
    """Checkpoint reducer: fold decided instances into a running count."""
    return (state or 0) + 1


@dataclass(frozen=True)
class BenchScenario:
    """One named, deterministic benchmark configuration."""

    name: str
    family: str
    #: Physical node / device count.
    n: int
    #: Human description for reports.
    description: str
    #: Builds a fresh spec (fresh seeded components) per trial.
    make_spec: Callable[[], ExperimentSpec]
    #: Part of the reduced CI smoke matrix?
    quick: bool = False
    #: Eligible for the speedup regression gate?  Scenarios dominated by
    #: an accelerated phase — the indexed channel or, since the
    #: incremental history engine, the CHA family's fold — carry a
    #: stable speedup ratio.  Scenarios whose ratio sits within
    #: run-to-run noise (adversary-RNG-bound, or GC'd folds that never
    #: grow) are reported but not gated.
    gated: bool = False
    #: When true, the "reference" trial is the *same* spec pinned to
    #: ``shards=1`` (the serial engine) instead of the reference-stack
    #: switches: ``speedup_vs_reference`` then measures the sharded
    #: engine against its serial twin, and the runner mirrors it into
    #: ``extras["speedup_vs_serial"]``.
    serial_baseline: bool = False


@dataclass(frozen=True)
class LoadScenario:
    """One named, seeded service load-test configuration.

    The ``svc-*`` rows of the matrix: instead of timing a batch run,
    these serve a world through :class:`repro.service.ConsensusService`
    and drive it with a seeded client population
    (:mod:`repro.service.loadgen`).  ``n`` is the *concurrent session*
    count; the reported ``rounds``/``rounds_per_sec`` are the served
    world's, and the service-level numbers (proposals/sec, decision
    latency percentiles, dropped events) land in
    :attr:`~repro.bench.runner.BenchResult.extras`.  Load scenarios are
    never speedup-gated (there is no reference path to ratio against);
    their trend lives in BENCH_history.jsonl like everyone else's.
    """

    name: str
    family: str
    #: Concurrent client sessions (the load, not the world size).
    n: int
    description: str
    #: Builds fresh (spec, profile, config) per trial.
    make_load: Callable[[], tuple[ExperimentSpec, LoadProfile, ServiceConfig]]
    quick: bool = False
    gated: bool = False


# ----------------------------------------------------------------------
# Cluster worlds (Section 3 geometry: everyone within R1/2)
# ----------------------------------------------------------------------

def _cluster(protocol: Any, n: int, *, instances: int | None = None,
             rounds: int | None = None, adversary=None,
             rcf: int = 0, cluster_radius: float | None = None,
             shards: int | None = None) -> Callable[[], ExperimentSpec]:
    def make() -> ExperimentSpec:
        spec = ExperimentSpec(
            protocol=protocol,
            world=ClusterWorld(n=n, rcf=rcf, cluster_radius=cluster_radius),
            workload=WorkloadSpec(instances=instances, rounds=rounds),
            keep_trace=False,
            shards=shards,
        )
        if adversary is not None:
            spec = spec.override(environment__adversary=adversary())
        return spec
    return make


# ----------------------------------------------------------------------
# Deployed world (Section 4): a corridor of virtual nodes under load
# ----------------------------------------------------------------------

def _vi_grid(n_sites: int, replicas_per_vn: int,
             virtual_rounds: int) -> Callable[[], ExperimentSpec]:
    def make() -> ExperimentSpec:
        spacing = 6.0
        cols = max(1, int(math.isqrt(n_sites)))
        sites = [
            VNSite(i, Point((i % cols) * spacing, (i // cols) * spacing))
            for i in range(n_sites)
        ]
        devices = []
        for site in sites:
            for j in range(replicas_per_vn):
                angle = 2 * math.pi * j / replicas_per_vn + 0.5
                devices.append(DeviceSpec(mobility=Point(
                    site.location.x + 0.12 * math.cos(angle),
                    site.location.y + 0.12 * math.sin(angle),
                )))
        return ExperimentSpec(
            protocol=VIEmulation(
                programs={s.vn_id: CounterProgram() for s in sites},
            ),
            world=DeployedWorld(sites=tuple(sites), devices=tuple(devices)),
            workload=WorkloadSpec(virtual_rounds=virtual_rounds),
            keep_trace=False,
        )
    return make


# ----------------------------------------------------------------------
# Served worlds (repro.service) under seeded client populations
# ----------------------------------------------------------------------

def _svc(sessions: int, pattern: str, *, n: int = 24, instances: int = 60,
         proposals_per_session: int = 2, queue_limit: int = 1024,
         tick_interval: float = 0.0, ramp_s: float = 0.25,
         seed: int = 0, worlds: int = 1,
         ) -> Callable[[], tuple[ExperimentSpec, LoadProfile,
                                 ServiceConfig]]:
    def make() -> tuple[ExperimentSpec, LoadProfile, ServiceConfig]:
        spec = ExperimentSpec(
            protocol=CHA(),
            world=ClusterWorld(n=n),
            workload=WorkloadSpec(instances=instances),
            metrics=MetricsSpec(metrics=("rounds",),
                                invariants=("agreement", "validity")),
            keep_trace=False,
        )
        profile = LoadProfile(
            sessions=sessions, pattern=pattern,
            proposals_per_session=proposals_per_session,
            ramp_s=ramp_s, seed=seed, worlds=worlds,
        )
        config = ServiceConfig(queue_limit=queue_limit,
                               tick_interval=tick_interval,
                               decision_log_limit=32, worlds=worlds)
        return spec, profile, config
    return make


#: The benchmark matrix.  Round budgets are sized so each scenario runs
#: in roughly 0.1-1 s on the fast path — long enough to time reliably,
#: short enough that the full matrix (fast + reference) stays minutes.
ALL_SCENARIOS: tuple[BenchScenario | LoadScenario, ...] = (
    BenchScenario(
        name="cha-50", family="cha", n=50, quick=True,
        description="plain CHAP, 50-node cluster, 60 instances "
                    "(informational: the ~0.03s fast wall is too short "
                    "for a stable speedup ratio)",
        make_spec=_cluster(CHA(), 50, instances=60),
    ),
    BenchScenario(
        name="e8-cha-200", family="cha", n=200, quick=True, gated=True,
        description="E8 CHAP column at 200 nodes (600-round budget)",
        make_spec=_cluster(CHA(), 200, instances=200),
    ),
    BenchScenario(
        name="cha-400", family="cha", n=400, gated=True,
        description="plain CHAP, 400-node cluster",
        make_spec=_cluster(CHA(), 400, instances=60),
    ),
    BenchScenario(
        name="cha-1k-spread", family="cha", n=1000,
        description="1000-node spread-out ring (multi-cell grid; each "
                    "node hears only its neighbours) — the ROADMAP "
                    "scale-out world where the index is near-O(senders). "
                    "Informational: the ~10x ratio swings with world-"
                    "build overhead on the short 18-round run",
        make_spec=_cluster(CHA(), 1000, instances=6, cluster_radius=40.0),
    ),
    BenchScenario(
        name="cha-10k-shard", family="cha", n=10000, serial_baseline=True,
        description="10000-node spread-out ring on the sharded engine "
                    "(shards=4) vs its serial twin. Informational: "
                    "speedup_vs_serial needs >=4 real cores; on the "
                    "single-core CI class the workers time-slice one "
                    "CPU and the ratio sits below 1",
        make_spec=_cluster(CHA(), 10000, instances=6,
                           cluster_radius=126.0, shards=4),
    ),
    BenchScenario(
        name="cha-100k-shard", family="cha", n=100000, serial_baseline=True,
        description="100000-node spread-out ring on the sharded engine "
                    "(shards=4), 2 instances — the scale headliner. "
                    "Informational for the same reason as cha-10k-shard "
                    "(speedup_vs_serial needs real cores)",
        make_spec=_cluster(CHA(), 100000, instances=2,
                           cluster_radius=1260.0, shards=4),
    ),
    BenchScenario(
        name="e8-majority-200", family="majority-rsm", n=200, quick=True,
        gated=True,
        description="E8 majority-RSM column at 200 nodes (600-round budget)",
        make_spec=_cluster(MajorityRSM(), 200, rounds=600),
    ),
    BenchScenario(
        name="majority-400", family="majority-rsm", n=400, gated=True,
        description="majority RSM, 400-node cluster",
        make_spec=_cluster(MajorityRSM(), 400, rounds=500),
    ),
    BenchScenario(
        name="checkpoint-cha-100", family="checkpoint-cha", n=100, quick=True,
        description="checkpoint-CHA (fold-and-GC), 100-node cluster",
        make_spec=_cluster(
            CheckpointCHA(reducer=_count_reducer, initial_state=0),
            100, instances=80,
        ),
    ),
    BenchScenario(
        name="two-phase-cha-200", family="two-phase-cha", n=200,
        description="ablation A1 (no veto-2), 200-node cluster",
        make_spec=_cluster(TwoPhaseCHA(), 200, instances=120),
    ),
    BenchScenario(
        name="naive-rsm-50", family="naive-rsm", n=50,
        description="full-history strawman, 50-node cluster",
        make_spec=_cluster(NaiveRSM(), 50, instances=50),
    ),
    BenchScenario(
        name="cha-lossy-100", family="cha", n=100,
        description="CHAP under 10% seeded loss with rcf=120 (pre-"
                    "stabilisation adversary path)",
        make_spec=_cluster(
            CHA(), 100, instances=80, rcf=120,
            adversary=lambda: RandomLossAdversary(p_drop=0.10, seed=7),
        ),
    ),
    BenchScenario(
        name="vi-grid-64", family="vi", n=64, quick=True,
        description="VI emulation: 16-site grid, 4 replicas each "
                    "(phase-table engine vs the per-device reference "
                    "dispatch)",
        make_spec=_vi_grid(16, 4, virtual_rounds=30),
    ),
    BenchScenario(
        name="vi-grid-256", family="vi", n=256,
        description="VI emulation: 64-site grid, 4 replicas each — the "
                    "phase-table engine's scale row. Informational like "
                    "vi-grid-64: the ratio also folds in the slotted-"
                    "core and history switches, so it is recorded but "
                    "ungated until it proves stable across machine "
                    "classes",
        make_spec=_vi_grid(64, 4, virtual_rounds=15),
    ),
    LoadScenario(
        name="svc-smoke", family="service", n=200, quick=True,
        description="served 24-node CHAP world, 200-session flash crowd "
                    "(the CI service-load smoke)",
        make_load=_svc(200, "flash"),
    ),
    LoadScenario(
        name="svc-churn-500", family="service", n=500,
        description="served 24-node CHAP world, 500 churny sessions "
                    "(seeded reconnect after half the decisions)",
        make_load=_svc(500, "churn", instances=80,
                       proposals_per_session=3, seed=11),
    ),
    LoadScenario(
        name="svc-ramp-500", family="service", n=500,
        description="served 24-node CHAP world on a 2ms tick, 500 "
                    "sessions arriving across a 150ms ramp (open-loop "
                    "arrivals, closed-loop proposing)",
        make_load=_svc(500, "ramp", instances=100, tick_interval=0.002,
                       ramp_s=0.15, seed=5),
    ),
    LoadScenario(
        name="svc-flash-1k", family="service", n=1000,
        description="served 30-node CHAP world, a 1000-session flash "
                    "crowd all attached before round 1 — the "
                    "concurrency headliner (peak sessions == 1000)",
        make_load=_svc(1000, "flash", n=30, instances=100,
                       proposals_per_session=3, seed=7),
    ),
    LoadScenario(
        name="svc-multi-8x250", family="service", n=2000,
        description="8 served 24-node CHAP worlds on one loop, 250 "
                    "sessions flash-attached per world (2000 total); "
                    "per-world p99 decision latency in extras.per_world",
        make_load=_svc(2000, "flash", instances=40,
                       proposals_per_session=2, seed=13, worlds=8),
    ),
)

QUICK_SCENARIOS: tuple[BenchScenario | LoadScenario, ...] = tuple(
    s for s in ALL_SCENARIOS if s.quick
)


def scenario_by_name(name: str) -> BenchScenario | LoadScenario:
    for scenario in ALL_SCENARIOS:
        if scenario.name == name:
            return scenario
    known = ", ".join(s.name for s in ALL_SCENARIOS)
    raise KeyError(f"unknown bench scenario {name!r}; known: {known}")
