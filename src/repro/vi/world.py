"""The virtual-infrastructure world: deployment + execution harness.

:class:`VIWorld` assembles everything Section 4 needs — sites, programs,
the broadcast schedule, one regional contention manager per virtual node,
the radio simulator — and runs the emulation by whole virtual rounds,
recording per-virtual-node outcome colours for the availability and
consistency experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..contention import RegionalCM
from ..detectors import CollisionDetector
from ..errors import ConfigurationError
from ..geometry import Point
from ..net import (
    Adversary,
    CrashSchedule,
    MobilityModel,
    RadioSpec,
    Simulator,
)
from ..types import Color, NodeId, VirtualRound
from .client import ClientProgram
from .device import VIDevice
from .engine import VIRoundEngine, reference_vi_forced
from .phases import PhaseClock
from .program import VNProgram
from .schedule import Schedule, VNSite, build_schedule, verify_schedule


@dataclass
class VNRoundOutcome:
    """What happened to one virtual node in one virtual round."""

    virtual_round: VirtualRound
    #: Colour per replica device that finished the round's instance.
    colors: dict[NodeId, Color] = field(default_factory=dict)

    @property
    def live(self) -> bool:
        """The round made externally-visible progress: someone went green."""
        return any(c is Color.GREEN for c in self.colors.values())

    @property
    def emulated(self) -> bool:
        """At least one replica ran the round's agreement instance."""
        return bool(self.colors)


class VIWorld:
    """Builds and drives one virtual-infrastructure deployment."""

    def __init__(self, sites: list[VNSite], programs: dict[int, VNProgram],
                 *, r1: float = 1.0, r2: float = 1.5, rcf: int = 0,
                 adversary: Adversary | None = None,
                 detector: CollisionDetector | None = None,
                 crashes: CrashSchedule | None = None,
                 cm_stable_round: int = 0,
                 min_schedule_length: int = 1,
                 schedule: Schedule | None = None,
                 use_reference_history: bool | None = None,
                 use_reference_engine: bool | None = None,
                 use_reference_core: bool | None = None,
                 use_reference_vi: bool | None = None,
                 pool_payloads: bool = False) -> None:
        if set(programs) != {site.vn_id for site in sites}:
            raise ConfigurationError(
                "programs must be keyed exactly by the site vn_ids"
            )
        self.sites = list(sites)
        self.programs = dict(programs)
        self.use_reference_history = use_reference_history
        self.use_reference_core = use_reference_core
        if use_reference_vi is None:
            use_reference_vi = reference_vi_forced()
        #: Pin :meth:`run_virtual_rounds` to the seed per-device VI
        #: dispatch (one ``sim.step()`` per real round) instead of the
        #: phase-table engine (read per virtual round, so tests can
        #: flip it).  The sixth reference switch; see
        #: :mod:`repro.vi.engine`.
        self.use_reference_vi = use_reference_vi
        #: Reuse mutable wire payloads across virtual rounds.  Only safe
        #: on trace-free runs (the runner passes ``not keep_trace``).
        self.pool_payloads = pool_payloads
        self.region_radius = r1 / 4.0
        if schedule is None:
            schedule = build_schedule(sites, r1=r1, r2=r2,
                                      min_length=min_schedule_length)
        verify_schedule(schedule, sites, r1=r1, r2=r2)
        self.schedule = schedule
        self.clock = PhaseClock(schedule.length)
        # Inject schedule hints: programs may gate their emissions on
        # their own slot (see ScheduleAware) so that multi-replica
        # broadcasts of unscheduled nodes do not self-collide.
        for vn_id, program in self.programs.items():
            program.schedule_slot = schedule.slot_of(vn_id)
            program.schedule_period = schedule.length
        self.sim = Simulator(
            spec=RadioSpec(r1=r1, r2=r2, rcf=rcf),
            adversary=adversary,
            detector=detector,
            crashes=crashes,
            use_reference_engine=use_reference_engine,
        )
        for site in sites:
            self.sim.add_cm(f"vn{site.vn_id}", RegionalCM(
                location=site.location,
                region_radius=self.region_radius,
                locate=self.sim.locations.locate,
                tenure=2 * (schedule.length + 10),
                stable_round=cm_stable_round,
            ))
        self.devices: dict[NodeId, VIDevice] = {}
        #: Shared role-change counter (bumped by device housekeeping and
        #: :meth:`add_device`); the phase-table engine reuses a table
        #: across virtual rounds while it holds still.
        self.role_version: list[int] = [0]
        self.outcomes: dict[int, list[VNRoundOutcome]] = {
            site.vn_id: [] for site in sites
        }
        self._virtual_rounds_run = 0
        self._engine = VIRoundEngine(self)

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def add_device(self, mobility: MobilityModel | Point, *,
                   client: ClientProgram | None = None,
                   start_round: int = 0,
                   initially_active: bool | None = None) -> NodeId:
        """Register a device.

        ``initially_active`` defaults to True for devices present from
        round 0 (the deployment bootstraps virtual nodes from whatever is
        in their regions) and False for late arrivals, which must join.
        """
        if initially_active is None:
            initially_active = start_round == 0
        device_holder: list[VIDevice] = []

        def locate() -> Point:
            return self.sim.locations.locate(device_holder[0]._node_id)  # type: ignore[attr-defined]

        device = VIDevice(
            sites=self.sites,
            programs=self.programs,
            schedule=self.schedule,
            clock=self.clock,
            region_radius=self.region_radius,
            locate=locate,
            client=client,
            initially_active=initially_active,
            use_reference_history=self.use_reference_history,
            use_reference_core=self.use_reference_core,
            pool_payloads=self.pool_payloads,
            role_version=self.role_version,
        )
        device_holder.append(device)
        node_id = self.sim.add_node(device, mobility, start_round=start_round)
        device._node_id = node_id  # type: ignore[attr-defined]
        self.devices[node_id] = device
        self.role_version[0] += 1
        return node_id

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_virtual_rounds(self, count: int) -> None:
        """Run ``count`` whole virtual rounds, recording outcomes."""
        for _ in range(count):
            vr = self._virtual_rounds_run
            if self.use_reference_vi:
                for _ in range(self.clock.rounds_per_virtual_round):
                    self.sim.step()
            else:
                self._engine.run_virtual_round(vr)
            self._record_outcomes(vr)
            self._virtual_rounds_run += 1

    def _record_outcomes(self, vr: VirtualRound) -> None:
        # One pass over the devices, bucketed by virtual node (devices
        # iterate in node order, so each outcome's colour dict keeps the
        # same insertion order a per-site scan would produce).
        colors_by_vn: dict[int, dict[NodeId, Color]] = {}
        for node_id, device in self.devices.items():
            replica = device.replica
            if replica is None:
                continue
            color = replica.round_colors.get(vr)
            if color is not None:
                colors_by_vn.setdefault(
                    replica.site.vn_id, {})[node_id] = color
        for site in self.sites:
            colors = colors_by_vn.get(site.vn_id)
            outcome = (VNRoundOutcome(virtual_round=vr) if colors is None
                       else VNRoundOutcome(virtual_round=vr, colors=colors))
            self.outcomes[site.vn_id].append(outcome)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def virtual_rounds_run(self) -> int:
        return self._virtual_rounds_run

    def replicas_of(self, vn_id: int) -> dict[NodeId, Any]:
        """Current active replica runtimes emulating ``vn_id``."""
        return {
            node_id: device.replica
            for node_id, device in self.devices.items()
            if device.replica is not None
            and device.replica.site.vn_id == vn_id
            and self.sim.alive(node_id)
        }

    def vn_states(self, vn_id: int) -> dict[NodeId, Any]:
        """Virtual-node state as derived by each active replica."""
        return {
            node_id: replica.vn_state()
            for node_id, replica in self.replicas_of(vn_id).items()
        }

    def availability(self, vn_id: int) -> float:
        """Fraction of executed virtual rounds in which ``vn_id`` was live."""
        outcomes = self.outcomes[vn_id]
        if not outcomes:
            return 0.0
        return sum(o.live for o in outcomes) / len(outcomes)

    def emulation_gaps(self, vn_id: int) -> int:
        """Virtual rounds in which nobody emulated the node at all."""
        return sum(not o.emulated for o in self.outcomes[vn_id])

    def check_replica_consistency(self, vn_id: int) -> None:
        """Assert all replicas with the same checkpoint agree on VN state.

        Replicas whose checkpoints are at the same instance must hold
        identical folded states (CHA agreement + deterministic program).
        Raises ``AssertionError`` with context on violation.
        """
        by_checkpoint: dict[int, set] = {}
        for node_id, replica in self.replicas_of(vn_id).items():
            out = replica.core.current_checkpoint_output()
            by_checkpoint.setdefault(out.checkpoint_instance, set()).add(
                (out.checkpoint_state,)
            )
        for anchor, states in by_checkpoint.items():
            assert len(states) == 1, (
                f"vn {vn_id}: replicas at checkpoint {anchor} disagree: {states}"
            )
