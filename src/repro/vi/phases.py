"""The eleven-phase structure of one emulated virtual round (Section 4.3).

One virtual round costs ``s + 12`` real rounds, where ``s`` is the
schedule length (DESIGN.md §5 documents the accounting):

====================  ==================  =========================
phase                 real-round offsets  purpose
====================  ==================  =========================
CLIENT                0                   clients broadcast
VN                    1                   replicas broadcast VN msgs
SCHED_BALLOT          2                   scheduled CHA, ballot
SCHED_VETO1           3                   scheduled CHA, veto-1
SCHED_VETO2           4                   scheduled CHA, veto-2
UNSCHED_BALLOT        5 .. 5+s+1          unscheduled CHA ballot,
                                          one slot per schedule
                                          colour + 2 guard slots
UNSCHED_VETO1         s+7                 unscheduled CHA, veto-1
UNSCHED_VETO2         s+8                 unscheduled CHA, veto-2
JOIN                  s+9                 join requests
JOIN_ACK              s+10                state transfer
RESET                 s+11                liveness pings / reset
====================  ==================  =========================

The paper counts *eleven* logical phases; the unscheduled ballot phase is
"instantiated using s + 2 rounds (instead of 1 round)" (Section 4.3),
which is where the schedule-length dependence of the per-virtual-round
overhead comes from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..types import Round, VirtualRound


class Phase(enum.Enum):
    """Logical phase of the emulation protocol."""

    CLIENT = "client"
    VN = "vn"
    SCHED_BALLOT = "sched-ballot"
    SCHED_VETO1 = "sched-veto1"
    SCHED_VETO2 = "sched-veto2"
    UNSCHED_BALLOT = "unsched-ballot"
    UNSCHED_VETO1 = "unsched-veto1"
    UNSCHED_VETO2 = "unsched-veto2"
    JOIN = "join"
    JOIN_ACK = "join-ack"
    RESET = "reset"


#: Number of phases in the protocol (the paper's "total of eleven phases").
PHASE_COUNT = len(Phase)


@dataclass(frozen=True)
class PhasePosition:
    """Where a real round falls inside the virtual-round structure."""

    virtual_round: VirtualRound
    phase: Phase
    #: Slot index inside the UNSCHED_BALLOT phase (0..s+1); 0 elsewhere.
    slot: int


class PhaseClock:
    """Maps real rounds to (virtual round, phase, slot) positions."""

    def __init__(self, schedule_length: int) -> None:
        if schedule_length < 1:
            raise ConfigurationError("schedule length must be at least 1")
        self.s = schedule_length
        #: Real rounds consumed per virtual round ("constant overhead,
        #: depending only on the density of the virtual node deployment").
        self.rounds_per_virtual_round = schedule_length + 12

    def position(self, r: Round) -> PhasePosition:
        vr, offset = divmod(r, self.rounds_per_virtual_round)
        s = self.s
        if offset == 0:
            return PhasePosition(vr, Phase.CLIENT, 0)
        if offset == 1:
            return PhasePosition(vr, Phase.VN, 0)
        if offset == 2:
            return PhasePosition(vr, Phase.SCHED_BALLOT, 0)
        if offset == 3:
            return PhasePosition(vr, Phase.SCHED_VETO1, 0)
        if offset == 4:
            return PhasePosition(vr, Phase.SCHED_VETO2, 0)
        if offset < 5 + s + 2:
            return PhasePosition(vr, Phase.UNSCHED_BALLOT, offset - 5)
        if offset == s + 7:
            return PhasePosition(vr, Phase.UNSCHED_VETO1, 0)
        if offset == s + 8:
            return PhasePosition(vr, Phase.UNSCHED_VETO2, 0)
        if offset == s + 9:
            return PhasePosition(vr, Phase.JOIN, 0)
        if offset == s + 10:
            return PhasePosition(vr, Phase.JOIN_ACK, 0)
        return PhasePosition(vr, Phase.RESET, 0)

    def offset_of(self, phase: Phase, slot: int = 0) -> int:
        """Inverse of the phase part of :meth:`position`: the real-round
        offset (within a virtual round) at which ``(phase, slot)`` runs.

        ``slot`` is only meaningful for :attr:`Phase.UNSCHED_BALLOT`
        (``0 .. s+1``) and must be 0 elsewhere, mirroring the ``slot``
        field :meth:`position` produces.
        """
        s = self.s
        if phase is not Phase.UNSCHED_BALLOT:
            if slot != 0:
                raise ConfigurationError(f"phase {phase.value} has no slots")
        elif not 0 <= slot <= s + 1:
            raise ConfigurationError(
                f"UNSCHED_BALLOT slot {slot} outside 0..{s + 1}")
        offsets = {
            Phase.CLIENT: 0,
            Phase.VN: 1,
            Phase.SCHED_BALLOT: 2,
            Phase.SCHED_VETO1: 3,
            Phase.SCHED_VETO2: 4,
            Phase.UNSCHED_BALLOT: 5 + slot,
            Phase.UNSCHED_VETO1: s + 7,
            Phase.UNSCHED_VETO2: s + 8,
            Phase.JOIN: s + 9,
            Phase.JOIN_ACK: s + 10,
            Phase.RESET: s + 11,
        }
        return offsets[phase]

    def round_of(self, pos: PhasePosition) -> Round:
        """Inverse of :meth:`position`: the real round at ``pos``."""
        return (pos.virtual_round * self.rounds_per_virtual_round
                + self.offset_of(pos.phase, pos.slot))

    def positions_for(self, vr: VirtualRound) -> list[PhasePosition]:
        """All ``s + 12`` positions of virtual round ``vr``, in offset
        order — one shared :class:`PhasePosition` per real round, so a
        batched caller allocates s+12 positions per virtual round instead
        of one per device per round."""
        first = self.first_round_of(vr)
        return [self.position(first + offset)
                for offset in range(self.rounds_per_virtual_round)]

    def first_round_of(self, vr: VirtualRound) -> Round:
        """The real round at which virtual round ``vr`` begins."""
        return vr * self.rounds_per_virtual_round

    def rounds_for(self, virtual_rounds: int) -> int:
        """Real rounds needed to emulate ``virtual_rounds`` full rounds."""
        return virtual_rounds * self.rounds_per_virtual_round
