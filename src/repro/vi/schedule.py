"""Virtual-node broadcast schedules (Section 4.1).

A schedule assigns every virtual node one slot in ``[0, s-1]`` such that
no two *conflicting* virtual nodes share a slot, where ``v`` and ``v'``
conflict when ``|ℓv − ℓv'| <= R1 + 2*R2`` (the paper requires scheduled
pairs to be strictly farther apart than that).  A virtual node is
*scheduled* in virtual round ``r`` when ``slot(v) == r mod s``.

Because virtual nodes are static, the schedule is computed once,
centrally, by colouring the conflict graph — exactly the construction the
paper suggests ("based, say, on a coloring of the neighbor graph").
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..errors import ScheduleError
from ..geometry import Point
from ..types import VirtualRound


@dataclass(frozen=True)
class VNSite:
    """A virtual node's identity: an id and a fixed home location."""

    vn_id: int
    location: Point


class Schedule:
    """A complete, non-conflicting slot assignment for a set of sites."""

    def __init__(self, slots: dict[int, int], length: int) -> None:
        if length < 1:
            raise ScheduleError("schedule length must be at least 1")
        for vn_id, slot in slots.items():
            if not 0 <= slot < length:
                raise ScheduleError(
                    f"virtual node {vn_id} assigned slot {slot} outside "
                    f"0..{length - 1}"
                )
        self._slots = dict(slots)
        self.length = length

    def slot_of(self, vn_id: int) -> int:
        return self._slots[vn_id]

    def is_scheduled(self, vn_id: int, vr: VirtualRound) -> bool:
        """Whether ``vn_id`` is the scheduled node in virtual round ``vr``."""
        return self._slots[vn_id] == vr % self.length

    def scheduled_in(self, vr: VirtualRound) -> frozenset[int]:
        slot = vr % self.length
        return frozenset(v for v, s in self._slots.items() if s == slot)

    def __len__(self) -> int:
        return self.length

    def __contains__(self, vn_id: int) -> bool:
        return vn_id in self._slots

    @property
    def vn_ids(self) -> frozenset[int]:
        return frozenset(self._slots)


def conflict_graph(sites: list[VNSite], *, r1: float, r2: float) -> nx.Graph:
    """The neighbour graph: an edge when two sites may interfere.

    Two virtual nodes conflict when their home locations are within
    ``R1 + 2*R2``: a broadcast by (a replica of) one can then reach or
    jam receivers of the other, so they must not share a slot.
    """
    g = nx.Graph()
    g.add_nodes_from(site.vn_id for site in sites)
    threshold = r1 + 2.0 * r2
    for i, a in enumerate(sites):
        for b in sites[i + 1:]:
            if a.location.within(b.location, threshold):
                g.add_edge(a.vn_id, b.vn_id)
    return g


def build_schedule(sites: list[VNSite], *, r1: float, r2: float,
                   min_length: int = 1) -> Schedule:
    """Colour the conflict graph into a complete, non-conflicting schedule.

    Uses a deterministic largest-first greedy colouring; the schedule
    length ``s`` is the number of colours used (at least ``min_length``).
    The length depends only on the *density* of the deployment, which is
    precisely the paper's overhead claim (Section 1.4).
    """
    if not sites:
        raise ScheduleError("cannot build a schedule for zero sites")
    ids = [site.vn_id for site in sites]
    if len(set(ids)) != len(ids):
        raise ScheduleError("duplicate virtual-node ids in site list")
    g = conflict_graph(sites, r1=r1, r2=r2)
    coloring = nx.coloring.greedy_color(g, strategy="largest_first")
    length = max(max(coloring.values()) + 1, min_length)
    return Schedule(coloring, length)


def verify_schedule(schedule: Schedule, sites: list[VNSite], *,
                    r1: float, r2: float) -> None:
    """Raise :class:`ScheduleError` unless complete and non-conflicting."""
    site_ids = {site.vn_id for site in sites}
    missing = site_ids - schedule.vn_ids
    if missing:
        raise ScheduleError(f"schedule is incomplete: missing {sorted(missing)}")
    threshold = r1 + 2.0 * r2
    by_id = {site.vn_id: site for site in sites}
    for i, a in enumerate(sites):
        for b in sites[i + 1:]:
            if (schedule.slot_of(a.vn_id) == schedule.slot_of(b.vn_id)
                    and a.location.within(b.location, threshold)):
                raise ScheduleError(
                    f"conflicting virtual nodes {a.vn_id} and {b.vn_id} share "
                    f"slot {schedule.slot_of(a.vn_id)}"
                )
    # Completeness in the paper's sense: exactly one slot each — holds by
    # construction of the slot map (a dict); double-check id coverage.
    assert by_id.keys() == set(site_ids)
