"""The physical device process: client + emulator + join state machine.

One :class:`VIDevice` is one mobile node of the underlying network.  Per
round it consults the phase clock and dispatches to up to three roles:

* a **client runtime** (if user code is installed) — broadcasts in CLIENT
  phases and observes CLIENT + VN phases;
* a **replica runtime** — when the device is inside some virtual node's
  emulation region (within ``R1/4`` of its home location) and has
  completed the join protocol (or was present at deployment);
* a **joiner state machine** — when the device is in-region but not yet
  active: JOIN request → JOIN_ACK adoption, or (on silence) the RESET
  probe and rebirth of Section 4.3.

Role changes (entering/leaving regions, activating a join) happen only at
virtual-round boundaries (the CLIENT phase), which keeps the CHA instance
alignment invariant trivial to maintain.
"""

from __future__ import annotations

import enum
from typing import Any, Callable

from ..geometry import Point
from ..net.messages import Message
from ..net.node import Process
from ..types import Round, VirtualRound
from .client import ClientProgram, ClientRuntime
from .payloads import AlivePing, ClientMsg, JoinAck, JoinRequest, VNMsg
from .phases import Phase, PhaseClock, PhasePosition
from .program import VNProgram
from .replica import ReplicaRuntime
from .schedule import Schedule, VNSite


#: Shared empty decoded-payload sequence for silent rounds (read-only:
#: the replica/joiner/client observers only ever iterate payload lists).
_NO_PAYLOADS: tuple = ()


class JoinState(enum.Enum):
    IDLE = "idle"
    WANT_JOIN = "want-join"        # in-region, will request when scheduled
    AWAIT_ACK = "await-ack"        # request sent this virtual round
    AWAIT_RESET = "await-reset"    # ack silent; probing for life


class VIDevice(Process):
    """A mobile device participating in the virtual-infrastructure world."""

    def __init__(self, *, sites: list[VNSite],
                 programs: dict[int, VNProgram],
                 schedule: Schedule, clock: PhaseClock,
                 region_radius: float,
                 locate: Callable[[], Point],
                 client: ClientProgram | None = None,
                 initially_active: bool = False,
                 use_reference_history: bool | None = None,
                 use_reference_core: bool | None = None,
                 pool_payloads: bool = False,
                 role_version: list[int] | None = None) -> None:
        self.sites = {site.vn_id: site for site in sites}
        self.programs = programs
        self.schedule = schedule
        self.clock = clock
        self.region_radius = region_radius
        self.use_reference_history = use_reference_history
        self.use_reference_core = use_reference_core
        #: Reuse one mutable wire payload per payload kind instead of
        #: allocating fresh ones each virtual round.  Only safe when the
        #: run keeps no trace: receivers extract values immediately and
        #: never retain the payload objects, but a retained trace would
        #: alias every round's broadcasts to the same (mutated) object.
        self.pool_payloads = pool_payloads
        self._pooled_client_msg: ClientMsg | None = None
        #: Shared counter box bumped whenever this device's table-visible
        #: roles (active replica, join target) change, so the phase-table
        #: engine can reuse a table across virtual rounds in steady state.
        self._role_version = role_version
        self._locate = locate
        self.client = ClientRuntime(client) if client is not None else None
        self.replica: ReplicaRuntime | None = None
        self._initially_active = initially_active
        self._join_state = JoinState.IDLE
        self._join_target: int | None = None
        self._pending_replica: ReplicaRuntime | None = None
        #: Memo for the boundary-housekeeping site scan: nearest-in-region
        #: is a pure function of the device's position, and positions are
        #: stationary (or slow) in most worlds, so the full per-site
        #: distance sweep is only repeated when the device actually moved.
        self._nearest_cache: tuple[Point, VNSite | None] | None = None
        #: (virtual round, event) log for join/reset experiments.
        self.events: list[tuple[VirtualRound, str]] = []

    # ------------------------------------------------------------------
    # Region / role management (virtual-round boundaries)
    # ------------------------------------------------------------------

    def _nearest_site_in_region(self) -> VNSite | None:
        try:
            here = self._locate()
        except KeyError:
            return None
        cached = self._nearest_cache
        if cached is not None and cached[0] == here:
            return cached[1]
        best: VNSite | None = None
        best_dist = None
        for site in self.sites.values():
            dist = site.location.distance_to(here)
            if dist <= self.region_radius and (best_dist is None or
                                               (dist, site.vn_id) < (best_dist, best.vn_id)):
                best, best_dist = site, dist
        self._nearest_cache = (here, best)
        return best

    def _boundary_housekeeping(self, vr: VirtualRound) -> None:
        roles_before = (self.replica, self._join_target)
        target = self._nearest_site_in_region()

        # Activate a join/reset decided at the end of the previous round.
        if self._pending_replica is not None:
            if target is not None and target.vn_id == self._pending_replica.site.vn_id:
                self.replica = self._pending_replica
                self.events.append((vr, f"active:{target.vn_id}"))
            self._pending_replica = None
            self._join_state = JoinState.IDLE
            self._join_target = None

        # Deployment-time activation: devices present in a region at the
        # first virtual round start as live replicas with fresh state.
        if vr == 0 and self._initially_active and target is not None \
                and self.replica is None:
            self.replica = ReplicaRuntime(
                target, self.programs[target.vn_id], self.schedule,
                use_reference_history=self.use_reference_history,
                use_reference_core=self.use_reference_core,
                pool_payloads=self.pool_payloads,
            )
            self.events.append((0, f"deployed:{target.vn_id}"))

        # Leaving a region tears the replica down.
        if self.replica is not None and (
                target is None or target.vn_id != self.replica.site.vn_id):
            self.events.append((vr, f"left:{self.replica.site.vn_id}"))
            self.replica = None

        # Entering a region starts (or retargets) the join protocol; being
        # active or out of all regions cancels any join in progress.
        if self.replica is None and target is not None:
            if self._join_target != target.vn_id:
                self._join_target = target.vn_id
                self._join_state = JoinState.WANT_JOIN
            elif self._join_state is not JoinState.IDLE:
                # A probe left hanging from last round restarts cleanly.
                self._join_state = JoinState.WANT_JOIN
        else:
            self._join_state = JoinState.IDLE
            self._join_target = None

        if self._role_version is not None and \
                (self.replica, self._join_target) != roles_before:
            self._role_version[0] += 1

    # ------------------------------------------------------------------
    # Process interface
    # ------------------------------------------------------------------

    def contend(self, r: Round) -> str | None:
        if self.replica is not None:
            return f"vn{self.replica.site.vn_id}"
        return None

    def send(self, r: Round, active: bool) -> Any | None:
        return self.send_at(self.clock.position(r), active)

    def send_at(self, pos: PhasePosition, active: bool) -> Any | None:
        """Send step with the phase position already resolved.

        The phase-table engine (:mod:`repro.vi.engine`) computes each
        round's position once for all devices and enters here; the
        per-device :meth:`send` entrypoint resolves it per call.
        """
        if pos.phase is Phase.CLIENT:
            self._boundary_housekeeping(pos.virtual_round)
            out = None
            if self.client is not None:
                payload = self.client.begin_virtual_round(pos.virtual_round)
                if payload is not None:
                    out = self._client_msg(pos.virtual_round, payload)
            if self.replica is not None:
                self.replica.send_for(pos, False)  # scratch reset only
            return out

        joiner_out = self._joiner_send(pos)
        if joiner_out is not None:
            return joiner_out
        if self.replica is not None:
            return self.replica.send_for(pos, active)
        return None

    def _client_msg(self, vr: VirtualRound, payload: Any) -> ClientMsg:
        if not self.pool_payloads:
            return ClientMsg(vr, payload)
        msg = self._pooled_client_msg
        if msg is None:
            msg = self._pooled_client_msg = ClientMsg(vr, payload)
        else:
            object.__setattr__(msg, "virtual_round", vr)
            object.__setattr__(msg, "payload", payload)
        return msg

    def deliver(self, r: Round, messages: tuple[Message, ...],
                collision: bool) -> None:
        self.deliver_at(self.clock.position(r),
                        [m.payload for m in messages], collision)

    def deliver_batch(self, r: Round, messages: tuple[Message, ...],
                      collision: bool, batch) -> None:
        """Batched delivery: silent rounds (the common case away from a
        device's own phase slots) share one empty payload sequence
        instead of building a fresh list per receiver."""
        payloads = [m.payload for m in messages] if messages else _NO_PAYLOADS
        self.deliver_at(self.clock.position(r), payloads, collision)

    def deliver_at(self, pos: PhasePosition, payloads, collision: bool) -> None:
        """Deliver step with the phase position already resolved (the
        phase-table engine's entrypoint; see :meth:`send_at`)."""
        if self.client is not None:
            if pos.phase is Phase.CLIENT:
                self.client.observe_client_phase(
                    [p.payload for p in payloads if isinstance(p, ClientMsg)],
                    collision,
                )
            elif pos.phase is Phase.VN:
                self.client.observe_vn_phase(
                    [(p.vn_id, p.payload) for p in payloads if isinstance(p, VNMsg)],
                    collision,
                )
        if self.replica is not None:
            self.replica.deliver_for(pos, payloads, collision)
        else:
            self._joiner_deliver(pos, payloads, collision)

    # ------------------------------------------------------------------
    # Join state machine
    # ------------------------------------------------------------------

    def _target_scheduled(self, vr: VirtualRound) -> bool:
        return (self._join_target is not None
                and self.schedule.is_scheduled(self._join_target, vr))

    def _joiner_send(self, pos: PhasePosition) -> Any | None:
        if self.replica is not None or self._join_target is None:
            return None
        if pos.phase is Phase.JOIN and self._join_state is JoinState.WANT_JOIN \
                and self._target_scheduled(pos.virtual_round):
            self._join_state = JoinState.AWAIT_ACK
            self.events.append((pos.virtual_round, f"join-req:{self._join_target}"))
            return JoinRequest(self._join_target, pos.virtual_round)
        return None

    def _joiner_deliver(self, pos: PhasePosition, payloads: list[Any],
                        collision: bool) -> None:
        if self._join_target is None:
            return
        vn = self._join_target
        vr = pos.virtual_round

        if pos.phase is Phase.JOIN_ACK and self._join_state is JoinState.AWAIT_ACK:
            acks = [p for p in payloads if isinstance(p, JoinAck) and p.vn_id == vn]
            if acks:
                self._pending_replica = ReplicaRuntime(
                    self.sites[vn], self.programs[vn], self.schedule,
                    snapshot=acks[0].snapshot,
                    use_reference_history=self.use_reference_history,
                    use_reference_core=self.use_reference_core,
                    pool_payloads=self.pool_payloads,
                )
                self.events.append((vr, f"acked:{vn}"))
            elif collision:
                # Someone answered but it was lost: the node is alive.
                self._join_state = JoinState.WANT_JOIN
                self.events.append((vr, f"ack-collision:{vn}"))
            else:
                self._join_state = JoinState.AWAIT_RESET
            return

        if pos.phase is Phase.RESET and self._join_state is JoinState.AWAIT_RESET:
            alive = collision or any(
                isinstance(p, AlivePing) and p.vn_id == vn for p in payloads
            )
            if alive:
                self._join_state = JoinState.WANT_JOIN
                self.events.append((vr, f"reset-abort:{vn}"))
            else:
                # Total silence: the virtual node is dead.  Reinitialise it
                # ("beginning the emulation anew", Section 4.3), anchored
                # at the instance for the *next* virtual round.
                self._pending_replica = ReplicaRuntime(
                    self.sites[vn], self.programs[vn], self.schedule,
                    reset_at=vr + 1,
                    use_reference_history=self.use_reference_history,
                    use_reference_core=self.use_reference_core,
                    pool_payloads=self.pool_payloads,
                )
                self.events.append((vr, f"reset:{vn}"))
            return
