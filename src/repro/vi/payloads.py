"""Wire payloads of the emulation protocol.

Every payload is tagged with the phase family it belongs to and — except
client messages — the virtual node it concerns, so that the eleven-phase
multiplexing can filter receptions.  CHA ballots/vetoes reuse the core
payload types with ``tag=("vn", vn_id)``.

All payloads except :class:`JoinAck` are constant-size in the paper's
accounting.  The join-ack carries a state snapshot; its size is a
measured quantity (experiment E11), matching Section 5's open question
(3) "reducing the cost of state transfer".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..types import VirtualRound


@dataclass(frozen=True, slots=True)
class ClientMsg:
    """A client's broadcast for one virtual round (CLIENT phase)."""

    virtual_round: VirtualRound
    payload: Any


@dataclass(frozen=True, slots=True)
class VNMsg:
    """A virtual node's broadcast, sent by a replica (VN phase)."""

    vn_id: int
    virtual_round: VirtualRound
    payload: Any


@dataclass(frozen=True, slots=True)
class JoinRequest:
    """A newcomer asking the emulators of ``vn_id`` for the state (JOIN)."""

    vn_id: int
    virtual_round: VirtualRound


@dataclass(frozen=True)
class JoinAck:
    """State transfer to joiners (JOIN_ACK phase).

    ``snapshot`` is the emulator state bundle (CHA core + virtual-round
    bookkeeping).  Not constant-size; see experiment E11.
    """

    vn_id: int
    virtual_round: VirtualRound
    snapshot: dict


@dataclass(frozen=True, slots=True)
class AlivePing:
    """An active emulator signalling liveness in the RESET phase."""

    vn_id: int
    virtual_round: VirtualRound
