"""The emulator replica: one virtual node emulated on one device.

A :class:`ReplicaRuntime` exists only while its device is *active* in the
emulation (it has completed the join protocol, or was present at
deployment).  It embeds a :class:`~repro.core.checkpoint.CheckpointChaCore`
whose reducer is the virtual-node program's transition function — so the
CHA checkpoint *is* the virtual node's state — and drives it through the
eleven-phase structure of :mod:`repro.vi.phases`.

Alignment invariant: CHA instance ``k`` decides virtual round ``k - 1``
(instances are 1-based, virtual rounds 0-based).  At the CLIENT phase of
virtual round ``vr`` an active replica's core satisfies ``core.k == vr``.

Externally visible actions are gated on green (Section 3.3): a replica
offers a VN-phase broadcast only when its most recent instance was green,
so a message computed from a chain that later loses the agreement can
never be delivered as the virtual node's word.  (During stable operation
every instance is green and the virtual node speaks every round.)
"""

from __future__ import annotations

from typing import Any

from ..core.ballot import BallotPayload, VetoPayload, canonical_key
from ..core.checkpoint import CheckpointChaCore
from ..core.slotted import SlottedCheckpointChaCore, reference_core_forced
from ..types import BOTTOM, Color, Instance, VirtualRound
from .payloads import AlivePing, ClientMsg, JoinAck, JoinRequest, VNMsg
from .phases import Phase, PhasePosition
from .program import VNProgram, VirtualObservation
from .schedule import Schedule, VNSite


def observation_from_value(value: Any) -> VirtualObservation:
    """Decode an agreed proposal value into the VN's observation.

    ``BOTTOM`` (an undecided instance) becomes the bare collision of
    Section 3.3.
    """
    if value is BOTTOM:
        return VirtualObservation.unknown()
    messages, collision, _vn_sent = value
    return VirtualObservation(tuple(messages), collision)


class ReplicaRuntime:
    """Emulates virtual node ``site.vn_id`` on a single device."""

    def __init__(self, site: VNSite, program: VNProgram, schedule: Schedule,
                 *, snapshot: dict | None = None,
                 reset_at: Instance | None = None,
                 use_reference_history: bool | None = None,
                 use_reference_core: bool | None = None,
                 pool_payloads: bool = False) -> None:
        self.site = site
        self.program = program
        self.schedule = schedule
        self.tag = ("vn", site.vn_id)
        #: Pool VI wire payloads (and the core's ballot/veto payloads)
        #: across virtual rounds.  Trace-free runs only: receivers
        #: extract values and never retain the payload objects.
        self.pool_payloads = pool_payloads
        self._pooled_vn_msg: VNMsg | None = None
        if use_reference_core is None:
            use_reference_core = reference_core_forced()
        if use_reference_core:
            # The reference core has no pooled mode: its seed behaviour
            # (fresh payloads every round) stays verbatim.
            self.core = CheckpointChaCore(
                propose=self._propose,
                reducer=self._reduce,
                initial_state=program.init_state(),
                tag=self.tag,
                use_reference_history=use_reference_history,
            )
        else:
            self.core = SlottedCheckpointChaCore(
                propose=self._propose,
                reducer=self._reduce,
                initial_state=program.init_state(),
                tag=self.tag,
                use_reference_history=use_reference_history,
                pool_payloads=pool_payloads,
            )
        if snapshot is not None and reset_at is not None:
            raise ValueError("pass either a snapshot or a reset anchor, not both")
        if snapshot is not None:
            self.core.restore(snapshot)
        elif reset_at is not None:
            self.core.reset_to(reset_at, program.init_state())
        #: Per-virtual-round outcome colours (availability metric).
        self.round_colors: dict[VirtualRound, Color] = {}
        self._reset_scratch()

    # ------------------------------------------------------------------
    # Virtual-node state derivation
    # ------------------------------------------------------------------

    def _reduce(self, state, k, value):
        return self.program.step(state, k - 1, observation_from_value(value))

    def vn_state(self) -> Any:
        """The virtual node's state after all instances this chain covers."""
        out = self.core.current_checkpoint_output()
        state = out.checkpoint_state
        for k in range(self.core.checkpoint_instance + 1, self.core.k + 1):
            state = self._reduce(state, k, out.suffix(k))
        return state

    def vn_message(self, vr: VirtualRound) -> Any | None:
        """The message the virtual node would broadcast in round ``vr``.

        ``None`` unless the replica's view is *known agreed*: either no
        round has completed yet (the deployment state is agreed by
        definition) or the last instance was green.
        """
        if self.core.k != vr:
            return None  # stale or misaligned: never speak for the VN
        if vr > self.core.checkpoint_instance and \
                self.core.color_of(self.core.k) is not Color.GREEN:
            return None
        return self.program.emit(self.vn_state(), vr)

    # ------------------------------------------------------------------
    # Proposal assembly
    # ------------------------------------------------------------------

    def _reset_scratch(self) -> None:
        self._obs: list[Any] = []
        self._obs_collision = False
        self._vn_sent = False
        self._emitting: Any | None = None
        self._join_activity = False

    def _propose(self, k: Instance):
        messages = tuple(sorted(self._obs, key=canonical_key))
        return (messages, self._obs_collision, self._vn_sent)

    # ------------------------------------------------------------------
    # Phase handlers (called by the owning device)
    # ------------------------------------------------------------------

    def _make_vn_msg(self, vn: int, vr: VirtualRound, message: Any) -> VNMsg:
        if not self.pool_payloads:
            return VNMsg(vn, vr, message)
        msg = self._pooled_vn_msg
        if msg is None:
            msg = self._pooled_vn_msg = VNMsg(vn, vr, message)
        else:
            object.__setattr__(msg, "virtual_round", vr)
            object.__setattr__(msg, "payload", message)
        return msg

    def send_for(self, pos: PhasePosition, active: bool) -> Any | None:
        vn = self.site.vn_id
        vr = pos.virtual_round
        scheduled = self.schedule.is_scheduled(vn, vr)
        phase = pos.phase

        if phase is Phase.CLIENT:
            self._reset_scratch()
            return None

        if phase is Phase.VN:
            message = self.vn_message(vr)
            if message is None:
                return None
            # Scheduled VN: only the contention-manager leader speaks.
            # Unscheduled VN choosing to ignore its schedule: every
            # replica speaks (the paper's counterintuitive rule) —
            # the resulting virtual collision is the honest outcome.
            if scheduled and not active:
                return None
            self._vn_sent = True
            self._emitting = message
            return self._make_vn_msg(vn, vr, message)

        if phase is Phase.SCHED_BALLOT:
            if not scheduled:
                return None
            return self.core.begin_instance_send(active)

        if phase is Phase.SCHED_VETO1:
            return self.core.veto1_payload() if scheduled else None

        if phase is Phase.SCHED_VETO2:
            return self.core.veto2_payload() if scheduled else None

        if phase is Phase.UNSCHED_BALLOT:
            if scheduled or pos.slot != self.schedule.slot_of(vn):
                return None
            return self.core.begin_instance_send(active)

        if phase is Phase.UNSCHED_VETO1:
            return None if scheduled else self.core.veto1_payload()

        if phase is Phase.UNSCHED_VETO2:
            return None if scheduled else self.core.veto2_payload()

        if phase is Phase.JOIN_ACK:
            # Conditions of Section 4.3: already joined (we exist), join
            # activity detected, contention-manager active, VN scheduled.
            if scheduled and active and self._join_activity:
                return JoinAck(vn, vr, self.core.snapshot())
            return None

        if phase is Phase.RESET:
            if self._join_activity:
                return AlivePing(vn, vr)
            return None

        return None

    def deliver_for(self, pos: PhasePosition, payloads: list[Any],
                    collision: bool) -> None:
        vn = self.site.vn_id
        vr = pos.virtual_round
        scheduled = self.schedule.is_scheduled(vn, vr)
        phase = pos.phase

        if phase is Phase.CLIENT:
            for p in payloads:
                if isinstance(p, ClientMsg):
                    self._obs.append(("cl", p.payload))
            self._obs_collision = self._obs_collision or collision
            return

        if phase is Phase.VN:
            for p in payloads:
                if isinstance(p, VNMsg):
                    if p.vn_id == vn:
                        self._vn_sent = True
                    else:
                        self._obs.append(("vn", p.vn_id, p.payload))
            self._obs_collision = self._obs_collision or collision
            return

        if phase is Phase.SCHED_BALLOT and scheduled:
            self._on_ballot(payloads, collision)
            return
        if phase is Phase.SCHED_VETO1 and scheduled:
            self._on_veto(payloads, collision, which=1)
            return
        if phase is Phase.SCHED_VETO2 and scheduled:
            self._on_veto(payloads, collision, which=2, vr=vr)
            return

        if phase is Phase.UNSCHED_BALLOT and not scheduled:
            if pos.slot == self.schedule.slot_of(vn):
                self._on_ballot(payloads, collision)
            return
        if phase is Phase.UNSCHED_VETO1 and not scheduled:
            self._on_veto(payloads, collision, which=1)
            return
        if phase is Phase.UNSCHED_VETO2 and not scheduled:
            self._on_veto(payloads, collision, which=2, vr=vr)
            return

        if phase is Phase.JOIN:
            saw_request = any(
                isinstance(p, JoinRequest) and p.vn_id == vn for p in payloads
            )
            if saw_request or collision:
                self._join_activity = True
            return

        if phase is Phase.JOIN_ACK:
            if collision:
                self._join_activity = True
            return

    # -- CHA plumbing -----------------------------------------------------

    def _on_ballot(self, payloads, collision) -> None:
        ballots = [
            p.ballot for p in payloads
            if isinstance(p, BallotPayload)
            and p.tag == self.tag and p.instance == self.core.k
        ]
        self.core.on_ballot_reception(ballots, collision)

    def _on_veto(self, payloads, collision, *, which: int,
                 vr: VirtualRound | None = None) -> None:
        if not self.core.has_instance():
            # Pre-instance veto phase (e.g. right after a reset
            # re-anchored the core): inert until the next ballot phase
            # begins an instance.
            return
        # Tag-only filtering: the tag is per virtual node, and replicas
        # of one VN move through the phase grid in lockstep, so the
        # instance field carries no extra information here.
        veto = any(
            isinstance(p, VetoPayload) and p.tag == self.tag for p in payloads
        )
        if which == 1:
            self.core.on_veto1_reception(veto, collision)
        else:
            self.core.on_veto2_reception(veto, collision)
            if vr is not None:
                self.round_colors[vr] = self.core.color_of(self.core.k)
