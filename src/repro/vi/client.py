"""Client programs and their per-device runtime.

Clients are the paper's "abstract mobile nodes": user code that interacts
with virtual nodes over the *virtual* broadcast service.  A client
program is driven once per virtual round with an observation of the
virtual channel (messages heard in the CLIENT and VN phases, plus the
virtual collision flag) and may emit one message, which the runtime
broadcasts in the next CLIENT phase.

The virtual channel a client sees is collision-prone exactly like the
real one (Section 1.2): two clients transmitting in the same virtual
round collide for real inside the shared CLIENT phase, and the real
collision detector's indication becomes the virtual one.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from ..types import VirtualRound
from .program import VirtualObservation


class ClientProgram(ABC):
    """User code running on an (abstract) mobile node."""

    @abstractmethod
    def on_round(self, vr: VirtualRound,
                 observation: VirtualObservation) -> Any | None:
        """Consume round ``vr``'s observation; return the *next* round's
        broadcast payload (or ``None`` to stay silent).

        Payloads must be canonically orderable (str / int / tuples
        thereof) because replicas fold them into agreement proposals.
        """


class SilentClient(ClientProgram):
    """Listens forever; records everything it hears (useful in tests)."""

    def __init__(self) -> None:
        self.heard: list[tuple[VirtualRound, VirtualObservation]] = []

    def on_round(self, vr, observation):
        self.heard.append((vr, observation))
        return None


class ScriptedClient(ClientProgram):
    """Broadcasts a fixed script: ``script[vr]`` in virtual round ``vr``.

    Also records observations, so tests can assert on both directions.
    """

    def __init__(self, script: dict[VirtualRound, Any]) -> None:
        self.script = dict(script)
        self.heard: list[tuple[VirtualRound, VirtualObservation]] = []

    def on_round(self, vr, observation):
        self.heard.append((vr, observation))
        return self.script.get(vr + 1)


class ClientRuntime:
    """Drives one client program through the phase structure."""

    def __init__(self, program: ClientProgram) -> None:
        self.program = program
        self._messages: list[Any] = []
        self._collision = False
        self._last_vr: VirtualRound | None = None

    def begin_virtual_round(self, vr: VirtualRound) -> Any | None:
        """Called at the CLIENT phase: closes the previous round's
        observation, feeds it to the program, and returns the payload
        (if any) to broadcast now."""
        if self._last_vr is None:
            # First round: the program observes nothing yet; convention is
            # that script entry 0 (if any) comes from on_round(-1, empty).
            out = self.program.on_round(-1, VirtualObservation((), False))
        else:
            out = self.program.on_round(
                self._last_vr,
                VirtualObservation(tuple(self._messages), self._collision),
            )
        self._messages = []
        self._collision = False
        self._last_vr = vr
        return out

    def observe_client_phase(self, items: list[Any], collision: bool) -> None:
        self._messages.extend(("cl", payload) for payload in items)
        self._collision = self._collision or collision

    def observe_vn_phase(self, items: list[tuple[int, Any]], collision: bool) -> None:
        self._messages.extend(("vn", vn_id, payload) for vn_id, payload in items)
        self._collision = self._collision or collision
