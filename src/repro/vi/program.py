"""Deterministic virtual-node programs (the user's code on a virtual node).

A virtual node is a *deterministic* automaton (Section 1.2).  Each virtual
round it may emit one message (computed from its state) and then consumes
an observation of the virtual channel: either the messages delivered to it
(possibly with a collision flag), or — when the emulation's agreement
instance produced bottom — a bare collision indication, per Section 3.3
("the replica instructs its co-located client to simulate detecting a
collision"; the virtual node itself observes the same uncertainty).

State values must be immutable/hashable: replicas compare folded states to
check emulation consistency, and the join protocol ships them in acks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from ..types import VirtualRound


@dataclass(frozen=True)
class VirtualObservation:
    """What a virtual node perceives on the virtual channel in one round.

    ``messages`` are canonical items ``("cl", payload)`` for client
    messages and ``("vn", vn_id, payload)`` for neighbouring virtual
    nodes', sorted.  ``collision`` is the virtual ``±`` flag.
    """

    messages: tuple[Any, ...]
    collision: bool

    @classmethod
    def unknown(cls) -> "VirtualObservation":
        """The bottom-instance observation: nothing but a collision."""
        return cls(messages=(), collision=True)


class ScheduleAware:
    """Mixin: lets a program transmit only in its scheduled virtual rounds.

    The broadcast schedule is static and centrally computed (Section 4.1),
    so a virtual node may legitimately know its own slot;
    :class:`~repro.vi.world.VIWorld` injects ``schedule_slot`` and
    ``schedule_period`` into every program at deployment.  A program that
    emits in unscheduled rounds is *allowed* to (the emulation broadcasts
    it — the paper's "counterintuitive rule"), but with several replicas
    the copies collide on the real channel, so messages that must not be
    lost should be emitted via :meth:`is_my_slot` gating.
    """

    schedule_slot: int | None = None
    schedule_period: int | None = None

    def is_my_slot(self, vr: VirtualRound) -> bool:
        if self.schedule_slot is None or self.schedule_period is None:
            return True
        return vr % self.schedule_period == self.schedule_slot


class VNProgram(ABC):
    """A deterministic virtual-node automaton."""

    @abstractmethod
    def init_state(self) -> Any:
        """Initial state (used at deployment and after a reset)."""

    @abstractmethod
    def emit(self, state: Any, vr: VirtualRound) -> Any | None:
        """Message the virtual node broadcasts in round ``vr`` (or None).

        Must be a pure function of ``(state, vr)``; payloads must be
        canonically orderable (str/int/tuple) so they can ride in ballots.
        """

    @abstractmethod
    def step(self, state: Any, vr: VirtualRound,
             observation: VirtualObservation) -> Any:
        """The state after consuming round ``vr``'s observation.  Pure."""


class SilentProgram(VNProgram):
    """A virtual node that never speaks and counts rounds (for tests)."""

    def init_state(self):
        return 0

    def emit(self, state, vr):
        return None

    def step(self, state, vr, observation):
        return state + 1


class CounterProgram(VNProgram):
    """A shared counter: clients send ("add", n); the node broadcasts its
    total every round.  The canonical quickstart virtual node."""

    def init_state(self):
        return 0

    def emit(self, state, vr):
        return ("count", state)

    def step(self, state, vr, observation):
        if observation.collision and not observation.messages:
            return state
        total = state
        for item in observation.messages:
            if item[0] == "cl":
                payload = item[1]
                if isinstance(payload, tuple) and len(payload) == 2 and payload[0] == "add":
                    total += payload[1]
        return total


class EchoProgram(VNProgram):
    """Re-broadcasts the last client message it received (or stays silent).

    Useful in tests: the echoed value reveals exactly which observation
    the replicas agreed on.
    """

    def init_state(self):
        return None

    def emit(self, state, vr):
        if state is None:
            return None
        return ("echo", state)

    def step(self, state, vr, observation):
        client_payloads = [
            item[1] for item in observation.messages if item[0] == "cl"
        ]
        if client_payloads:
            return client_payloads[-1]
        return state


class MailboxProgram(ScheduleAware, VNProgram):
    """A store-and-forward mailbox: the substrate for VN-overlay routing.

    Clients deposit ``("send", ingress_vn, dest_vn, body)``; only the
    named ingress virtual node accepts the packet (a client broadcast
    reaches every virtual node in range, and without an explicit ingress
    the packet would be duplicated and the duplicates' broadcasts would
    collide).  The node forwards along a static routing table, emitting
    ``("relay", next_vn, dest_vn, body)`` — the explicit next hop makes
    forwarding deterministic even when several neighbours overhear the
    relay.  Items addressed to this node accumulate in the inbox half of
    its state.

    A relayed item rides the collision-prone virtual channel: if the emit
    round's delivery fails, the item is lost (no retransmission at this
    layer), exactly like a message between real wireless devices.

    State: ``(inbox, outbox)`` tuples of canonical items.
    """

    def __init__(self, vn_id: int, next_hop: dict[int, int]) -> None:
        self.vn_id = vn_id
        #: Static routing table: destination vn -> neighbour vn to forward to.
        self.next_hop = dict(next_hop)

    def init_state(self):
        return ((), ())

    def emit(self, state, vr):
        if not self.is_my_slot(vr):
            return None  # relays only in clean scheduled slots
        _, outbox = state
        if not outbox:
            return None
        dest, body = outbox[0]
        return ("relay", self.next_hop[dest], dest, body)

    def step(self, state, vr, observation):
        inbox, outbox = state
        if self.emit(state, vr) is not None:
            outbox = outbox[1:]

        def accept(dest, body):
            nonlocal inbox, outbox
            if dest == self.vn_id:
                inbox = inbox + ((dest, body),)
            elif dest in self.next_hop:
                outbox = outbox + ((dest, body),)

        for item in observation.messages:
            if item[0] == "cl":
                payload = item[1]
                if (isinstance(payload, tuple) and len(payload) == 4
                        and payload[0] == "send" and payload[1] == self.vn_id):
                    accept(payload[2], payload[3])
            elif item[0] == "vn":
                payload = item[2]
                if (isinstance(payload, tuple) and len(payload) == 4
                        and payload[0] == "relay" and payload[1] == self.vn_id):
                    accept(payload[2], payload[3])
        return (inbox, outbox)
