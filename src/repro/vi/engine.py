"""Phase-table round engine for the VI emulation (the sixth switch).

The per-device dispatch runs every :class:`~repro.vi.device.VIDevice`
through every real round: each device re-derives the round's
:class:`~repro.vi.phases.PhasePosition` and then mostly discovers it has
nothing to do (an unscheduled replica in a SCHED phase, a pure client in
a veto round, ...).  For a world of ``n`` devices that is ``O(n)`` phase
dispatches per real round even though most phases touch only a handful
of devices.

This engine applies the PR-5 batching idea one level up.  Device roles —
replica of which virtual node, joiner targeting which site, client —
change only during the CLIENT-phase housekeeping at virtual-round
boundaries, so at each CLIENT round the engine rebuilds a
:class:`PhaseTable`: for every real-round offset of the virtual round,
the node-ordered tuple of devices that can possibly send or receive
anything in that phase, plus the replica contender list.  Each following
real round then touches only the listed devices through the prebound
``send_at``/``deliver_at`` entry points, with the round's
:class:`PhasePosition` computed once instead of once per device.

Byte-identity with the per-device dispatch is a design constraint, not
an aspiration (the ``vi_differential`` suite pins it):

* The engine mirrors ``Simulator._step_batched`` stage by stage — the
  same mobility/liveness block, the same contention-manager
  advise/feedback call sequences, the same adversary/detector RNG
  stream (collision flags and delivered tuples are still computed for
  *every* present node, so round records, traces and wire metrics are
  identical object graphs), the same round-record bookkeeping.
* Phase rows are *supersets* of the devices that act: a listed device
  whose state machine declines (a joiner not in ``WANT_JOIN`` at JOIN,
  a replica with nothing to veto) runs the same no-op it would have run
  under per-device dispatch, while an unlisted device provably returns
  ``None``/no-ops there — so skipping its call is unobservable.
* Mid-virtual-round role changes cannot happen (housekeeping is the
  only writer of ``device.replica``/``_join_target``), so a table built
  at the CLIENT round stays valid for the whole virtual round.  The
  CLIENT round itself sends through *all* registered devices
  (housekeeping must run everywhere — that is where joins activate,
  resets rebirth and region exits tear replicas down) and only then
  rebuilds the table; its contention stage reuses the previous virtual
  round's replica set, which housekeeping cannot yet have changed.
  Membership churn (``VIWorld.add_device`` between virtual rounds) is
  covered the same way: new devices have no roles until their first
  CLIENT housekeeping, which the all-device send loop runs before the
  rebuild picks them up.

The seed per-device dispatch survives verbatim behind the sixth
reference switch: ``REPRO_REFERENCE_VI=1`` in the environment,
``ExperimentSpec(use_reference_vi=True)``, or
``VIWorld(use_reference_vi=True)``.  The engine also steps aside — per
virtual round, falling back to plain ``Simulator.step`` — whenever the
simulator itself is pinned to its reference engine, the round cursor is
misaligned with a virtual-round boundary (someone drove ``sim.step()``
by hand), or the simulator carries nodes the world does not know about.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable

from ..detectors import EventuallyAccurateDetector
from ..net.adversary import NoAdversary
from ..net.messages import Message
from ..net.trace import RoundRecord
from ..types import NodeId, Round, VirtualRound
from .device import _NO_PAYLOADS
from .phases import PhasePosition

if TYPE_CHECKING:
    from .world import VIWorld

#: Environment switch: any value except ``""``/``"0"`` pins every newly
#: constructed :class:`~repro.vi.world.VIWorld` to the seed per-device
#: VI dispatch instead of the phase-table engine (the sixth
#: ``REPRO_REFERENCE_*`` axis, mirroring ``REPRO_REFERENCE_ENGINE``).
REFERENCE_VI_ENV = "REPRO_REFERENCE_VI"


def reference_vi_forced() -> bool:
    """Whether the environment pins VI worlds to per-device dispatch."""
    return os.environ.get(REFERENCE_VI_ENV, "0") not in ("", "0")


#: One table row: ``(node, send_at, deliver_at)`` — the device's phase
#: entry points prebound, mirroring the simulator's dispatch tables.
Row = tuple[NodeId, Callable, Callable]


class PhaseTable:
    """One virtual round's role tables: who can act at each offset.

    ``senders[offset]`` is a node-ordered tuple of :data:`Row`;
    ``senders[0]`` is unused (the CLIENT round sends through every
    registered device so housekeeping runs everywhere).  Receivers are
    split per offset into ``recv_mandatory[offset]`` — rows that must be
    dispatched even on a quiet reception (no messages, no collision
    flag), because silence itself is meaningful there (ballot phases
    paint red, veto-2 closes the instance, JOIN_ACK/RESET silence drives
    the joiner state machine) — and ``recv_skippable[offset]`` — rows
    whose quiet delivery is provably a no-op (CLIENT/VN observation,
    veto-1, JOIN watching, and *replica* JOIN_ACK watching, which only
    reacts to collisions).  ``contenders`` holds ``(node, cm_name)`` for
    every replica device — replicas contend for their virtual node's
    regional manager every real round.
    """

    __slots__ = ("virtual_round", "senders", "recv_mandatory",
                 "recv_skippable", "contenders")

    def __init__(self, virtual_round: VirtualRound,
                 senders: list[tuple[Row, ...]],
                 recv_mandatory: list[tuple[Row, ...]],
                 recv_skippable: list[tuple[Row, ...]],
                 contenders: tuple[tuple[NodeId, str], ...]) -> None:
        self.virtual_round = virtual_round
        self.senders = senders
        self.recv_mandatory = recv_mandatory
        self.recv_skippable = recv_skippable
        self.contenders = contenders

    def sender_nodes(self, offset: int) -> set[NodeId]:
        """Node ids that may send at ``offset`` (introspection/tests)."""
        return {row[0] for row in self.senders[offset]}

    def receiver_nodes(self, offset: int) -> set[NodeId]:
        """Node ids that may receive at ``offset`` (introspection/tests)."""
        return ({row[0] for row in self.recv_mandatory[offset]}
                | {row[0] for row in self.recv_skippable[offset]})


class VIRoundEngine:
    """Drives a :class:`~repro.vi.world.VIWorld` by whole virtual rounds
    through per-phase role tables."""

    def __init__(self, world: "VIWorld") -> None:
        self.world = world
        self.sim = world.sim
        self.clock = world.clock
        self.schedule = world.schedule
        #: Interned contention-manager names (one string per site, not
        #: one per replica per table rebuild).
        self._cm_names = {site.vn_id: f"vn{site.vn_id}"
                          for site in world.sites}
        self._table: PhaseTable | None = None
        #: Cache key of ``_table``: the world's role-change counter and
        #: the schedule slot it was built for.  While neither moves
        #: (steady state), the CLIENT-round rebuild reuses the table.
        self._role_version = world.role_version
        self._table_epoch = -1
        self._table_slot = -1

    # ------------------------------------------------------------------
    # Table construction
    # ------------------------------------------------------------------

    def build_table(self, vr: VirtualRound) -> PhaseTable:
        """Build the role tables for virtual round ``vr`` from current
        device state (valid once CLIENT-phase housekeeping has run)."""
        schedule = self.schedule
        slot_of = schedule.slot_of
        cm_names = self._cm_names
        s = schedule.length
        slot_now = vr % s
        replicas: list[Row] = []
        scheduled: list[Row] = []
        unscheduled: list[Row] = []
        by_slot: dict[int, list[Row]] = {}
        joiners: list[Row] = []
        client_recv: list[Row] = []
        contenders: list[tuple[NodeId, str]] = []
        for node, device in self.world.devices.items():
            replica = device.replica
            if replica is not None:
                # Replica rows prebind the runtime's own phase handlers:
                # for every non-CLIENT/VN-reception phase the device
                # wrapper provably reduces to them (``_joiner_send`` is
                # an immediate ``None`` while a replica exists, and the
                # client runtime only observes CLIENT/VN receptions,
                # which go through the full ``deliver_at`` row below).
                vn = replica.site.vn_id
                crow = (node, replica.send_for, replica.deliver_for)
                replicas.append(crow)
                client_recv.append((node, device.send_at, device.deliver_at))
                contenders.append((node, cm_names[vn]))
                slot = slot_of(vn)
                if slot == slot_now:
                    scheduled.append(crow)
                else:
                    unscheduled.append(crow)
                    by_slot.setdefault(slot, []).append(crow)
            else:
                if device._join_target is not None:
                    # Joiners receive only in JOIN_ACK/RESET phases,
                    # where ``deliver_at`` reduces to the joiner state
                    # machine (no replica, and the client runtime does
                    # not observe those phases).
                    row = (node, device.send_at, device._joiner_deliver)
                    joiners.append(row)
                if device.client is not None:
                    client_recv.append(
                        (node, device.send_at, device.deliver_at))
        empty: tuple[Row, ...] = ()
        n_offsets = self.clock.rounds_per_virtual_round
        senders: list[tuple[Row, ...]] = [empty] * n_offsets
        mandatory: list[tuple[Row, ...]] = [empty] * n_offsets
        skippable: list[tuple[Row, ...]] = [empty] * n_offsets
        reps = tuple(replicas)
        sched = tuple(scheduled)
        unsched = tuple(unscheduled)
        joins = tuple(joiners)
        clients = tuple(client_recv)
        # CLIENT (offset 0): every device sends (housekeeping); clients
        # and replicas observe the round's client messages (quiet
        # observation is a no-op).
        skippable[0] = clients
        # VN: replicas speak for their virtual nodes; clients + replicas
        # listen (again skippable when quiet).
        senders[1] = reps
        skippable[1] = clients
        # Scheduled CHA ballot/veto1/veto2.  Ballot silence paints the
        # instance red and veto-2 silence still closes the instance, so
        # those receptions are mandatory; a quiet veto-1 is a no-op.
        senders[2] = mandatory[2] = sched
        senders[3] = skippable[3] = sched
        senders[4] = mandatory[4] = sched
        # Unscheduled CHA ballots: one slot per schedule colour (the
        # current colour's slot and the two guard slots stay empty).
        for slot, rows in by_slot.items():
            senders[5 + slot] = mandatory[5 + slot] = tuple(rows)
        senders[s + 7] = skippable[s + 7] = unsched
        senders[s + 8] = mandatory[s + 8] = unsched
        # JOIN: joiners request, replicas watch for join activity (a
        # quiet JOIN round leaves ``_join_activity`` untouched).
        senders[s + 9] = joins
        skippable[s + 9] = reps
        # JOIN_ACK: scheduled replicas transfer state; waiting joiners
        # adopt it — ack *silence* is what moves them to AWAIT_RESET, so
        # their rows are mandatory — while replicas only watch for ack
        # collisions (quiet reception is a no-op for them).
        senders[s + 10] = sched
        mandatory[s + 10] = joins
        skippable[s + 10] = reps
        # RESET: replicas ping liveness; probing joiners listen, and
        # total silence is exactly the rebirth trigger — mandatory.
        senders[s + 11] = reps
        mandatory[s + 11] = joins
        return PhaseTable(vr, senders, mandatory, skippable,
                          tuple(contenders))

    def _contenders_now(self) -> tuple[tuple[NodeId, str], ...]:
        """Contender rows from current device state (used when no valid
        previous-round table exists, e.g. the very first virtual round)."""
        cm_names = self._cm_names
        return tuple(
            (node, cm_names[device.replica.site.vn_id])
            for node, device in self.world.devices.items()
            if device.replica is not None
        )

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------

    def run_virtual_round(self, vr: VirtualRound) -> None:
        """Execute virtual round ``vr`` (``s + 12`` real rounds)."""
        sim = self.sim
        clock = self.clock
        rpv = clock.rounds_per_virtual_round
        first = clock.first_round_of(vr)
        if (sim.use_reference_engine
                or sim.current_round != first
                or len(self.world.devices) != len(sim._node_list)):
            # The simulator is pinned to its own reference loop, the
            # cursor sits mid-virtual-round (externally stepped), or the
            # simulator carries nodes this world did not register: the
            # per-device dispatch is always safe, so use it.
            self._table = None
            for _ in range(rpv):
                sim.step()
            return
        table = self._table
        if table is not None and table.virtual_round == vr - 1:
            # CLIENT-round contention runs before housekeeping can change
            # any role, so last round's replica set is exact.
            contenders = table.contenders
        else:
            contenders = self._contenders_now()
        positions = clock.positions_for(vr)
        self._step(first, positions[0], 0, contenders)
        contenders = self._table.contenders
        # Quiet-join fast path: replicas answer in JOIN_ACK only when the
        # JOIN round set ``_join_activity`` (a join request delivered or a
        # collision flagged), and ping in RESET only likewise (JOIN_ACK
        # collisions also set it).  A JOIN round with no broadcast and no
        # collision flag anywhere therefore provably yields an all-``None``
        # JOIN_ACK send sweep, and a quiet JOIN_ACK on top of that an
        # all-``None`` RESET sweep — so those sender loops are skipped.
        quiet_join = quiet_ack = False
        for offset in range(1, rpv):
            skip_senders = (quiet_join if offset == rpv - 2
                            else quiet_join and quiet_ack)
            traffic = self._step(first + offset, positions[offset], offset,
                                 contenders, skip_senders=skip_senders)
            if offset == rpv - 3:
                quiet_join = not traffic
            elif offset == rpv - 2:
                quiet_ack = not traffic

    def _step(self, r: Round, pos: PhasePosition, offset: int,
              contender_rows: tuple[tuple[NodeId, str], ...], *,
              skip_senders: bool = False) -> bool:
        """One real round, mirroring ``Simulator._step_batched`` stage by
        stage with phase-filtered send/deliver dispatch.

        Returns whether the round carried any traffic (a broadcast or a
        collision flag) — the quiet-join fast path's signal.
        ``skip_senders`` omits the sender sweep when the caller has
        proved every send would return ``None`` (quiet-join rounds)."""
        sim = self.sim
        nodes = sim._nodes
        fast = sim.fast_path
        crashes = sim.crashes
        no_crashes = fast and not len(crashes)
        alive = sim.alive
        sends_in = crashes.sends_in

        # -- mobility & liveness ---------------------------------------
        present, positions, unchanged = sim._positions_batched(r)
        if fast and unchanged and sim.locations.staleness_bound == 0:
            pass  # re-observing the same map would be a no-op
        else:
            sim.locations.observe(r, positions)
            sim._positions_observed = True
        sim._last_present = present
        sim._batch_prev = (r, present, positions)

        # -- contention ------------------------------------------------
        # Every table contender was present when its role was assigned
        # (roles only change in housekeeping, which only runs on present
        # devices), so with no crash schedule no per-round gate is
        # needed; with one, the aliveness + sends_in gates match the
        # batched engine's candidate filtering exactly.
        cms = sim.cms
        contenders: dict[str, list[NodeId]] = {}
        advice: dict[str, frozenset[NodeId]] | None = None
        advised: set[NodeId] | None = None
        for node, cm_name in contender_rows:
            if not no_crashes and not (alive(node, r) and sends_in(node, r)):
                continue
            bucket = contenders.get(cm_name)
            if bucket is None:
                contenders[cm_name] = [node]
            else:
                bucket.append(node)
        if contenders:
            advice = {}
            advised = set()
            for cm_name, cnodes in sorted(contenders.items()):
                granted = cms[cm_name].advise(r, cnodes).intersection(cnodes)
                advice[cm_name] = granted
                advised.update(granted)

        # -- send --------------------------------------------------------
        broadcasts: dict[NodeId, Message] = {}
        send_list: list[NodeId] = []
        adv = advised if advised else ()
        if offset == 0:
            # CLIENT round: every registered device runs its send step —
            # boundary housekeeping must execute everywhere — and the
            # table for this virtual round is rebuilt from the resulting
            # roles before anything is delivered.
            for node, device in self.world.devices.items():
                if no_crashes:
                    if nodes[node].start_round > r:
                        continue
                elif not (alive(node, r) and sends_in(node, r)):
                    continue
                payload = device.send_at(pos, node in adv)
                if payload is not None:
                    broadcasts[node] = Message(node, payload)
                    send_list.append(node)
            vr_now = pos.virtual_round
            slot_now = vr_now % self.schedule.length
            epoch = self._role_version[0]
            table = self._table
            if (table is not None and epoch == self._table_epoch
                    and slot_now == self._table_slot):
                # No role changed and the schedule colour repeats: the
                # previous table is exact for this virtual round too.
                table.virtual_round = vr_now
            else:
                table = self._table = self.build_table(vr_now)
                self._table_epoch = epoch
                self._table_slot = slot_now
        else:
            table = self._table
            if not skip_senders:
                for row in table.senders[offset]:
                    node = row[0]
                    if not no_crashes and not (alive(node, r)
                                               and sends_in(node, r)):
                        continue
                    payload = row[1](pos, node in adv)
                    if payload is not None:
                        broadcasts[node] = Message(node, payload)
                        send_list.append(node)

        # -- channel -----------------------------------------------------
        receptions = sim.channel.deliver_batch(
            r, positions, broadcasts, send_list,
            positions_unchanged=unchanged and fast)

        # -- detect ------------------------------------------------------
        # Flags and delivered tuples are computed for every present node
        # in node order — the adversary/detector call sequences (their
        # RNG streams) and the round record must match the per-device
        # dispatch exactly; only the protocol *dispatch* below is
        # phase-filtered.
        flags: dict[NodeId, bool] = {}
        delivered: dict[NodeId, tuple[Message, ...]] = {}
        adversary = sim.adversary
        benign = type(adversary) is NoAdversary
        false_collision = adversary.false_collision
        detector = sim.detector
        fast_detect = (fast
                       and type(detector) is EventuallyAccurateDetector
                       and r >= detector.racc)
        indicate = detector.indicate
        receives_in = crashes.receives_in
        any_flag = False
        for node in present:
            if not no_crashes and not receives_in(node, r):
                continue
            reception = receptions[node]
            spurious = False if benign else false_collision(r, node)
            flag = (reception.lost_within_r2 if fast_detect
                    else indicate(r, node, reception, spurious))
            flags[node] = flag
            if flag:
                any_flag = True
            delivered[node] = reception.messages

        # -- deliver (phase-filtered) ------------------------------------
        delivered_get = delivered.get
        for row in table.recv_mandatory[offset]:
            node = row[0]
            messages = delivered_get(node)
            if messages is None:
                continue  # absent or not receiving this round
            payloads = ([m.payload for m in messages] if messages
                        else _NO_PAYLOADS)
            row[2](pos, payloads, flags[node])
        for row in table.recv_skippable[offset]:
            node = row[0]
            messages = delivered_get(node)
            if messages is None:
                continue  # absent or not receiving this round
            if messages:
                row[2](pos, [m.payload for m in messages], flags[node])
            else:
                flag = flags[node]
                if flag:
                    row[2](pos, _NO_PAYLOADS, flag)
                # else: provably no-op delivery in this phase — skipped

        # -- contention feedback -----------------------------------------
        if contenders:
            flags_get = flags.get
            for cm_name, cnodes in sorted(contenders.items()):
                collided = any_flag and any(
                    flags_get(node, False) for node in cnodes)
                cms[cm_name].feedback(
                    r, active=advice[cm_name], collided=collided)

        # -- record ------------------------------------------------------
        if no_crashes:
            crashed_now: frozenset[NodeId] = frozenset()
        else:
            crashed_now = frozenset(
                node for node in sorted(nodes)
                if alive(node, r) != alive(node, r + 1)
                and nodes[node].start_round <= r
            )
        record = RoundRecord(
            round=r,
            positions=positions,
            broadcasts=broadcasts,
            receptions=delivered,
            collisions=flags,
            advised_active=frozenset(advised) if advised else frozenset(),
            crashed=crashed_now,
        )
        if sim.record_trace:
            sim.trace.append(record)
        for observer in sim._observers:
            observer(record)
        sim._round += 1
        return bool(broadcasts) or any_flag
