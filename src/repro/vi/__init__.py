"""Virtual-infrastructure emulation (Section 4 of the paper)."""

from .client import ClientProgram, ClientRuntime, ScriptedClient, SilentClient
from .device import JoinState, VIDevice
from .engine import (
    REFERENCE_VI_ENV,
    PhaseTable,
    VIRoundEngine,
    reference_vi_forced,
)
from .payloads import AlivePing, ClientMsg, JoinAck, JoinRequest, VNMsg
from .phases import PHASE_COUNT, Phase, PhaseClock, PhasePosition
from .program import (
    CounterProgram,
    EchoProgram,
    MailboxProgram,
    SilentProgram,
    VirtualObservation,
    VNProgram,
)
from .replica import ReplicaRuntime, observation_from_value
from .schedule import (
    Schedule,
    VNSite,
    build_schedule,
    conflict_graph,
    verify_schedule,
)
from .world import VIWorld, VNRoundOutcome

__all__ = [
    "AlivePing",
    "ClientMsg",
    "ClientProgram",
    "ClientRuntime",
    "CounterProgram",
    "EchoProgram",
    "JoinAck",
    "JoinRequest",
    "JoinState",
    "MailboxProgram",
    "PHASE_COUNT",
    "Phase",
    "PhaseClock",
    "PhasePosition",
    "PhaseTable",
    "REFERENCE_VI_ENV",
    "ReplicaRuntime",
    "VIRoundEngine",
    "Schedule",
    "ScriptedClient",
    "SilentClient",
    "SilentProgram",
    "VIDevice",
    "VIWorld",
    "VNMsg",
    "VNProgram",
    "VNRoundOutcome",
    "VNSite",
    "VirtualObservation",
    "build_schedule",
    "conflict_graph",
    "observation_from_value",
    "reference_vi_forced",
    "verify_schedule",
]
