"""The paper's detector: complete and *eventually* accurate (class ◇AC)."""

from __future__ import annotations

from ..errors import ConfigurationError
from ..net.channel import Reception
from ..types import NodeId, Round
from .base import CollisionDetector


class EventuallyAccurateDetector(CollisionDetector):
    """Complete always; accurate from round ``racc`` onward.

    Reports a collision whenever a message broadcast within ``R2`` was
    lost (this is both complete — R1 losses are R2 losses — and accurate),
    and additionally honours adversarial false positives strictly before
    ``racc``.
    """

    def __init__(self, *, racc: Round = 0) -> None:
        if racc < 0:
            raise ConfigurationError("racc must be non-negative")
        self.racc = racc

    def indicate(self, r: Round, node: NodeId, reception: Reception,
                 spurious: bool) -> bool:
        if reception.lost_within_r2:
            return True
        return spurious and r < self.racc
