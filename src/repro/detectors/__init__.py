"""Collision detectors (Properties 1-2 of the paper)."""

from .base import CollisionDetector
from .ac_eventually import EventuallyAccurateDetector
from .complete_only import CompleteOnlyDetector
from .perfect import PerfectDetector

__all__ = [
    "CollisionDetector",
    "EventuallyAccurateDetector",
    "CompleteOnlyDetector",
    "PerfectDetector",
]
