"""A complete but never-accurate detector, for ablation A2.

The paper (and [8] before it) shows that completeness alone is not enough
for efficient agreement: persistent false positives starve the protocol of
green instances.  This detector keeps emitting seeded false positives
forever, so liveness experiments can demonstrate exactly that stall while
safety (which never relies on accuracy) survives.
"""

from __future__ import annotations

import random

from ..errors import ConfigurationError
from ..net.channel import Reception
from ..types import NodeId, Round
from .base import CollisionDetector


class CompleteOnlyDetector(CollisionDetector):
    """Complete, with i.i.d. persistent false positives of rate ``p_false``."""

    def __init__(self, *, p_false: float, seed: int = 0) -> None:
        if not 0.0 <= p_false <= 1.0:
            raise ConfigurationError("p_false must lie in [0, 1]")
        self.p_false = p_false
        self._seed = seed

    def indicate(self, r: Round, node: NodeId, reception: Reception,
                 spurious: bool) -> bool:
        if reception.lost_within_r1:
            return True
        # Deterministic per (round, node) false-positive stream.
        rng = random.Random(hash((self._seed, r, node)))
        return rng.random() < self.p_false
