"""Collision-detector interface.

The paper assumes detectors in class ◇AC (eventually accurate, complete)
as defined in Chockler et al., PODC 2005:

* **Completeness (Property 1)** — if a node misses a message broadcast
  within ``R1`` of it, it must report a collision that round.
* **Eventual accuracy (Property 2)** — from some round ``racc`` on, a
  collision is reported only when a message broadcast within ``R2`` was
  actually lost.

The channel supplies ground truth (:class:`repro.net.channel.Reception`);
the environment's adversary supplies spurious-collision requests; a
detector combines them into the single ``±`` flag the protocol sees.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..net.channel import Reception
from ..types import NodeId, Round


class CollisionDetector(ABC):
    """Turns channel ground truth into the per-node collision flag."""

    @abstractmethod
    def indicate(self, r: Round, node: NodeId, reception: Reception,
                 spurious: bool) -> bool:
        """The ``±`` flag delivered to ``node`` in round ``r``.

        ``spurious`` is the adversary's request to inject a false positive;
        whether the detector honours it depends on the class of detector
        (an always-accurate detector never does, a ◇AC detector does only
        before its accuracy round).
        """

    def is_complete_for(self, reception: Reception, flag: bool) -> bool:
        """Check Property 1 against a single observation (for validators)."""
        return flag or not reception.lost_within_r1

    def is_accurate_for(self, reception: Reception, flag: bool) -> bool:
        """Check the Property 2 implication for a single observation."""
        return (not flag) or reception.lost_within_r2
