"""An always-accurate, complete detector (stronger than the paper needs).

Used as the idealised baseline in ablation A2 and in unit tests that want
collision indications to coincide exactly with genuine in-range loss.
"""

from __future__ import annotations

from ..net.channel import Reception
from ..types import NodeId, Round
from .base import CollisionDetector


class PerfectDetector(CollisionDetector):
    """Reports exactly the losses of messages broadcast within ``R1``."""

    def indicate(self, r: Round, node: NodeId, reception: Reception,
                 spurious: bool) -> bool:
        return reception.lost_within_r1
