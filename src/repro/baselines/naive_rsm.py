"""The naive replicated-state machine: full history in every message.

Section 3.4: "a naïve solution might include the entire history in every
message".  This baseline is *correct* — it is CHAP with the entire
computed history embedded in each ballot (which is how classical RSM
implementations ship state to lagging replicas and joiners) — but its
wire messages grow linearly with the execution, violating exactly the
property Theorem 14 buys.  Experiment E2 plots the two side by side.

Because the protocol logic is inherited unchanged from CHAP, the outputs
of a naive ensemble are *identical* to a CHAP ensemble run under the same
environment, which the test-suite asserts; the baselines differ only on
the wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.ballot import Ballot, BallotPayload
from ..core.cha import CHAProcess, PHASE_BALLOT
from ..types import Instance, Round, Value


@dataclass(frozen=True)
class NaiveBallotPayload(BallotPayload):
    """A ballot dragging the proposer's entire decided history behind it.

    Subclasses :class:`BallotPayload` so receivers process it through the
    ordinary CHAP path; ``history_entries`` is pure wire weight (and what
    a classical RSM would let a joiner catch up from).
    """

    history_entries: tuple[tuple[Instance, Value], ...] = ()


class NaiveRSMProcess(CHAProcess):
    """CHAP with naive full-history ballots."""

    def send(self, r: Round, active: bool) -> Any | None:
        if self._phase(r) != PHASE_BALLOT:
            return super().send(r, active)
        payload = self.core.begin_instance()
        if not active:
            return None
        history = self.core.current_history()
        return NaiveBallotPayload(
            tag=payload.tag,
            instance=payload.instance,
            ballot=payload.ballot,
            # Repacked pair-by-pair so the wire encoding is structure-
            # canonical: chain-backed histories share entry tuples across
            # outputs, and leaking that sharing onto the wire would make
            # otherwise-identical traces pickle differently.
            history_entries=tuple((k, v) for k, v in history.items()),
        )
