"""A majority-quorum replicated-state machine, as a radio strawman.

Section 1.5: "most such protocols require at least a majority of the
nodes to send messages; in a wireless network this creates unacceptable
channel contention and long delays."  This baseline quantifies that
claim.  It is deliberately *charitable* to the classical approach:

* nodes get unique identifiers and a free, perfect TDMA slot assignment
  (no contention between acks — each ack has its own round);
* the leader is fixed and never crashes unless scripted.

Even so, one agreement instance costs ``n + 2`` rounds (propose, ``n``
ack slots, commit) against CHAP's constant 3, and a single lost ack among
the majority aborts the instance.  Experiment E8 compares the decided-
instance throughput of the two protocols on the same channel.

Protocol per instance (synchronous):

1. round 0 — the leader broadcasts ``Propose(k, v)``.
2. rounds 1..n — node ``i`` broadcasts ``Ack(k)`` in round ``i`` iff it
   received the proposal.
3. round n+1 — the leader broadcasts ``Commit(k, v)`` iff it heard a
   majority of acks (counting itself); receivers decide on commit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..net.messages import Message
from ..net.node import Process
from ..types import Instance, NodeId, Round, Value


@dataclass(frozen=True, slots=True)
class Propose:
    instance: Instance
    value: Value


@dataclass(frozen=True, slots=True)
class Ack:
    instance: Instance
    voter: NodeId


@dataclass(frozen=True, slots=True)
class Commit:
    instance: Instance
    value: Value


class MajorityRSMProcess(Process):
    """One participant of the majority-quorum strawman."""

    def __init__(self, *, my_index: int, n: int, is_leader: bool,
                 propose: Any) -> None:
        if not 0 <= my_index < n:
            raise ValueError("my_index must lie in [0, n)")
        self.my_index = my_index
        self.n = n
        self.is_leader = is_leader
        self._propose = propose
        self.rounds_per_instance = n + 2
        #: Decided (instance, value) pairs, in decision order.
        self.decided: list[tuple[Instance, Value]] = []
        self._instance: Instance = 0
        self._current_value: Value | None = None
        self._got_proposal = False
        self._acks_heard = 0

    def _phase(self, r: Round) -> int:
        return r % self.rounds_per_instance

    def send(self, r: Round, active: bool) -> Any | None:
        phase = self._phase(r)
        if phase == 0:
            self._instance += 1
            self._got_proposal = False
            self._acks_heard = 1 if self.is_leader else 0  # leader self-ack
            if self.is_leader:
                self._current_value = self._propose(self._instance)
                self._got_proposal = True
                return Propose(self._instance, self._current_value)
            return None
        if 1 <= phase <= self.n:
            if phase - 1 == self.my_index and self._got_proposal \
                    and not self.is_leader:
                return Ack(self._instance, self.my_index)
            return None
        # Commit round.
        if self.is_leader and self._acks_heard * 2 > self.n:
            return Commit(self._instance, self._current_value)
        return None

    def deliver_batch(self, r: Round, messages: tuple[Message, ...],
                      collision: bool, batch) -> None:
        """Batched delivery — :meth:`deliver` without the intermediate
        payload list, and with the no-op shapes short-circuited: empty
        receptions update no state (per-instance bookkeeping lives in
        :meth:`send`), and only the leader reads ack slots.  Keep in
        lockstep with :meth:`deliver`."""
        if not messages:
            return
        phase = self._phase(r)
        if phase == 0:
            instance = self._instance
            for m in messages:
                p = m.payload
                if isinstance(p, Propose) and p.instance == instance:
                    self._got_proposal = True
                    self._current_value = p.value
        elif phase <= self.n:
            if self.is_leader:
                instance = self._instance
                for m in messages:
                    p = m.payload
                    if isinstance(p, Ack) and p.instance == instance:
                        self._acks_heard += 1
        else:
            instance = self._instance
            for m in messages:
                p = m.payload
                if isinstance(p, Commit) and p.instance == instance:
                    self.decided.append((p.instance, p.value))

    def deliver(self, r: Round, messages: tuple[Message, ...],
                collision: bool) -> None:
        phase = self._phase(r)
        payloads = [m.payload for m in messages]
        if phase == 0:
            for p in payloads:
                if isinstance(p, Propose) and p.instance == self._instance:
                    self._got_proposal = True
                    self._current_value = p.value
        elif 1 <= phase <= self.n:
            if self.is_leader:
                for p in payloads:
                    if isinstance(p, Ack) and p.instance == self._instance:
                        self._acks_heard += 1
        else:
            for p in payloads:
                if isinstance(p, Commit) and p.instance == self._instance:
                    self.decided.append((p.instance, p.value))

    @property
    def decided_count(self) -> int:
        return len(self.decided)


def run_majority_rsm(n: int, rounds: int, *, adversary=None, detector=None,
                     rcf: int = 0, r1: float = 1.0, r2: float = 1.5):
    """Run a majority-RSM ensemble in the Section 3 single-hop setting.

    Returns ``(simulator, processes)``; node 0 is the leader.  Mirrors
    :func:`repro.core.runner.run_cha` so experiment E8 can drive both
    protocols through identical environments.

    Compatibility shim over the declarative experiment API
    (:class:`~repro.experiment.MajorityRSM` on a cluster world).
    """
    from ..core.runner import DEFAULT_R1
    from ..experiment import (
        ClusterWorld,
        EnvironmentSpec,
        ExperimentSpec,
        MajorityRSM,
        WorkloadSpec,
    )
    from ..experiment.runner import run as run_experiment

    result = run_experiment(ExperimentSpec(
        protocol=MajorityRSM(),
        world=ClusterWorld(n=n, r1=r1, r2=r2, rcf=rcf,
                           cluster_radius=DEFAULT_R1 / 4),
        environment=EnvironmentSpec(adversary=adversary, detector=detector),
        workload=WorkloadSpec(rounds=rounds),
    ))
    return result.simulator, result.processes
