"""Ablation A1: CHAP with the veto-2 phase removed.

The paper credits its safety to a three-phase, four-colour structure
inherited from three-phase commit.  This ablation keeps the ballot phase
and a *single* veto phase (three colours: red < orange < green, output on
green), i.e. the two-phase-commit shape.  It is cheaper — two rounds per
instance — and **unsafe**: a node can turn green while a peer that
experienced a (possibly spurious) collision in the same veto phase stays
orange without advancing its ``prev-instance`` pointer.  If the green
node then crashes and the orange node leads, the new chain skips the
decided instance and Agreement breaks.

The missing veto-2 phase is exactly what closes this window in CHAP: an
orange node broadcasts a second veto, forcing the would-be-green node
down to yellow.  Benchmark A1 constructs the violating schedule and
counts spec violations for both protocols.
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.ballot import BallotPayload, VetoPayload
from ..core.cha import ChaCore, _NO_PAYLOADS
from ..core.history import History
from ..net.messages import MIXED_TAGS, Message
from ..net.node import Process
from ..types import BOTTOM, Color, Instance, Round, Value

#: Rounds per instance for the ablated protocol.
TWO_PHASE_ROUNDS = 2


class TwoPhaseChaProcess(Process):
    """CHAP minus veto-2.  Colours: red < orange < green (no yellow)."""

    def __init__(self, *, propose: Callable[[Instance], Value],
                 cm_name: str = "C", tag: Any = "2pc-cha",
                 use_reference_history: bool | None = None) -> None:
        self.core = ChaCore(propose=propose, tag=tag,
                            use_reference_history=use_reference_history)
        self.cm_name = cm_name

    def contend(self, r: Round) -> str | None:
        return self.cm_name

    def send(self, r: Round, active: bool) -> Any | None:
        if r % TWO_PHASE_ROUNDS == 0:
            payload = self.core.begin_instance()
            return payload if active else None
        if self.core.wants_veto1():  # red nodes veto; no second chance
            return VetoPayload(self.core.tag, self.core.k, 1)
        return None

    def deliver_batch(self, r: Round, messages: tuple[Message, ...],
                      collision: bool, batch) -> None:
        """Batched delivery: tag filtering amortised through the round
        batch exactly as in :meth:`repro.core.cha.CHAProcess.deliver_batch`;
        both entrypoints share :meth:`_deliver_decoded`."""
        if not messages:
            mine = _NO_PAYLOADS
        else:
            tag = self.core.tag
            uniform = batch.uniform_tag()
            if uniform == tag:
                mine = [m.payload for m in messages]
            elif uniform is not MIXED_TAGS:
                mine = _NO_PAYLOADS
            else:
                mine = [m.payload for m in messages
                        if getattr(m.payload, "tag", None) == tag]
        self._deliver_decoded(r, mine, collision)

    def deliver(self, r: Round, messages: tuple[Message, ...],
                collision: bool) -> None:
        mine = [
            m.payload for m in messages
            if getattr(m.payload, "tag", None) == self.core.tag
        ]
        self._deliver_decoded(r, mine, collision)

    def _deliver_decoded(self, r: Round, mine, collision: bool) -> None:
        if r % TWO_PHASE_ROUNDS == 0:
            ballots = [
                p.ballot for p in mine
                if isinstance(p, BallotPayload) and p.instance == self.core.k
            ]
            self.core.on_ballot_reception(ballots, collision)
            return
        veto = any(isinstance(p, VetoPayload) for p in mine)
        # Single veto phase: trouble demotes green straight to orange, and
        # the instance ends here.  Only green advances prev / outputs.
        if veto or collision:
            self.core.status[self.core.k] = min(
                Color.ORANGE, self.core.status[self.core.k],
            )
        k = self.core.k
        output: History | None
        if self.core.status[k] is Color.GREEN:
            self.core.prev_instance = k
            output = self.core.current_history()
        else:
            output = BOTTOM
        self.core.outputs.append((k, output))

    @property
    def outputs(self):
        return self.core.outputs

    @property
    def proposals_made(self):
        return self.core.proposals_made


def run_two_phase(n: int, instances: int, *, adversary=None, detector=None,
                  cm=None, crashes=None, rcf: int = 0):
    """Two-phase ensemble runner mirroring :func:`repro.core.runner.run_cha`.

    Compatibility shim over the declarative experiment API
    (:class:`~repro.experiment.TwoPhaseCHA` on a cluster world).
    """
    from ..experiment import (
        ClusterWorld,
        EnvironmentSpec,
        ExperimentSpec,
        TwoPhaseCHA,
        WorkloadSpec,
    )
    from ..experiment.runner import run as run_experiment

    result = run_experiment(ExperimentSpec(
        protocol=TwoPhaseCHA(),
        world=ClusterWorld(n=n, rcf=rcf),
        environment=EnvironmentSpec(adversary=adversary, detector=detector,
                                    cm=cm, crashes=crashes),
        workload=WorkloadSpec(instances=instances),
    ))
    return result.cha_run
