"""Ablation A1: CHAP with the veto-2 phase removed.

The paper credits its safety to a three-phase, four-colour structure
inherited from three-phase commit.  This ablation keeps the ballot phase
and a *single* veto phase (three colours: red < orange < green, output on
green), i.e. the two-phase-commit shape.  It is cheaper — two rounds per
instance — and **unsafe**: a node can turn green while a peer that
experienced a (possibly spurious) collision in the same veto phase stays
orange without advancing its ``prev-instance`` pointer.  If the green
node then crashes and the orange node leads, the new chain skips the
decided instance and Agreement breaks.

The missing veto-2 phase is exactly what closes this window in CHAP: an
orange node broadcasts a second veto, forcing the would-be-green node
down to yellow.  Benchmark A1 constructs the violating schedule and
counts spec violations for both protocols.
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.ballot import BallotPayload, VetoPayload
from ..core.cha import ChaCore, _NO_PAYLOADS
from ..net.messages import MIXED_TAGS, Message
from ..net.node import Process
from ..types import Instance, Round, Value

#: Rounds per instance for the ablated protocol.
TWO_PHASE_ROUNDS = 2


class TwoPhaseChaProcess(Process):
    """CHAP minus veto-2.  Colours: red < orange < green (no yellow)."""

    def __init__(self, *, propose: Callable[[Instance], Value],
                 cm_name: str = "C", tag: Any = "2pc-cha",
                 use_reference_history: bool | None = None,
                 use_reference_core: bool | None = None,
                 pool_payloads: bool = False) -> None:
        if use_reference_core is None:
            from ..core.slotted import reference_core_forced
            use_reference_core = reference_core_forced()
        self.use_reference_core = use_reference_core
        if use_reference_core:
            self.core = ChaCore(propose=propose, tag=tag,
                                use_reference_history=use_reference_history)
        else:
            from ..core.slotted import SlottedChaCore
            self.core = SlottedChaCore(
                propose=propose, tag=tag,
                use_reference_history=use_reference_history,
                pool_payloads=pool_payloads,
            )
        self.cm_name = cm_name

    def contend(self, r: Round) -> str | None:
        return self.cm_name

    def send(self, r: Round, active: bool) -> Any | None:
        if r % TWO_PHASE_ROUNDS == 0:
            return self.core.begin_instance_send(active)
        # Red nodes veto; no second chance.  Inert before the first
        # instance has begun (mid-grid power-up).
        return self.core.veto1_payload()

    def deliver_batch(self, r: Round, messages: tuple[Message, ...],
                      collision: bool, batch) -> None:
        """Batched delivery: tag filtering amortised through the round
        batch exactly as in :meth:`repro.core.cha.CHAProcess.deliver_batch`;
        both entrypoints share :meth:`_deliver_decoded`."""
        if not messages:
            mine = _NO_PAYLOADS
        else:
            tag = self.core.tag
            uniform = batch.uniform_tag()
            if uniform == tag:
                mine = [m.payload for m in messages]
            elif uniform is not MIXED_TAGS:
                mine = _NO_PAYLOADS
            else:
                mine = [m.payload for m in messages
                        if getattr(m.payload, "tag", None) == tag]
        self._deliver_decoded(r, mine, collision)

    def deliver(self, r: Round, messages: tuple[Message, ...],
                collision: bool) -> None:
        mine = [
            m.payload for m in messages
            if getattr(m.payload, "tag", None) == self.core.tag
        ]
        self._deliver_decoded(r, mine, collision)

    def _deliver_decoded(self, r: Round, mine, collision: bool) -> None:
        core = self.core
        if r % TWO_PHASE_ROUNDS == 0:
            ballots = [
                p.ballot for p in mine
                if isinstance(p, BallotPayload) and p.instance == core.k
            ]
            core.on_ballot_reception(ballots, collision)
            return
        if not core.has_instance():
            return  # pre-instance veto phase (mid-grid power-up): inert
        k = core.k
        veto = any(isinstance(p, VetoPayload) and p.instance == k
                   for p in mine)
        # Single veto phase: trouble demotes green straight to orange, and
        # the instance ends here.  Only green advances prev / outputs.
        core.on_veto1_reception(veto, collision)
        core.finish_instance_single_veto()

    @property
    def outputs(self):
        return self.core.outputs

    @property
    def proposals_made(self):
        return self.core.proposals_made


def run_two_phase(n: int, instances: int, *, adversary=None, detector=None,
                  cm=None, crashes=None, rcf: int = 0):
    """Two-phase ensemble runner mirroring :func:`repro.core.runner.run_cha`.

    Compatibility shim over the declarative experiment API
    (:class:`~repro.experiment.TwoPhaseCHA` on a cluster world).
    """
    from ..experiment import (
        ClusterWorld,
        EnvironmentSpec,
        ExperimentSpec,
        TwoPhaseCHA,
        WorkloadSpec,
    )
    from ..experiment.runner import run as run_experiment

    result = run_experiment(ExperimentSpec(
        protocol=TwoPhaseCHA(),
        world=ClusterWorld(n=n, rcf=rcf),
        environment=EnvironmentSpec(adversary=adversary, detector=detector,
                                    cm=cm, crashes=crashes),
        workload=WorkloadSpec(instances=instances),
    ))
    return result.cha_run
