"""Baselines the paper compares against (Sections 1.5, 3.4)."""

from .majority_rsm import Ack, Commit, MajorityRSMProcess, Propose
from .naive_rsm import NaiveBallotPayload, NaiveRSMProcess
from .three_phase_commit import (
    Decision,
    Participant,
    ParticipantState,
    ThreePhaseCommit,
    state_spread,
)

__all__ = [
    "Ack",
    "Commit",
    "Decision",
    "MajorityRSMProcess",
    "NaiveBallotPayload",
    "NaiveRSMProcess",
    "Participant",
    "ParticipantState",
    "Propose",
    "ThreePhaseCommit",
    "state_spread",
]
