"""Classic three-phase commit (Skeen 1981/82), CHAP's intellectual ancestor.

Section 1.4 notes CHAP "uses a novel strategy, inspired by three-phase
commit, to ensure consistent outputs despite collisions, lost messages,
and crash failures".  This module implements textbook 3PC as a
synchronous message-passing protocol so the library can demonstrate the
lineage — the can-commit / pre-commit / do-commit stages correspond to
CHAP's ballot / veto-1 / veto-2, and 3PC's non-blocking property under
single-site failure mirrors Lemma 5's one-shade bound.

The implementation is deliberately self-contained (it runs on an abstract
point-to-point network with scriptable message loss and crashes, not the
radio simulator) — it is a *reference comparator*, not a radio protocol;
the whole point of the paper is that this style of protocol does not
transplant directly onto a collision-prone broadcast channel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable


class Decision(enum.Enum):
    COMMIT = "commit"
    ABORT = "abort"


class ParticipantState(enum.Enum):
    """The classic 3PC state machine states."""

    INITIAL = "q"          # no vote yet
    WAITING = "w"          # voted yes, awaiting pre-commit
    PRECOMMITTED = "p"     # received pre-commit, awaiting do-commit
    COMMITTED = "c"
    ABORTED = "a"


@dataclass
class Participant:
    """One cohort member."""

    pid: int
    vote_yes: bool = True
    state: ParticipantState = ParticipantState.INITIAL
    crashed: bool = False

    def decision(self) -> Decision | None:
        if self.state is ParticipantState.COMMITTED:
            return Decision.COMMIT
        if self.state is ParticipantState.ABORTED:
            return Decision.ABORT
        return None


@dataclass
class ThreePhaseCommit:
    """A single 3PC transaction instance.

    ``lossy`` is the set of participant ids whose messages to/from the
    coordinator are lost this run; ``crash_after_phase`` crashes the
    coordinator after the named phase ('votes', 'precommit'), exercising
    the termination protocol.
    """

    participants: list[Participant]
    lossy: frozenset[int] = frozenset()
    crash_coordinator_after: str | None = None
    #: Phase-by-phase log, for tests and teaching output.
    log: list[str] = field(default_factory=list)

    def _reachable(self, p: Participant) -> bool:
        return not p.crashed and p.pid not in self.lossy

    def run(self) -> Decision:
        """Drive the instance to a coordinator decision (or termination
        protocol outcome when the coordinator crashes)."""
        # Phase 1: can-commit? / votes.
        self.log.append("phase1: can-commit?")
        votes = []
        for p in self.participants:
            if self._reachable(p) and p.vote_yes:
                p.state = ParticipantState.WAITING
                votes.append(True)
            elif self._reachable(p):
                p.state = ParticipantState.ABORTED
                votes.append(False)
            else:
                votes.append(False)  # silence counts as a no-vote

        if not all(votes):
            self.log.append("phase1: abort (missing/negative vote)")
            self._broadcast_abort()
            return Decision.ABORT

        if self.crash_coordinator_after == "votes":
            self.log.append("coordinator crashed after votes")
            return self._termination_protocol()

        # Phase 2: pre-commit.
        self.log.append("phase2: pre-commit")
        for p in self.participants:
            if self._reachable(p) and p.state is ParticipantState.WAITING:
                p.state = ParticipantState.PRECOMMITTED

        if self.crash_coordinator_after == "precommit":
            self.log.append("coordinator crashed after pre-commit")
            return self._termination_protocol()

        # Phase 3: do-commit.
        self.log.append("phase3: do-commit")
        for p in self.participants:
            if self._reachable(p) and p.state is ParticipantState.PRECOMMITTED:
                p.state = ParticipantState.COMMITTED
        return Decision.COMMIT

    def _broadcast_abort(self) -> None:
        for p in self.participants:
            if self._reachable(p) and p.state is not ParticipantState.COMMITTED:
                p.state = ParticipantState.ABORTED

    def _termination_protocol(self) -> Decision:
        """The cohort elects a survivor and decides from local states.

        3PC's key non-blocking property: the survivors' states can differ
        by at most one stage (compare Lemma 5's one-shade bound), so:
        any PRECOMMITTED survivor => commit is safe; otherwise abort.
        """
        survivors = [p for p in self.participants if not p.crashed]
        if any(p.state is ParticipantState.COMMITTED for p in survivors):
            decision = Decision.COMMIT
        elif any(p.state is ParticipantState.PRECOMMITTED for p in survivors):
            decision = Decision.COMMIT
        elif all(p.state is ParticipantState.ABORTED for p in survivors):
            decision = Decision.ABORT
        else:
            decision = Decision.ABORT
        self.log.append(f"termination protocol: {decision.value}")
        for p in survivors:
            p.state = (ParticipantState.COMMITTED if decision is Decision.COMMIT
                       else ParticipantState.ABORTED)
        return decision


def state_spread(participants: Iterable[Participant]) -> int:
    """Maximum stage distance between non-crashed participants.

    The 3PC analogue of Property 4's shade distance; the protocol keeps
    it at most 1 between adjacent commit stages.
    """
    order = {
        ParticipantState.ABORTED: 0,
        ParticipantState.INITIAL: 0,
        ParticipantState.WAITING: 1,
        ParticipantState.PRECOMMITTED: 2,
        ParticipantState.COMMITTED: 3,
    }
    stages = [order[p.state] for p in participants if not p.crashed]
    if not stages:
        return 0
    return max(stages) - min(stages)
