"""repro — Virtual Infrastructure for Collision-Prone Wireless Networks.

A complete Python reproduction of Chockler, Gilbert & Lynch (PODC 2008):

* :mod:`repro.net` — the slotted, collision-prone quasi-unit-disk radio
  model of Section 2, as a deterministic discrete-round simulator.
* :mod:`repro.detectors` — complete / eventually-accurate collision
  detectors (Properties 1-2).
* :mod:`repro.contention` — leader-election, exponential-backoff and
  regional contention managers (Property 3, Section 4.2).
* :mod:`repro.core` — **convergent history agreement** and the CHAP
  protocol of Figure 1, plus the checkpoint-CHA variant of Section 3.5
  and an executable CHA specification.
* :mod:`repro.vi` — the full virtual-infrastructure emulation of
  Section 4: schedules, replicas, clients, join/reset.
* :mod:`repro.baselines` — the naive full-history RSM and a
  majority-quorum RSM, the comparison points of Sections 1.5/3.4.
* :mod:`repro.apps` — applications the paper motivates (atomic memory,
  tracking, routing, robot coordination) built on virtual nodes.
* :mod:`repro.experiment` — the declarative experiment layer: one
  :class:`ExperimentSpec` describes world + environment + protocol +
  workload + metrics; :func:`run` executes any of them uniformly and
  :func:`sweep` fans parameter grids out over worker processes.
* :mod:`repro.bench` — the performance layer: seeded benchmark
  scenarios over every protocol family (``python -m repro.bench``
  emits ``BENCH_results.json``), with regression gating against the
  committed baseline.  The engine's indexed fast path is proven
  byte-identical to the reference channel by the differential suite;
  ``REPRO_REFERENCE_CHANNEL=1`` re-runs anything on the slow path.
* :mod:`repro.service` — consensus as a service: an asyncio session
  front-end over one live world (``python -m repro.service``), with a
  newline-delimited-JSON wire protocol, per-session backpressure, and
  a seeded load harness feeding the ``svc-*`` bench scenarios.

Quickstart::

    import repro

    result = (repro.scenario()
              .nodes(5).instances(20)
              .cha()
              .metrics("decided_instances", "max_message_size")
              .invariants("all").liveness_by(1)
              .run())
    result.assert_ok()

or, fully declaratively::

    spec = repro.ExperimentSpec(
        protocol=repro.CHA(),
        world=repro.ClusterWorld(n=5),
        workload=repro.WorkloadSpec(instances=20),
        metrics=repro.MetricsSpec(metrics=("decided_instances",)),
    )
    result = repro.run(spec)
    points = repro.sweep(spec, {"world__n": (3, 5, 9)}, workers=4)

The classic entrypoints (:func:`run_cha`, :class:`repro.vi.VIWorld`, the
baseline runners) remain as thin shims over the same machinery.
"""

from .core import (
    Ballot,
    CHAProcess,
    ChaCore,
    CheckpointCHAProcess,
    History,
    ROUNDS_PER_INSTANCE,
    calculate_history,
    calculate_history_reference,
    check_agreement,
    check_all,
    check_liveness,
    check_validity,
    find_liveness_point,
    run_cha,
)
from .experiment import (
    CHA,
    CheckpointCHA,
    ClusterWorld,
    DeployedWorld,
    DeviceSpec,
    EnvironmentSpec,
    ExperimentResult,
    ExperimentSpec,
    MajorityRSM,
    MetricsSpec,
    NaiveRSM,
    ScenarioBuilder,
    SweepPoint,
    ThreePhaseCommit,
    TwoPhaseCHA,
    VIEmulation,
    WorkloadSpec,
    run,
    scenario,
    sweep,
)
from .types import BOTTOM, Color
from . import net, detectors, contention, core, experiment
# Imported last: these layers sit on top of experiment.
from . import faults, service
from .faults import FaultPlan

__version__ = "1.1.0"

__all__ = [
    "BOTTOM",
    "Ballot",
    "CHA",
    "CHAProcess",
    "ChaCore",
    "CheckpointCHA",
    "CheckpointCHAProcess",
    "ClusterWorld",
    "Color",
    "DeployedWorld",
    "DeviceSpec",
    "EnvironmentSpec",
    "ExperimentResult",
    "ExperimentSpec",
    "FaultPlan",
    "History",
    "MajorityRSM",
    "MetricsSpec",
    "NaiveRSM",
    "ROUNDS_PER_INSTANCE",
    "ScenarioBuilder",
    "SweepPoint",
    "ThreePhaseCommit",
    "TwoPhaseCHA",
    "VIEmulation",
    "WorkloadSpec",
    "calculate_history",
    "calculate_history_reference",
    "check_agreement",
    "check_all",
    "check_liveness",
    "check_validity",
    "contention",
    "core",
    "detectors",
    "experiment",
    "faults",
    "find_liveness_point",
    "net",
    "run",
    "run_cha",
    "scenario",
    "service",
    "sweep",
    "__version__",
]
