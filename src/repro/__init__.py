"""repro — Virtual Infrastructure for Collision-Prone Wireless Networks.

A complete Python reproduction of Chockler, Gilbert & Lynch (PODC 2008):

* :mod:`repro.net` — the slotted, collision-prone quasi-unit-disk radio
  model of Section 2, as a deterministic discrete-round simulator.
* :mod:`repro.detectors` — complete / eventually-accurate collision
  detectors (Properties 1-2).
* :mod:`repro.contention` — leader-election, exponential-backoff and
  regional contention managers (Property 3, Section 4.2).
* :mod:`repro.core` — **convergent history agreement** and the CHAP
  protocol of Figure 1, plus the checkpoint-CHA variant of Section 3.5
  and an executable CHA specification.
* :mod:`repro.vi` — the full virtual-infrastructure emulation of
  Section 4: schedules, replicas, clients, join/reset.
* :mod:`repro.baselines` — the naive full-history RSM and a
  majority-quorum RSM, the comparison points of Sections 1.5/3.4.
* :mod:`repro.apps` — applications the paper motivates (atomic memory,
  tracking, routing, robot coordination) built on virtual nodes.

Quickstart::

    from repro import run_cha, check_all

    run = run_cha(n=5, instances=20)
    check_all(run.outputs, run.proposals, liveness_by=1)
"""

from .core import (
    Ballot,
    CHAProcess,
    ChaCore,
    CheckpointCHAProcess,
    History,
    ROUNDS_PER_INSTANCE,
    calculate_history,
    check_agreement,
    check_all,
    check_liveness,
    check_validity,
    find_liveness_point,
    run_cha,
)
from .types import BOTTOM, Color
from . import net, detectors, contention, core

__version__ = "1.0.0"

__all__ = [
    "BOTTOM",
    "Ballot",
    "CHAProcess",
    "ChaCore",
    "CheckpointCHAProcess",
    "Color",
    "History",
    "ROUNDS_PER_INSTANCE",
    "calculate_history",
    "check_agreement",
    "check_all",
    "check_liveness",
    "check_validity",
    "contention",
    "core",
    "detectors",
    "find_liveness_point",
    "net",
    "run_cha",
    "__version__",
]
