"""``python -m repro.service`` — serve one live world over TCP.

Builds a CHA-family cluster world from CLI flags, serves it on the
NDJSON wire protocol, releases the world clock, and exits once the
workload completes and the sessions have drained.  ``--describe``
validates the configuration and prints it as JSON without opening a
socket or running a round — the CI console-script smoke test.
"""

from __future__ import annotations

import argparse
import asyncio
import json

from ..core.cha import ROUNDS_PER_INSTANCE
from ..experiment.spec import (
    CHA,
    ClusterWorld,
    ExperimentSpec,
    NaiveRSM,
    TwoPhaseCHA,
    WorkloadSpec,
)
from .server import ConsensusService, ServiceConfig

_PROTOCOLS = {
    "cha": CHA,
    "two-phase-cha": TwoPhaseCHA,
    "naive-rsm": NaiveRSM,
}


def build_spec(args: argparse.Namespace) -> ExperimentSpec:
    return ExperimentSpec(
        protocol=_PROTOCOLS[args.protocol](),
        world=ClusterWorld(n=args.nodes, rcf=args.rcf),
        workload=WorkloadSpec(instances=args.instances),
        # A long-running served world must not accumulate an unbounded
        # trace; the differential suite builds its own traced specs.
        keep_trace=False,
    )


def build_config(args: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        host=args.host,
        port=args.port,
        tick_interval=args.tick_interval,
        rounds_per_tick=args.rounds_per_tick,
        queue_limit=args.queue_limit,
        max_sessions=args.max_sessions,
    )


async def _serve(spec: ExperimentSpec, config: ServiceConfig) -> dict:
    service = ConsensusService(spec, config)
    server = await service.serve_tcp()
    host, port = service.tcp_address
    print(f"repro.service: serving {spec.world.n}-node "
          f"{type(spec.protocol).__name__} world on {host}:{port} "
          f"(tick={config.tick_interval}s x {config.rounds_per_tick} rounds)")
    result = await service.run_world()
    totals = service.sessions.totals()
    await service.shutdown("world complete")
    server.close()
    return {
        "rounds": int(result.timings.get("rounds", 0)),
        "decisions": service.driver.decisions_published,
        "invariants": dict(result.invariants),
        "sessions": totals,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve a live consensus world over newline-delimited "
                    "JSON (see README: 'Serving a live world').",
    )
    parser.add_argument("--protocol", choices=sorted(_PROTOCOLS),
                        default="cha",
                        help="protocol family to serve (default: %(default)s)")
    parser.add_argument("--nodes", type=int, default=24,
                        help="cluster size (default: %(default)s)")
    parser.add_argument("--instances", type=int, default=1000,
                        help="consensus instances the world runs before "
                             "completing (default: %(default)s)")
    parser.add_argument("--rcf", type=int, default=0,
                        help="contention-stabilisation round (default: 0)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default: 0 = ephemeral, printed "
                             "at startup)")
    parser.add_argument("--tick-interval", type=float, default=0.05,
                        help="seconds of real time per world tick "
                             "(default: %(default)s; 0 runs flat out)")
    parser.add_argument("--rounds-per-tick", type=int,
                        default=ROUNDS_PER_INSTANCE,
                        help="communication rounds advanced per tick "
                             "(default: %(default)s = one CHA instance)")
    parser.add_argument("--queue-limit", type=int, default=1024,
                        help="per-session event queue bound; a slower "
                             "consumer drops oldest events "
                             "(default: %(default)s)")
    parser.add_argument("--max-sessions", type=int, default=10_000,
                        help="concurrent session cap (default: %(default)s)")
    parser.add_argument("--describe", action="store_true",
                        help="validate the configuration, print it as "
                             "JSON, and exit without serving")
    args = parser.parse_args(argv)

    spec = build_spec(args)
    spec.validate()
    config = build_config(args)
    if args.describe:
        print(json.dumps({
            "protocol": args.protocol,
            "world": {"n": args.nodes, "rcf": args.rcf},
            "workload": {"instances": args.instances},
            "service": {
                "host": config.host, "port": config.port,
                "tick_interval": config.tick_interval,
                "rounds_per_tick": config.rounds_per_tick,
                "queue_limit": config.queue_limit,
                "max_sessions": config.max_sessions,
            },
        }, indent=2, sort_keys=True))
        return 0

    summary = _run(spec, config)
    print(f"repro.service: world complete after {summary['rounds']} rounds, "
          f"{summary['decisions']} decisions; "
          f"served {summary['sessions']['opened']} session(s) "
          f"(peak {summary['sessions']['peak']}), invariants "
          f"{summary['invariants']}")
    return 0


def _run(spec: ExperimentSpec, config: ServiceConfig) -> dict:
    return asyncio.run(_serve(spec, config))


if __name__ == "__main__":
    raise SystemExit(main())
