"""``python -m repro.service`` — serve live worlds over TCP.

Builds a CHA-family cluster world template from CLI flags, pre-creates
``--worlds`` pinned worlds from it (``w1`` … ``wN``), serves them on
the NDJSON wire protocol, releases the world clocks, and exits once the
workloads complete and the sessions have drained.  ``--describe``
validates the configuration and prints it — together with the
machine-readable op/event catalog derived from
:mod:`repro.service.events` — as JSON without opening a socket or
running a round; ``docs/WIRE_PROTOCOL.md`` is pinned against that
catalog by the doc-drift test.
"""

from __future__ import annotations

import argparse
import asyncio
import json

from ..core.cha import ROUNDS_PER_INSTANCE
from ..experiment.spec import (
    CHA,
    ClusterWorld,
    ExperimentSpec,
    NaiveRSM,
    TwoPhaseCHA,
    WorkloadSpec,
)
from .events import catalog
from .server import ConsensusService, ServiceConfig

_PROTOCOLS = {
    "cha": CHA,
    "two-phase-cha": TwoPhaseCHA,
    "naive-rsm": NaiveRSM,
}


def build_spec(args: argparse.Namespace) -> ExperimentSpec:
    return ExperimentSpec(
        protocol=_PROTOCOLS[args.protocol](),
        world=ClusterWorld(n=args.nodes, rcf=args.rcf),
        workload=WorkloadSpec(instances=args.instances),
        # A long-running served world must not accumulate an unbounded
        # trace; the differential suite builds its own traced specs.
        keep_trace=False,
    )


def build_config(args: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        host=args.host,
        port=args.port,
        tick_interval=args.tick_interval,
        rounds_per_tick=args.rounds_per_tick,
        queue_limit=args.queue_limit,
        max_sessions=args.max_sessions,
        worlds=args.worlds,
        max_worlds=args.max_worlds,
        idle_world_grace_s=args.idle_grace,
        reaper_interval_s=args.idle_grace / 2 if args.idle_grace > 0 else 0.0,
    )


def describe(args: argparse.Namespace, config: ServiceConfig) -> dict:
    """What ``--describe`` prints: the config plus the wire catalog."""
    return {
        "config": {
            "protocol": args.protocol,
            "world": {"n": args.nodes, "rcf": args.rcf},
            "workload": {"instances": args.instances},
            "service": {
                "host": config.host, "port": config.port,
                "tick_interval": config.tick_interval,
                "rounds_per_tick": config.rounds_per_tick,
                "queue_limit": config.queue_limit,
                "max_sessions": config.max_sessions,
                "worlds": config.worlds,
                "max_worlds": config.max_worlds,
                "idle_world_grace_s": config.idle_world_grace_s,
            },
        },
        "catalog": catalog(),
    }


async def _serve(spec: ExperimentSpec, config: ServiceConfig) -> dict:
    service = ConsensusService(spec, config)
    server = await service.serve_tcp()
    host, port = service.tcp_address
    print(f"repro.service: serving {config.worlds} x {spec.world.n}-node "
          f"{type(spec.protocol).__name__} world(s) on {host}:{port} "
          f"(tick={config.tick_interval}s x {config.rounds_per_tick} rounds)")
    results = await service.run_worlds()
    totals = service.sessions.totals()
    decisions = sum(entry.driver.decisions_published
                    for entry in service.registry)
    await service.shutdown("world complete")
    server.close()
    return {
        "rounds": sum(int(result.timings.get("rounds", 0))
                      for result in results.values()),
        "worlds": len(results),
        "decisions": decisions,
        "invariants": {name: dict(result.invariants)
                       for name, result in results.items()},
        "sessions": totals,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve live consensus worlds over newline-delimited "
                    "JSON (see docs/WIRE_PROTOCOL.md).",
    )
    parser.add_argument("--protocol", choices=sorted(_PROTOCOLS),
                        default="cha",
                        help="protocol family to serve (default: %(default)s)")
    parser.add_argument("--nodes", type=int, default=24,
                        help="cluster size (default: %(default)s)")
    parser.add_argument("--instances", type=int, default=1000,
                        help="consensus instances each world runs before "
                             "completing (default: %(default)s)")
    parser.add_argument("--rcf", type=int, default=0,
                        help="contention-stabilisation round (default: 0)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default: 0 = ephemeral, printed "
                             "at startup)")
    parser.add_argument("--tick-interval", type=float, default=0.05,
                        help="seconds of real time per world tick "
                             "(default: %(default)s; 0 runs flat out)")
    parser.add_argument("--rounds-per-tick", type=int,
                        default=ROUNDS_PER_INSTANCE,
                        help="communication rounds advanced per tick "
                             "(default: %(default)s = one CHA instance)")
    parser.add_argument("--queue-limit", type=int, default=1024,
                        help="per-session event queue bound; a slower "
                             "consumer drops oldest events "
                             "(default: %(default)s)")
    parser.add_argument("--max-sessions", type=int, default=10_000,
                        help="concurrent session cap (default: %(default)s)")
    parser.add_argument("--worlds", type=int, default=1,
                        help="pinned worlds pre-created from the template, "
                             "named w1..wN (default: %(default)s)")
    parser.add_argument("--max-worlds", type=int, default=64,
                        help="cap on live worlds, lazily created ones "
                             "included (default: %(default)s)")
    parser.add_argument("--idle-grace", type=float, default=30.0,
                        help="seconds an unpinned world may sit without "
                             "sessions before eviction (default: %(default)s)")
    parser.add_argument("--describe", action="store_true",
                        help="validate the configuration, print it plus the "
                             "op/event catalog as JSON, and exit without "
                             "serving")
    args = parser.parse_args(argv)

    spec = build_spec(args)
    spec.validate()
    config = build_config(args)
    if args.describe:
        print(json.dumps(describe(args, config), indent=2, sort_keys=True))
        return 0

    summary = _run(spec, config)
    print(f"repro.service: {summary['worlds']} world(s) complete after "
          f"{summary['rounds']} total rounds, "
          f"{summary['decisions']} decisions; "
          f"served {summary['sessions']['opened']} session(s) "
          f"(peak {summary['sessions']['peak']}), invariants "
          f"{summary['invariants']}")
    return 0


def _run(spec: ExperimentSpec, config: ServiceConfig) -> dict:
    return asyncio.run(_serve(spec, config))


if __name__ == "__main__":
    raise SystemExit(main())
