"""Seeded load harness for the consensus service.

Drives one in-process :class:`~.server.ConsensusService` with a
population of closed-loop clients (each proposes, waits for its ack and
the decision of the acked instance, then proposes again) shaped by a
:class:`LoadProfile`:

* ``flash`` — every client attaches at once (flash crowd);
* ``ramp`` — arrivals staggered across :attr:`LoadProfile.ramp_s`;
* ``churn`` — flash attach, but after each observed decision a client
  may disconnect and reconnect as a brand-new session (seeded RNG).

With :attr:`LoadProfile.worlds` > 1 the service pre-creates that many
pinned worlds from the template spec and the population is dealt
round-robin across them (``w1`` … ``wN``); the report then carries a
``per_world`` breakdown (sessions, decisions, latency percentiles,
invariants per world) alongside the aggregate numbers.

The worlds themselves stay deterministic — client traffic only lands
proposals in each world's :class:`~.driver.ProposalLedger` — while the
*measured* numbers (proposals/sec, decision-latency percentiles,
dropped events) characterise the front end under concurrency.
:func:`run_load_sync` is the entrypoint the bench runner calls for
``svc-*`` scenarios.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field, replace

from ..errors import ServiceError
from ..experiment.spec import ExperimentSpec
from ..types import Sentinel
from .server import ConsensusService, InProcessClient, ServiceConfig

PATTERNS = ("flash", "ramp", "churn")


@dataclass(frozen=True)
class LoadProfile:
    """One seeded client population."""

    sessions: int
    pattern: str = "flash"
    proposals_per_session: int = 1
    ramp_s: float = 0.25  #: arrival spread for the ``ramp`` pattern.
    churn_rate: float = 0.5  #: P(reconnect after a decision), ``churn``.
    seed: int = 0
    #: Upper bound on the propose→decision wait.  A decision that was
    #: drop-oldest-evicted from a slow session's queue never arrives, so
    #: an unbounded wait deadlocks the client; a timed-out sample counts
    #: as ``dropped_samples`` and the client moves on.
    decision_wait_s: float = 60.0
    #: Worlds to spread the population across (round-robin, w1..wN).
    worlds: int = 1

    def __post_init__(self) -> None:
        if self.pattern not in PATTERNS:
            raise ValueError(
                f"unknown load pattern {self.pattern!r}; known: {PATTERNS}"
            )
        if self.sessions < 1:
            raise ValueError("sessions must be >= 1")
        if self.decision_wait_s <= 0:
            raise ValueError("decision_wait_s must be positive")
        if self.worlds < 1:
            raise ValueError("worlds must be >= 1")
        if self.worlds > self.sessions:
            raise ValueError("worlds must not exceed sessions (every "
                             "world needs at least one client)")


@dataclass
class _Tally:
    """Mutable counters shared by every client coroutine."""

    sessions_opened: int = 0
    proposals_submitted: int = 0
    proposals_accepted: int = 0
    proposals_rejected: int = 0
    decisions_observed: int = 0
    unserved: int = 0  #: proposals whose decision never arrived.
    reconnects: int = 0
    dropped_events: int = 0
    #: Latency samples abandoned because the decision wait timed out
    #: (the event was evicted from the session queue, or the world is
    #: slower than :attr:`LoadProfile.decision_wait_s`).
    dropped_samples: int = 0
    latencies_s: list[float] = field(default_factory=list)


def percentiles(samples: list[float],
                points: tuple[float, ...] = (0.5, 0.9, 0.99)) -> dict[str, float]:
    """Nearest-rank percentiles plus mean/max/count (empty-safe)."""
    if not samples:
        return {"count": 0}
    ordered = sorted(samples)
    out: dict[str, float] = {}
    for p in points:
        rank = min(len(ordered) - 1, max(0, int(p * len(ordered) + 0.5) - 1))
        out[f"p{int(p * 100)}"] = ordered[rank]
    out["mean"] = sum(ordered) / len(ordered)
    out["max"] = ordered[-1]
    out["count"] = len(ordered)
    return out


#: Sentinel: the decision wait exceeded ``decision_wait_s`` — the event
#: was (most likely) drop-oldest-evicted and will never arrive.
_TIMED_OUT = Sentinel(__name__, "_TIMED_OUT")


async def _await_decision(client: InProcessClient, instance: int,
                          wait_s: float) -> dict | object | None:
    """Consume the stream until ``instance`` decides, bounded by ``wait_s``.

    Returns ``None`` if the world completes (or the service shuts down)
    without that decision arriving — which happens legitimately when the
    workload ran out — and :data:`_TIMED_OUT` once ``wait_s`` elapses
    with no decision.  The timeout is what keeps a closed-loop client
    from waiting forever on a decision event the slow-consumer policy
    evicted from its queue before it was read.
    """
    deadline = time.monotonic() + wait_s
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return _TIMED_OUT
        try:
            event = await asyncio.wait_for(client.next_event(), remaining)
        except asyncio.TimeoutError:
            return _TIMED_OUT
        kind = event["type"]
        if kind == "decision" and event["instance"] == instance:
            return event
        if kind in ("world-complete", "shutdown"):
            return None


async def _client_loop(service: ConsensusService, profile: LoadProfile,
                       rng: random.Random, index: int, tally: _Tally,
                       world: str) -> None:
    if profile.pattern == "ramp" and profile.sessions > 1:
        await asyncio.sleep(profile.ramp_s * index / (profile.sessions - 1))
    try:
        client = service.connect(client=f"loadgen-{index}", world=world)
    except ServiceError:
        return
    driver = service.registry.get(world).driver
    tally.sessions_opened += 1
    await client.next_event()  # the welcome snapshot
    try:
        for attempt in range(profile.proposals_per_session):
            if driver.complete:
                tally.unserved += (profile.proposals_per_session - attempt)
                break
            sent_at = time.perf_counter()
            tally.proposals_submitted += 1
            client.propose(f"load{index}.{attempt}", request_id=str(attempt))
            # Closed loop: wait for the ack (carrying the instance the
            # proposal landed in), then for that instance's decision.
            instance = None
            while True:
                event = await client.next_event()
                if event["type"] == "ack" and event.get("id") == str(attempt):
                    instance = event["instance"]
                    break
                if event["type"] == "error" and event.get("id") == str(attempt):
                    tally.proposals_rejected += 1
                    break
                if event["type"] in ("world-complete", "shutdown"):
                    break
            if instance is None:
                tally.unserved += (profile.proposals_per_session - attempt)
                break
            tally.proposals_accepted += 1
            decision = await _await_decision(client, instance,
                                             profile.decision_wait_s)
            if decision is _TIMED_OUT:
                # The decision exists in the world but its event never
                # reached this session (evicted, or simply too slow):
                # abandon the latency sample and keep the loop closed.
                tally.dropped_samples += 1
                continue
            if decision is None:
                tally.unserved += (profile.proposals_per_session - attempt)
                break
            tally.decisions_observed += 1
            tally.latencies_s.append(time.perf_counter() - sent_at)
            if (profile.pattern == "churn"
                    and attempt + 1 < profile.proposals_per_session
                    and rng.random() < profile.churn_rate):
                tally.dropped_events += client.dropped
                client.close()
                tally.reconnects += 1
                try:
                    client = service.connect(client=f"loadgen-{index}r",
                                             world=world)
                except ServiceError:
                    tally.unserved += (profile.proposals_per_session
                                       - attempt - 1)
                    return
                tally.sessions_opened += 1
                await client.next_event()
    finally:
        tally.dropped_events += client.dropped
        client.close()


async def run_load(spec: ExperimentSpec, profile: LoadProfile,
                   config: ServiceConfig = ServiceConfig()) -> dict:
    """Serve ``spec``, drive the client population, report the numbers.

    ``profile.worlds`` wins over ``config.worlds``: the service is built
    with exactly the world count the population is dealt across.
    """
    if config.worlds != profile.worlds:
        config = replace(config, worlds=profile.worlds)
    service = ConsensusService(spec, config)
    world_names = [f"w{i + 1}" for i in range(profile.worlds)]
    rng = random.Random(profile.seed)
    tallies = {name: _Tally() for name in world_names}
    client_rngs = [random.Random(rng.getrandbits(64))
                   for _ in range(profile.sessions)]
    started = time.perf_counter()
    clients = [
        asyncio.ensure_future(
            _client_loop(service, profile, client_rngs[i], i,
                         tallies[world_names[i % profile.worlds]],
                         world_names[i % profile.worlds]))
        for i in range(profile.sessions)
    ]
    service.start_world()
    await asyncio.gather(*clients)
    # Clients done; let the worlds finish so rounds/sec means something.
    results = await service.run_worlds()
    wall_s = time.perf_counter() - started
    await service.shutdown()
    drivers = {name: service.registry.get(name).driver
               for name in world_names}
    rounds = sum(driver.current_round for driver in drivers.values())
    tally = _Tally()
    for t in tallies.values():
        tally.sessions_opened += t.sessions_opened
        tally.proposals_submitted += t.proposals_submitted
        tally.proposals_accepted += t.proposals_accepted
        tally.proposals_rejected += t.proposals_rejected
        tally.decisions_observed += t.decisions_observed
        tally.unserved += t.unserved
        tally.reconnects += t.reconnects
        tally.dropped_events += t.dropped_events
        tally.dropped_samples += t.dropped_samples
        tally.latencies_s.extend(t.latencies_s)
    sessions_per_world = {
        name: sum(1 for i in range(profile.sessions)
                  if world_names[i % profile.worlds] == name)
        for name in world_names
    }
    per_world = {
        name: {
            "sessions": sessions_per_world[name],
            "sessions_opened": tallies[name].sessions_opened,
            "rounds": drivers[name].current_round,
            "proposals_accepted": tallies[name].proposals_accepted,
            "decisions_observed": tallies[name].decisions_observed,
            "unserved": tallies[name].unserved,
            "dropped_events": tallies[name].dropped_events,
            "dropped_samples": tallies[name].dropped_samples,
            "decision_latency_s": percentiles(tallies[name].latencies_s),
            "world_decisions": drivers[name].decisions_published,
            "invariants": dict(results[name].invariants)
            if name in results else {},
        }
        for name in world_names
    }
    # Aggregate invariants: ok only when every world's verdict is ok.
    invariants: dict[str, str] = {}
    for name in world_names:
        for key, verdict in per_world[name]["invariants"].items():
            if verdict != "ok":
                invariants[key] = f"{name}: {verdict}"
            elif key not in invariants:
                invariants[key] = verdict
    return {
        "profile": {
            "pattern": profile.pattern,
            "sessions": profile.sessions,
            "proposals_per_session": profile.proposals_per_session,
            "seed": profile.seed,
            "worlds": profile.worlds,
        },
        "world": {
            "n": next(iter(drivers.values())).nodes,
            "instances": spec.workload.instances,
            "rounds_per_tick": config.rounds_per_tick,
        },
        "wall_s": wall_s,
        "rounds": rounds,
        "rounds_per_sec": rounds / wall_s if wall_s > 0 else 0.0,
        "sessions_opened": tally.sessions_opened,
        "peak_sessions": service.sessions.peak,
        "reconnects": tally.reconnects,
        "proposals_submitted": tally.proposals_submitted,
        "proposals_accepted": tally.proposals_accepted,
        "proposals_rejected": tally.proposals_rejected,
        "proposals_per_sec": (tally.proposals_submitted / wall_s
                              if wall_s > 0 else 0.0),
        "decisions_observed": tally.decisions_observed,
        "unserved": tally.unserved,
        "dropped_events": tally.dropped_events,
        "dropped_samples": tally.dropped_samples,
        "decision_latency_s": percentiles(tally.latencies_s),
        "world_decisions": sum(d.decisions_published
                               for d in drivers.values()),
        "per_world": per_world,
        "invariants": invariants,
    }


def run_load_sync(spec: ExperimentSpec, profile: LoadProfile,
                  config: ServiceConfig = ServiceConfig()) -> dict:
    """Blocking wrapper (what the bench runner calls)."""
    return asyncio.run(run_load(spec, profile, config))
