"""Sessions: one client's window onto one named world.

A :class:`Session` owns exactly one :class:`~repro.service.driver.SessionQueue`
subscribed — through the session's own :meth:`~Session.event_filter` —
to the event bus of the world it is bound to, plus the request dispatch
shared by every transport.  The filter is where the read models live:
``watch_instance`` adds to the session's watch set (``instance-state``
events pass only for watched instances) and ``subscribe_prefix`` narrows
the ``decision`` feed to matching values.  Filters run at publish time,
before enqueue, so they cost non-watchers nothing and never stall a
world's clock.

``attach_world`` re-binds a session: the queue moves to the new world's
bus with its ``seq`` stream intact, instance watches are cleared
(instance numbers are world-local), and the value-prefix filter
persists.

:class:`SessionManager` is the registry — open, close, drain — and the
only holder of strong references: closing a session unsubscribes its
queue, detaches it from its world's session count, and drops it from
the table, after which nothing in the service keeps it alive (the
lifecycle suite pins this with weakrefs).
"""

from __future__ import annotations

from ..errors import ServiceError
from .driver import SessionQueue, WorldDriver
from .events import (
    ack_event,
    bye_event,
    error_event,
    pong_event,
    stats_event,
    subscribed_event,
    unwatched_event,
    watching_event,
    welcome_event,
    world_attached_event,
    world_created_event,
    worlds_event,
)
from .registry import WorldEntry, WorldRegistry


class Session:
    """One open session: a queue, a world binding, filters, counters."""

    def __init__(self, session_id: str, entry: WorldEntry,
                 queue: SessionQueue, *, registry: WorldRegistry,
                 client: str | None = None) -> None:
        self.session_id = session_id
        self.client = client
        self.queue = queue
        self.closed = False
        self.proposals_submitted = 0
        self.proposals_accepted = 0
        self._entry = entry
        self._registry = registry
        self._watched: set[int] = set()
        self._prefix: str | None = None

    @property
    def world_entry(self) -> WorldEntry:
        return self._entry

    @property
    def world(self) -> str:
        return self._entry.name

    @property
    def _driver(self) -> WorldDriver:
        return self._entry.driver

    # -- the read models ----------------------------------------------

    def event_filter(self, event: dict) -> bool:
        """Publish-time gate for this session's queue.

        ``instance-state`` events pass only for watched instances;
        ``decision`` events pass the value-prefix filter (an all-bottom
        decision's ``value`` is ``None``, which no non-empty prefix
        matches); everything else always passes.
        """
        kind = event.get("type")
        if kind == "instance-state":
            return event["instance"] in self._watched
        if kind == "decision" and self._prefix is not None:
            value = event.get("value")
            return isinstance(value, str) and value.startswith(self._prefix)
        return True

    def stats(self) -> dict:
        return {
            "session": self.session_id,
            "world": self._entry.name,
            "round": self._driver.current_round,
            "next_instance": self._driver.ledger.next_open,
            "proposals_submitted": self.proposals_submitted,
            "proposals_accepted": self.proposals_accepted,
            "events_delivered": self.queue.delivered,
            "events_dropped": self.queue.dropped,
            "events_pending": len(self.queue),
            "watched_instances": len(self._watched),
            "value_prefix": self._prefix,
        }

    # -- dispatch ------------------------------------------------------

    def handle(self, request: dict) -> bool:
        """Dispatch one validated request; responses land on the queue.

        Returns ``False`` when the session asked to close (``bye``) —
        transports then flush and disconnect.
        """
        if self.closed:
            raise ServiceError(f"session {self.session_id!r} is closed")
        op = request["op"]
        request_id = request.get("id")
        if op == "propose":
            self.proposals_submitted += 1
            try:
                instance = self._driver.submit(
                    request["value"],
                    instance=request.get("instance"),
                    node=request.get("node"),
                )
            except ServiceError as exc:
                self.queue.put(error_event(str(exc), request_id=request_id))
            else:
                self.proposals_accepted += 1
                self.queue.put(ack_event(instance=instance,
                                         request_id=request_id))
        elif op == "ping":
            self.queue.put(pong_event(round_=self._driver.current_round))
        elif op == "stats":
            self.queue.put(stats_event(self.stats()))
        elif op == "create_world":
            self._create_world(request, request_id)
        elif op == "attach_world":
            self._attach_world(request["world"], request_id)
        elif op == "worlds":
            self.queue.put(worlds_event(self._registry.describe(),
                                        request_id=request_id))
        elif op == "watch_instance":
            instance = request["instance"]
            self._watched.add(instance)
            self.queue.put(watching_event(
                world=self._entry.name,
                state=self._driver.instance_state(instance),
                request_id=request_id,
            ))
        elif op == "unwatch_instance":
            self._watched.discard(request["instance"])
            self.queue.put(unwatched_event(instance=request["instance"],
                                           request_id=request_id))
        elif op == "subscribe_prefix":
            # "" clears the filter; the ack echoes what is now active.
            self._prefix = request["prefix"] or None
            self.queue.put(subscribed_event(prefix=self._prefix,
                                            request_id=request_id))
        elif op == "bye":
            self.queue.put(bye_event())
            return False
        elif op == "hello":
            self.queue.put(error_event(
                "session already open; 'hello' is a connection greeting"
            ))
        else:  # pragma: no cover - the wire layer validates ops
            raise ServiceError(f"unhandled op {op!r}")
        return True

    def _create_world(self, request: dict, request_id: str | None) -> None:
        spec = self._registry.template
        overrides = {}
        if request.get("nodes") is not None:
            overrides["world__n"] = request["nodes"]
        if request.get("instances") is not None:
            overrides["workload__instances"] = request["instances"]
        if overrides:
            spec = spec.override(**overrides)
        try:
            entry = self._registry.create(request.get("world"), spec)
        except ServiceError as exc:
            self.queue.put(error_event(str(exc), request_id=request_id))
            return
        self.queue.put(world_created_event(
            world=entry.name,
            spec_hash=entry.spec_hash,
            nodes=entry.driver.nodes,
            instances=getattr(entry.driver.spec.workload, "instances", None),
            request_id=request_id,
        ))

    def _attach_world(self, name: str, request_id: str | None) -> None:
        try:
            target = self._registry.get(name)
        except ServiceError as exc:
            self.queue.put(error_event(str(exc), request_id=request_id))
            return
        previous = self._entry
        previous.driver.bus.unsubscribe(self.session_id)
        self._registry.detach(previous.name)
        self._entry = self._registry.attach(target.name)
        # Watches are world-local instance numbers; the prefix filter is
        # about values and survives the move.
        self._watched.clear()
        self._entry.driver.bus.attach(self.session_id, self.queue,
                                      self.event_filter)
        self.queue.put(world_attached_event(
            snapshot=self._entry.driver.snapshot(), request_id=request_id))


class SessionManager:
    """Open/close registry; the service's only strong session refs."""

    def __init__(self, registry: WorldRegistry, *, queue_limit: int = 1024,
                 max_sessions: int = 10_000) -> None:
        self._registry = registry
        self._queue_limit = queue_limit
        self._max_sessions = max_sessions
        self._sessions: dict[str, Session] = {}
        self._opened = 0
        self.peak = 0

    @property
    def active(self) -> int:
        return len(self._sessions)

    @property
    def opened(self) -> int:
        """Sessions ever opened (reconnects count again)."""
        return self._opened

    def sessions(self) -> list[Session]:
        return list(self._sessions.values())

    def open(self, *, client: str | None = None,
             world: str | None = None) -> Session:
        """Attach a session to ``world``; its first event is ``welcome``.

        ``world`` defaults to the registry's first (pinned) world.
        Unknown worlds raise :class:`~repro.errors.ServiceError` before
        any state changes.
        """
        if len(self._sessions) >= self._max_sessions:
            raise ServiceError(
                f"session limit reached ({self._max_sessions})"
            )
        if world is None:
            names = self._registry.names()
            if not names:
                raise ServiceError("the service has no worlds")
            world = names[0]
        entry = self._registry.attach(world)
        self._opened += 1
        session_id = f"s{self._opened}"
        queue = SessionQueue(self._queue_limit)
        session = Session(session_id, entry, queue,
                          registry=self._registry, client=client)
        entry.driver.bus.attach(session_id, queue, session.event_filter)
        self._sessions[session_id] = session
        self.peak = max(self.peak, len(self._sessions))
        queue.put(welcome_event(session=session_id,
                                snapshot=entry.driver.snapshot()))
        return session

    def close(self, session: Session) -> None:
        """Detach: unsubscribe the queue and forget the session."""
        session.closed = True
        entry = session.world_entry
        entry.driver.bus.unsubscribe(session.session_id)
        self._registry.detach(entry.name)
        self._sessions.pop(session.session_id, None)

    def close_all(self) -> None:
        for session in list(self._sessions.values()):
            self.close(session)

    def totals(self) -> dict:
        """Aggregate delivery counters across *open* sessions."""
        sessions = self._sessions.values()
        return {
            "active": len(self._sessions),
            "opened": self._opened,
            "peak": self.peak,
            "events_delivered": sum(s.queue.delivered for s in sessions),
            "events_dropped": sum(s.queue.dropped for s in sessions),
        }
