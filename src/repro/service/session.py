"""Sessions: one client's window onto the live world.

A :class:`Session` owns exactly one :class:`~repro.service.driver.SessionQueue`
subscribed to the driver's event bus, plus the request dispatch shared
by every transport.  :class:`SessionManager` is the registry — open,
close, drain — and the only holder of strong references: closing a
session unsubscribes its queue and drops it from the table, after which
nothing in the service keeps it alive (the lifecycle suite pins this
with weakrefs).
"""

from __future__ import annotations

from typing import Any

from ..errors import ServiceError
from .driver import SessionQueue, WorldDriver
from .events import (
    ack_event,
    bye_event,
    error_event,
    pong_event,
    stats_event,
    welcome_event,
)


class Session:
    """One open session: a queue, a dispatch table, and counters."""

    def __init__(self, session_id: str, driver: WorldDriver,
                 queue: SessionQueue, *, client: str | None = None) -> None:
        self.session_id = session_id
        self.client = client
        self.queue = queue
        self.closed = False
        self.proposals_submitted = 0
        self.proposals_accepted = 0
        self._driver = driver

    def stats(self) -> dict:
        return {
            "session": self.session_id,
            "round": self._driver.current_round,
            "next_instance": self._driver.ledger.next_open,
            "proposals_submitted": self.proposals_submitted,
            "proposals_accepted": self.proposals_accepted,
            "events_delivered": self.queue.delivered,
            "events_dropped": self.queue.dropped,
            "events_pending": len(self.queue),
        }

    def handle(self, request: dict) -> bool:
        """Dispatch one validated request; responses land on the queue.

        Returns ``False`` when the session asked to close (``bye``) —
        transports then flush and disconnect.
        """
        if self.closed:
            raise ServiceError(f"session {self.session_id!r} is closed")
        op = request["op"]
        if op == "propose":
            self.proposals_submitted += 1
            request_id = request.get("id")
            try:
                instance = self._driver.submit(
                    request["value"],
                    instance=request.get("instance"),
                    node=request.get("node"),
                )
            except ServiceError as exc:
                self.queue.put(error_event(str(exc), request_id=request_id))
            else:
                self.proposals_accepted += 1
                self.queue.put(ack_event(instance=instance,
                                         request_id=request_id))
        elif op == "ping":
            self.queue.put(pong_event(round_=self._driver.current_round))
        elif op == "stats":
            self.queue.put(stats_event(self.stats()))
        elif op == "bye":
            self.queue.put(bye_event())
            return False
        elif op == "hello":
            self.queue.put(error_event(
                "session already open; 'hello' is a connection greeting"
            ))
        else:  # pragma: no cover - the wire layer validates ops
            raise ServiceError(f"unhandled op {op!r}")
        return True


class SessionManager:
    """Open/close registry; the service's only strong session refs."""

    def __init__(self, driver: WorldDriver, *, queue_limit: int = 1024,
                 max_sessions: int = 10_000) -> None:
        self._driver = driver
        self._queue_limit = queue_limit
        self._max_sessions = max_sessions
        self._sessions: dict[str, Session] = {}
        self._opened = 0
        self.peak = 0

    @property
    def active(self) -> int:
        return len(self._sessions)

    @property
    def opened(self) -> int:
        """Sessions ever opened (reconnects count again)."""
        return self._opened

    def sessions(self) -> list[Session]:
        return list(self._sessions.values())

    def open(self, *, client: str | None = None) -> Session:
        """Attach a session; its first event is a catch-up ``welcome``."""
        if len(self._sessions) >= self._max_sessions:
            raise ServiceError(
                f"session limit reached ({self._max_sessions})"
            )
        self._opened += 1
        session_id = f"s{self._opened}"
        queue = self._driver.bus.subscribe(session_id, self._queue_limit)
        session = Session(session_id, self._driver, queue, client=client)
        self._sessions[session_id] = session
        self.peak = max(self.peak, len(self._sessions))
        queue.put(welcome_event(session=session_id,
                                snapshot=self._driver.snapshot()))
        return session

    def close(self, session: Session) -> None:
        """Detach: unsubscribe the queue and forget the session."""
        session.closed = True
        self._driver.bus.unsubscribe(session.session_id)
        self._sessions.pop(session.session_id, None)

    def close_all(self) -> None:
        for session in list(self._sessions.values()):
            self.close(session)

    def totals(self) -> dict:
        """Aggregate delivery counters across *open* sessions."""
        sessions = self._sessions.values()
        return {
            "active": len(self._sessions),
            "opened": self._opened,
            "peak": self.peak,
            "events_delivered": sum(s.queue.delivered for s in sessions),
            "events_dropped": sum(s.queue.dropped for s in sessions),
        }
