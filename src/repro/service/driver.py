"""The world driver: one live experiment on an asyncio clock.

Three pieces, composed by :class:`~repro.service.server.ConsensusService`:

* :class:`ProposalLedger` — the determinism seam.  Client proposals land
  in a per-instance assignment table *before* the world begins that
  instance (the watermark freezes exactly when the protocol's
  ``begin_instance`` pulls the proposal), and the accepted schedule can
  be replayed through :meth:`ProposalLedger.scripted` as a plain
  ``proposer_factory`` — which is how the differential suite proves a
  served world and a batch :func:`repro.run` are byte-identical.
* :class:`EventBus` / :class:`SessionQueue` — per-session bounded fan-out
  with a drop-oldest slow-consumer policy.  Events are stamped with a
  per-session ``seq`` at enqueue, so consumers detect drops as gaps.
  Each subscription may carry an **event filter** — the hook the read
  models (``watch_instance``, ``subscribe_prefix``) hang off: filters
  run synchronously at publish, *before* enqueue, so a filtered-out
  event costs a subscriber nothing and a slow consumer still drops
  rather than stalls the world's clock.
* :class:`WorldDriver` — owns an :class:`~repro.experiment.runner.ExperimentStepper`
  and advances it ``rounds_per_tick`` rounds per tick, publishing
  ``instance-state`` transitions (pending → running → decided) and
  harvesting newly decided instances into ``decision`` events (each
  carrying a live agreement verdict from
  :func:`repro.core.spec.check_agreement`).  Many drivers — one per
  registered world — share one asyncio loop; each carries its world
  ``name`` and ``spec_hash`` so every event says which world it is
  from.

The driver's :meth:`~WorldDriver.tick` is synchronous: a tick runs
between awaits, so sessions never observe — or perturb — a half-stepped
world.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Callable, Iterable

from ..core.cha import ROUNDS_PER_INSTANCE
from ..core.runner import default_proposer
from ..core.spec import check_agreement
from ..errors import ConfigurationError, ServiceError, SpecViolation
from ..experiment.result import OK, ExperimentResult
from ..experiment.runner import ExperimentStepper, Instrument
from ..experiment.spec import CHA, ExperimentSpec, NaiveRSM, TwoPhaseCHA
from ..types import BOTTOM, NodeId
from .registry import spec_hash as _spec_hash

Value = Any
Instance = int

#: A per-subscription event filter: called at publish time, before
#: enqueue; ``False`` means "this subscriber does not want this event".
EventFilter = Callable[[dict], bool]

#: ``(instance, node, value)`` rows; ``node is None`` means "any node
#: without its own assignment proposes this value".
Schedule = tuple[tuple[Instance, NodeId | None, Value], ...]


class ProposalLedger:
    """Accepted client proposals, frozen instance by instance.

    The ledger's :meth:`proposer` closures are what the protocol
    processes call: the first ``propose(k)`` of a round advances the
    freeze watermark to ``k``, after which :meth:`submit` rejects
    proposals for ``k`` (they can no longer take effect, and silently
    accepting them would make the accepted schedule unreplayable).
    Within an instance, assignment is last-writer-wins per ``(instance,
    node)`` slot; nodes without an assignment fall back to the
    ``node=None`` wildcard slot, then to the default proposer.
    """

    def __init__(self, default: Callable[[NodeId], Callable[[Instance], Value]]
                 = default_proposer) -> None:
        self._default = default
        self._assignments: dict[Instance, dict[NodeId | None, Value]] = {}
        self._accepted: list[tuple[Instance, NodeId | None, Value]] = []
        self.frozen_through: Instance = 0

    @property
    def next_open(self) -> Instance:
        """The lowest instance still accepting proposals."""
        return self.frozen_through + 1

    @property
    def accepted_count(self) -> int:
        return len(self._accepted)

    def submit(self, value: Value, *, instance: Instance | None = None,
               node: NodeId | None = None) -> Instance:
        """Record one proposal; returns the instance it landed in."""
        if instance is None:
            instance = self.next_open
        if instance <= self.frozen_through:
            raise ServiceError(
                f"instance {instance} is frozen: the world already began "
                f"it (proposals are open from {self.next_open})"
            )
        self._assignments.setdefault(instance, {})[node] = value
        self._accepted.append((instance, node, value))
        return instance

    def schedule(self) -> Schedule:
        """The accepted proposals, in arrival order (replayable)."""
        return tuple(self._accepted)

    def proposer(self, node: NodeId) -> Callable[[Instance], Value]:
        default = self._default(node)

        def propose(k: Instance) -> Value:
            if k > self.frozen_through:
                self.frozen_through = k
            slot = self._assignments.get(k)
            if slot is not None:
                if node in slot:
                    return slot[node]
                if None in slot:
                    return slot[None]
            return default(k)

        return propose

    @classmethod
    def scripted(cls, schedule: Iterable[tuple[Instance, NodeId | None, Value]],
                 default: Callable[[NodeId], Callable[[Instance], Value]]
                 = default_proposer) -> Callable[[NodeId], Callable[[Instance], Value]]:
        """A ``proposer_factory`` replaying an accepted schedule.

        ``ProposalLedger.scripted(driver.ledger.schedule())`` plugged
        into ``spec.override(protocol__proposer_factory=...)`` makes a
        batch :func:`repro.run` propose exactly what the served world's
        clients did.
        """
        ledger = cls(default)
        for instance, node, value in schedule:
            ledger._assignments.setdefault(instance, {})[node] = value
        return ledger.proposer


class SessionQueue:
    """One session's bounded event queue (drop-oldest when full).

    ``put`` is synchronous and never blocks the publisher: a full queue
    evicts its oldest event and bumps :attr:`dropped` — the slow
    consumer, not the world clock, pays.  Every event is stamped with a
    monotonically increasing per-session ``seq`` at enqueue, so a
    consumer that sees ``seq`` jump knows exactly how many events it
    lost.
    """

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ConfigurationError("session queue limit must be >= 1")
        self.limit = limit
        self._items: deque[dict] = deque()
        self._wakeup = asyncio.Event()
        self.seq = 0
        self.dropped = 0
        self.delivered = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, event: dict) -> None:
        stamped = dict(event)
        stamped["seq"] = self.seq
        self.seq += 1
        if len(self._items) >= self.limit:
            self._items.popleft()
            self.dropped += 1
        self._items.append(stamped)
        self._wakeup.set()

    def get_nowait(self) -> dict | None:
        if not self._items:
            return None
        self.delivered += 1
        return self._items.popleft()

    async def get(self) -> dict:
        while not self._items:
            self._wakeup.clear()
            await self._wakeup.wait()
        self.delivered += 1
        return self._items.popleft()


class EventBus:
    """Fan-out of world events to per-session queues.

    A subscription optionally carries an :data:`EventFilter`; the read
    models are exactly such filters (the session owns the mutable watch
    set / prefix the filter consults).  :meth:`attach` re-binds an
    *existing* queue — how ``attach_world`` moves a session to another
    world's bus without resetting its ``seq`` stream.
    """

    def __init__(self) -> None:
        self._queues: dict[str, tuple[SessionQueue, EventFilter | None]] = {}

    @property
    def subscribers(self) -> int:
        return len(self._queues)

    def subscribe(self, session_id: str, limit: int,
                  event_filter: EventFilter | None = None) -> SessionQueue:
        if session_id in self._queues:
            raise ServiceError(f"session {session_id!r} already subscribed")
        queue = SessionQueue(limit)
        self._queues[session_id] = (queue, event_filter)
        return queue

    def attach(self, session_id: str, queue: SessionQueue,
               event_filter: EventFilter | None = None) -> None:
        """Subscribe an existing queue (``seq`` continues uninterrupted)."""
        if session_id in self._queues:
            raise ServiceError(f"session {session_id!r} already subscribed")
        self._queues[session_id] = (queue, event_filter)

    def unsubscribe(self, session_id: str) -> None:
        self._queues.pop(session_id, None)

    def publish(self, event: dict) -> None:
        for queue, event_filter in self._queues.values():
            if event_filter is None or event_filter(event):
                queue.put(event)


class WorldDriver:
    """Advance one live world on an asyncio clock, publishing decisions.

    Construction builds the world paused — nothing runs until
    :meth:`tick` (or the :meth:`run` clock coroutine) does, so sessions
    attached before the first tick observe the run from round zero.
    ``rounds_per_tick`` and the accepted proposal schedule fully
    determine the event stream; the wall clock only decides *when* ticks
    happen, never *what* they compute.
    """

    #: Protocols the service can drive: the full-history cluster family,
    #: whose outputs are ``(instance, History | BOTTOM)`` rows.
    SERVABLE = (CHA, NaiveRSM, TwoPhaseCHA)

    def __init__(self, spec: ExperimentSpec, *,
                 name: str = "w1",
                 rounds_per_tick: int = ROUNDS_PER_INSTANCE,
                 tick_interval: float = 0.0,
                 decision_log_limit: int = 256,
                 instrument: Instrument | None = None) -> None:
        if not isinstance(spec.protocol, self.SERVABLE):
            raise ConfigurationError(
                f"the service drives {[c.__name__ for c in self.SERVABLE]} "
                f"worlds; got {type(spec.protocol).__name__}"
            )
        if rounds_per_tick < 1:
            raise ConfigurationError("rounds_per_tick must be >= 1")
        self.name = name
        # Fingerprint the inert spec, before the proposer closure is
        # injected — the hash must match what a batch replay would hash.
        self.spec_hash = _spec_hash(spec)
        self.ledger = ProposalLedger(
            getattr(spec.protocol, "proposer_factory", None) or default_proposer
        )
        spec = spec.override(protocol__proposer_factory=self.ledger.proposer)
        self.spec = spec
        self.rounds_per_tick = rounds_per_tick
        self.tick_interval = tick_interval
        self.stepper = ExperimentStepper(spec, instrument=instrument)
        self.bus = EventBus()
        self.result: ExperimentResult | None = None
        self.decisions_published = 0
        self._decision_log: deque[dict] = deque(maxlen=decision_log_limit)
        self._harvested = 0

    # -- introspection -------------------------------------------------

    @property
    def nodes(self) -> int:
        return len(self.stepper.processes)

    @property
    def current_round(self) -> int:
        return self.stepper.simulator.current_round

    @property
    def complete(self) -> bool:
        return self.result is not None

    def snapshot(self) -> dict:
        """The catch-up view a newly attached session receives."""
        return {
            "world": self.name,
            "spec_hash": self.spec_hash,
            "round": self.current_round,
            "nodes": self.nodes,
            "next_instance": self.ledger.next_open,
            "decided_instances": self.decisions_published,
            "recent_decisions": list(self._decision_log),
            "complete": self.complete,
        }

    def instance_state(self, instance: Instance) -> dict:
        """The read-model view of one instance's lifecycle.

        ``pending`` — the world has not pulled its proposals yet;
        ``running`` — the proposal watermark passed it, no decision yet;
        ``decided`` — harvested, with ``value``/``agreement`` attached
        when the decision is still inside the bounded decision log.
        """
        state: dict = {"instance": instance}
        if instance <= self._harvested:
            state["state"] = "decided"
            for event in self._decision_log:
                if event["instance"] == instance:
                    state["value"] = event["value"]
                    state["agreement"] = event["agreement"]
                    break
        elif instance <= self.ledger.frozen_through:
            state["state"] = "running"
        else:
            state["state"] = "pending"
        return state

    # -- proposals -----------------------------------------------------

    def submit(self, value: Value, *, instance: Instance | None = None,
               node: NodeId | None = None) -> Instance:
        if self.complete:
            raise ServiceError("the world has completed; no further "
                               "instances will run")
        if node is not None and node >= self.nodes:
            raise ServiceError(
                f"node {node} does not exist (world has {self.nodes} nodes)"
            )
        return self.ledger.submit(value, instance=instance, node=node)

    # -- the clock -----------------------------------------------------

    def tick(self) -> list[dict]:
        """Advance one tick; publish and return the new events.

        Synchronous — runs between awaits, so no session interleaves
        with a half-stepped world.  Publishes, in order: ``running``
        transitions for instances whose proposals froze this tick,
        ``decision`` events for newly harvested instances, then their
        ``decided`` transitions.  The transition events only reach
        sessions whose filters want them (i.e. watchers).
        """
        if self.complete:
            return []
        watermark = self.ledger.frozen_through
        self.stepper.step(self.rounds_per_tick)
        events: list[dict] = [
            {"type": "instance-state", "world": self.name, "instance": k,
             "round": self.current_round, "state": "running"}
            for k in range(watermark + 1, self.ledger.frozen_through + 1)
        ]
        decisions = self._harvest()
        events.extend(decisions)
        events.extend(
            {"type": "instance-state", "world": self.name,
             "instance": d["instance"], "round": d["round"],
             "state": "decided", "value": d["value"],
             "agreement": d["agreement"]}
            for d in decisions
        )
        for event in events:
            self.bus.publish(event)
        if self.stepper.remaining == 0:
            events.append(self._finalize())
        return events

    async def run(self) -> ExperimentResult:
        """Tick until the workload is exhausted.

        ``tick_interval`` is the real-time pacing; zero yields to the
        loop between ticks but otherwise runs flat out.
        """
        while not self.complete:
            if self.tick_interval > 0:
                await asyncio.sleep(self.tick_interval)
            else:
                await asyncio.sleep(0)
            self.tick()
        assert self.result is not None
        return self.result

    # -- harvesting ----------------------------------------------------

    def _harvest(self) -> list[dict]:
        logs = {node: proc.outputs
                for node, proc in self.stepper.processes.items()}
        ready = min((len(log) for log in logs.values()), default=0)
        events = []
        for idx in range(self._harvested, ready):
            per_node = {node: log[idx] for node, log in logs.items()}
            instance = next(iter(per_node.values()))[0]
            decided = {node: out for node, (_, out) in per_node.items()
                       if out is not BOTTOM}
            value = None
            if decided:
                value = decided[min(decided)](instance)
            try:
                check_agreement({node: [entry]
                                 for node, entry in per_node.items()},
                                use_reference=self.spec.use_reference_history)
            except SpecViolation as exc:
                verdict = f"violated: {exc}"
            else:
                verdict = OK
            events.append({
                "type": "decision",
                "world": self.name,
                "instance": instance,
                "round": self.current_round,
                "value": value,
                "decided": len(decided),
                "bottom": len(per_node) - len(decided),
                "agreement": verdict,
            })
        if events:
            self._harvested = ready
            self._decision_log.extend(events)
            self.decisions_published += len(events)
        return events

    def _finalize(self) -> dict:
        self.result = self.stepper.finish()
        event = {
            "type": "world-complete",
            "world": self.name,
            "round": self.current_round,
            "instances": self._harvested,
            "decisions": self.decisions_published,
            "invariants": dict(self.result.invariants),
        }
        self.bus.publish(event)
        return event
