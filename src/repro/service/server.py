"""The consensus service: many live worlds, many sessions, two transports.

:class:`ConsensusService` composes a :class:`~.registry.WorldRegistry`
of :class:`~.driver.WorldDriver`\\ s with a
:class:`~.session.SessionManager` and exposes them two ways:

* **in-process** — :meth:`ConsensusService.connect` returns an
  :class:`InProcessClient` sharing the event loop: the transport the
  tests and the load harness use, with zero serialization overhead but
  the exact same session/queue/backpressure machinery as TCP.
* **TCP** — :meth:`ConsensusService.serve_tcp` speaks the NDJSON wire
  protocol of :mod:`~.events` over asyncio streams.  Each connection
  greets with ``hello`` (opening a session bound to one named world),
  then interleaves request lines with a pump task that writes the
  session's event stream.

The service pre-creates ``config.worlds`` **pinned** worlds from the
template spec (``w1`` … ``wN``; ``hello`` without a world name lands in
``w1``); further worlds appear lazily through the ``create_world`` op
and retire through the idle reaper once they have sat session-less for
``idle_world_grace_s``.  Every world ticks on its own clock task, all
on one loop.

Worlds start **paused**; :meth:`start_world` (or awaiting
:meth:`run_world` / :meth:`run_worlds`) releases the clocks — and from
then on, lazily created worlds start ticking at birth.  Sessions
attached before the release observe their world from round zero — the
determinism guarantee the differential suite leans on.
:meth:`shutdown` is the graceful path: stop the clocks, broadcast
``shutdown`` on every world's bus, give connection pumps a drain
window, then close everything.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass
from typing import Any, Callable

from ..core.cha import ROUNDS_PER_INSTANCE
from ..errors import ServiceError
from ..experiment.result import ExperimentResult
from ..experiment.runner import Instrument
from ..experiment.spec import ExperimentSpec
from .driver import WorldDriver
from .events import (
    WireError,
    encode_event,
    error_event,
    parse_request,
    shutdown_event,
    validate_request,
)
from .registry import WorldRegistry
from .session import Session, SessionManager


@dataclass(frozen=True)
class ServiceConfig:
    """Service-level knobs (the spec describes the world; this, the front end)."""

    host: str = "127.0.0.1"
    port: int = 0  #: 0 = ephemeral; read :attr:`ConsensusService.tcp_address`.
    tick_interval: float = 0.0  #: seconds between ticks; 0 = flat out.
    rounds_per_tick: int = ROUNDS_PER_INSTANCE
    queue_limit: int = 1024  #: per-session event queue bound.
    max_sessions: int = 10_000
    decision_log_limit: int = 256  #: decisions kept for catch-up snapshots.
    drain_timeout: float = 1.0  #: seconds shutdown waits for pumps to flush.
    worlds: int = 1  #: pinned worlds pre-created from the template (w1..wN).
    max_worlds: int = 64  #: hard cap, lazily created worlds included.
    idle_world_grace_s: float = 30.0  #: idle window before eviction.
    reaper_interval_s: float = 0.0  #: 0 = no background reaper task.


class ConsensusService:
    """Many served worlds.  Construct paused; start the clocks explicitly."""

    def __init__(self, spec: ExperimentSpec,
                 config: ServiceConfig = ServiceConfig(), *,
                 instrument: Instrument | None = None,
                 clock: Callable[[], float] | None = None) -> None:
        if config.worlds < 1:
            raise ServiceError("config.worlds must be >= 1")
        self.config = config
        self._instrument = instrument
        self.registry = WorldRegistry(
            spec, self._build_driver,
            max_worlds=config.max_worlds, clock=clock)
        self._world_tasks: dict[str, asyncio.Task] = {}
        self._clock_released = False
        for index in range(config.worlds):
            self.registry.create(f"w{index + 1}", pinned=True)
        self.sessions = SessionManager(
            self.registry,
            queue_limit=config.queue_limit,
            max_sessions=config.max_sessions,
        )
        self._reaper_task: asyncio.Task | None = None
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()

    def _build_driver(self, spec: ExperimentSpec, name: str) -> WorldDriver:
        driver = WorldDriver(
            spec,
            name=name,
            rounds_per_tick=self.config.rounds_per_tick,
            tick_interval=self.config.tick_interval,
            decision_log_limit=self.config.decision_log_limit,
            instrument=self._instrument,
        )
        if self._clock_released:
            # Worlds born after the release start ticking immediately.
            self._world_tasks[name] = asyncio.ensure_future(driver.run())
        return driver

    # -- introspection --------------------------------------------------

    @property
    def default_world(self) -> str:
        return "w1"

    @property
    def driver(self) -> WorldDriver:
        """The default world's driver (single-world compatibility view)."""
        return self.registry.get(self.default_world).driver

    # -- the world clocks ----------------------------------------------

    def start_world(self) -> asyncio.Task:
        """Release the clocks as background tasks (idempotent).

        Returns the default world's clock task (the single-world
        contract); every registered world gets its own task, and worlds
        created later start theirs at birth.
        """
        self._clock_released = True
        for entry in self.registry:
            if entry.name not in self._world_tasks:
                self._world_tasks[entry.name] = asyncio.ensure_future(
                    entry.driver.run())
        if (self._reaper_task is None
                and self.config.reaper_interval_s > 0):
            self._reaper_task = asyncio.ensure_future(self._reap_loop())
        return self._world_tasks[self.default_world]

    async def run_world(self) -> ExperimentResult:
        """Release the clocks and wait for the *default* world."""
        results = await self.run_worlds()
        return results[self.default_world]

    async def run_worlds(self) -> dict[str, ExperimentResult]:
        """Release the clocks and wait for every live world to complete.

        Worlds created while waiting are waited on too.  Returns the
        completed results by world name (evicted worlds excluded).
        """
        self.start_world()
        while True:
            pending = [task for name, task in self._world_tasks.items()
                       if name in self.registry and not task.done()]
            if not pending:
                break
            await asyncio.shield(asyncio.gather(*pending))
        return {entry.name: entry.driver.result
                for entry in self.registry if entry.driver.result is not None}

    def tick_all(self) -> None:
        """Advance every live world one tick (manual-clock tests)."""
        for entry in self.registry:
            entry.driver.tick()

    # -- idle-world eviction -------------------------------------------

    def reap(self) -> list[str]:
        """Evict idle unpinned worlds; stop their clocks.  Returns names."""
        evicted = self.registry.evict_idle(self.config.idle_world_grace_s)
        names = []
        for entry in evicted:
            task = self._world_tasks.pop(entry.name, None)
            if task is not None and not task.done():
                task.cancel()
            names.append(entry.name)
        return names

    async def _reap_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.reaper_interval_s)
            self.reap()

    # -- in-process transport ------------------------------------------

    def connect(self, *, client: str | None = None,
                world: str | None = None) -> "InProcessClient":
        return InProcessClient(
            self, self.sessions.open(client=client, world=world))

    # -- TCP transport -------------------------------------------------

    async def serve_tcp(self) -> asyncio.AbstractServer:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        return self._server

    @property
    def tcp_address(self) -> tuple[str, int] | None:
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[:2]

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._conn_tasks.add(asyncio.current_task())
        session: Session | None = None
        pump: asyncio.Task | None = None
        graceful = False
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = parse_request(line)
                except WireError as exc:
                    event = error_event(str(exc))
                    if session is not None:
                        session.queue.put(event)
                    else:
                        writer.write(encode_event(dict(event, seq=-1)))
                        await writer.drain()
                    continue
                if request["op"] == "hello":
                    if session is not None:
                        session.queue.put(error_event(
                            "session already open; 'hello' is a "
                            "connection greeting"))
                        continue
                    try:
                        session = self.sessions.open(
                            client=request.get("client"),
                            world=request.get("world"))
                    except ServiceError as exc:
                        writer.write(encode_event(
                            dict(error_event(str(exc)), seq=-1)))
                        await writer.drain()
                        break
                    pump = asyncio.ensure_future(self._pump(session, writer))
                    continue
                if session is None:
                    writer.write(encode_event(dict(
                        error_event("say 'hello' first to open a session"),
                        seq=-1)))
                    await writer.drain()
                    continue
                if not session.handle(request):
                    # ``bye`` — the pump exits after flushing through
                    # the bye event it just enqueued.
                    graceful = True
                    break
        finally:
            if pump is not None:
                if graceful:
                    # Bounded window to flush through the farewell.
                    with contextlib.suppress(asyncio.TimeoutError,
                                             ConnectionError,
                                             asyncio.CancelledError):
                        await asyncio.wait_for(
                            pump, timeout=self.config.drain_timeout)
                pump.cancel()
                with contextlib.suppress(asyncio.CancelledError,
                                         ConnectionError):
                    await pump
            if session is not None:
                self.sessions.close(session)
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()
            self._conn_tasks.discard(asyncio.current_task())

    async def _pump(self, session: Session, writer: asyncio.StreamWriter) -> None:
        """Write the session's event stream until it ends."""
        while True:
            event = await session.queue.get()
            writer.write(encode_event(event))
            await writer.drain()
            if event.get("type") in ("bye", "shutdown"):
                return

    # -- lifecycle -----------------------------------------------------

    async def shutdown(self, reason: str = "service shutting down") -> None:
        """Graceful stop: halt the clocks, notify, drain, close."""
        if self._reaper_task is not None and not self._reaper_task.done():
            self._reaper_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reaper_task
        for task in self._world_tasks.values():
            if not task.done():
                task.cancel()
        for task in self._world_tasks.values():
            with contextlib.suppress(asyncio.CancelledError):
                await task
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for entry in self.registry:
            entry.driver.bus.publish(shutdown_event(reason))
        if self._conn_tasks:
            done, pending = await asyncio.wait(
                list(self._conn_tasks), timeout=self.config.drain_timeout)
            for task in pending:
                task.cancel()
            for task in pending:
                with contextlib.suppress(asyncio.CancelledError):
                    await task
        self.sessions.close_all()


class InProcessClient:
    """The zero-copy transport: same sessions, queues, and validation
    as TCP, minus the sockets.  Requests are dicts; events come back
    (seq-stamped) from :meth:`next_event`."""

    def __init__(self, service: ConsensusService, session: Session) -> None:
        self.service = service
        self.session = session

    # -- requests ------------------------------------------------------

    def request(self, request: dict) -> None:
        """Validate and dispatch one request dict."""
        if self.session.closed:
            raise ServiceError(f"session {self.session_id!r} is closed")
        if not self.session.handle(validate_request(dict(request))):
            self.close()

    def propose(self, value: str, *, instance: int | None = None,
                node: int | None = None, request_id: str | None = None) -> None:
        request: dict[str, Any] = {"op": "propose", "value": value}
        if instance is not None:
            request["instance"] = instance
        if node is not None:
            request["node"] = node
        if request_id is not None:
            request["id"] = request_id
        self.request(request)

    def ping(self) -> None:
        self.request({"op": "ping"})

    def stats(self) -> None:
        self.request({"op": "stats"})

    def create_world(self, *, world: str | None = None,
                     nodes: int | None = None,
                     instances: int | None = None,
                     request_id: str | None = None) -> None:
        request: dict[str, Any] = {"op": "create_world"}
        if world is not None:
            request["world"] = world
        if nodes is not None:
            request["nodes"] = nodes
        if instances is not None:
            request["instances"] = instances
        if request_id is not None:
            request["id"] = request_id
        self.request(request)

    def attach_world(self, world: str, *,
                     request_id: str | None = None) -> None:
        request: dict[str, Any] = {"op": "attach_world", "world": world}
        if request_id is not None:
            request["id"] = request_id
        self.request(request)

    def worlds(self) -> None:
        self.request({"op": "worlds"})

    def watch_instance(self, instance: int, *,
                       request_id: str | None = None) -> None:
        request: dict[str, Any] = {"op": "watch_instance",
                                   "instance": instance}
        if request_id is not None:
            request["id"] = request_id
        self.request(request)

    def unwatch_instance(self, instance: int, *,
                         request_id: str | None = None) -> None:
        request: dict[str, Any] = {"op": "unwatch_instance",
                                   "instance": instance}
        if request_id is not None:
            request["id"] = request_id
        self.request(request)

    def subscribe_prefix(self, prefix: str, *,
                         request_id: str | None = None) -> None:
        request: dict[str, Any] = {"op": "subscribe_prefix",
                                   "prefix": prefix}
        if request_id is not None:
            request["id"] = request_id
        self.request(request)

    def bye(self) -> None:
        self.request({"op": "bye"})

    # -- events --------------------------------------------------------

    async def next_event(self) -> dict:
        return await self.session.queue.get()

    def next_event_nowait(self) -> dict | None:
        return self.session.queue.get_nowait()

    def drain(self) -> list[dict]:
        """Pop everything currently queued (non-blocking)."""
        events = []
        while (event := self.session.queue.get_nowait()) is not None:
            events.append(event)
        return events

    # -- lifecycle -----------------------------------------------------

    @property
    def session_id(self) -> str:
        return self.session.session_id

    @property
    def world(self) -> str:
        return self.session.world

    @property
    def closed(self) -> bool:
        return self.session.closed

    @property
    def dropped(self) -> int:
        return self.session.queue.dropped

    def close(self) -> None:
        if not self.session.closed:
            self.service.sessions.close(self.session)
