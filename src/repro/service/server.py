"""The consensus service: one live world, many sessions, two transports.

:class:`ConsensusService` composes a :class:`~.driver.WorldDriver` and a
:class:`~.session.SessionManager` and exposes them two ways:

* **in-process** — :meth:`ConsensusService.connect` returns an
  :class:`InProcessClient` sharing the event loop: the transport the
  tests and the load harness use, with zero serialization overhead but
  the exact same session/queue/backpressure machinery as TCP.
* **TCP** — :meth:`ConsensusService.serve_tcp` speaks the NDJSON wire
  protocol of :mod:`~.events` over asyncio streams.  Each connection
  greets with ``hello`` (opening a session), then interleaves request
  lines with a pump task that writes the session's event stream.

The world starts **paused**; :meth:`start_world` (or awaiting
:meth:`run_world`) releases the clock.  Sessions attached before that
observe the run from round zero — the determinism guarantee the
differential suite leans on.  :meth:`shutdown` is the graceful path:
stop the clock, broadcast ``shutdown``, give connection pumps a drain
window, then close everything.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass
from typing import Any

from ..core.cha import ROUNDS_PER_INSTANCE
from ..errors import ServiceError
from ..experiment.result import ExperimentResult
from ..experiment.runner import Instrument
from ..experiment.spec import ExperimentSpec
from .driver import WorldDriver
from .events import (
    WireError,
    encode_event,
    error_event,
    parse_request,
    shutdown_event,
    validate_request,
)
from .session import Session, SessionManager


@dataclass(frozen=True)
class ServiceConfig:
    """Service-level knobs (the spec describes the world; this, the front end)."""

    host: str = "127.0.0.1"
    port: int = 0  #: 0 = ephemeral; read :attr:`ConsensusService.tcp_address`.
    tick_interval: float = 0.0  #: seconds between ticks; 0 = flat out.
    rounds_per_tick: int = ROUNDS_PER_INSTANCE
    queue_limit: int = 1024  #: per-session event queue bound.
    max_sessions: int = 10_000
    decision_log_limit: int = 256  #: decisions kept for catch-up snapshots.
    drain_timeout: float = 1.0  #: seconds shutdown waits for pumps to flush.


class ConsensusService:
    """One served world.  Construct paused; start the clock explicitly."""

    def __init__(self, spec: ExperimentSpec,
                 config: ServiceConfig = ServiceConfig(), *,
                 instrument: Instrument | None = None) -> None:
        self.config = config
        self.driver = WorldDriver(
            spec,
            rounds_per_tick=config.rounds_per_tick,
            tick_interval=config.tick_interval,
            decision_log_limit=config.decision_log_limit,
            instrument=instrument,
        )
        self.sessions = SessionManager(
            self.driver,
            queue_limit=config.queue_limit,
            max_sessions=config.max_sessions,
        )
        self._world_task: asyncio.Task | None = None
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()

    # -- the world clock ----------------------------------------------

    def start_world(self) -> asyncio.Task:
        """Release the clock as a background task (idempotent)."""
        if self._world_task is None:
            self._world_task = asyncio.ensure_future(self.driver.run())
        return self._world_task

    async def run_world(self) -> ExperimentResult:
        """Release the clock and wait for the world to complete."""
        task = self.start_world()
        await asyncio.shield(task)
        assert self.driver.result is not None
        return self.driver.result

    # -- in-process transport ------------------------------------------

    def connect(self, *, client: str | None = None) -> "InProcessClient":
        return InProcessClient(self, self.sessions.open(client=client))

    # -- TCP transport -------------------------------------------------

    async def serve_tcp(self) -> asyncio.AbstractServer:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        return self._server

    @property
    def tcp_address(self) -> tuple[str, int] | None:
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[:2]

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._conn_tasks.add(asyncio.current_task())
        session: Session | None = None
        pump: asyncio.Task | None = None
        graceful = False
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = parse_request(line)
                except WireError as exc:
                    event = error_event(str(exc))
                    if session is not None:
                        session.queue.put(event)
                    else:
                        writer.write(encode_event(dict(event, seq=-1)))
                        await writer.drain()
                    continue
                if request["op"] == "hello":
                    if session is not None:
                        session.queue.put(error_event(
                            "session already open; 'hello' is a "
                            "connection greeting"))
                        continue
                    try:
                        session = self.sessions.open(
                            client=request.get("client"))
                    except ServiceError as exc:
                        writer.write(encode_event(
                            dict(error_event(str(exc)), seq=-1)))
                        await writer.drain()
                        break
                    pump = asyncio.ensure_future(self._pump(session, writer))
                    continue
                if session is None:
                    writer.write(encode_event(dict(
                        error_event("say 'hello' first to open a session"),
                        seq=-1)))
                    await writer.drain()
                    continue
                if not session.handle(request):
                    # ``bye`` — the pump exits after flushing through
                    # the bye event it just enqueued.
                    graceful = True
                    break
        finally:
            if pump is not None:
                if graceful:
                    # Bounded window to flush through the farewell.
                    with contextlib.suppress(asyncio.TimeoutError,
                                             ConnectionError,
                                             asyncio.CancelledError):
                        await asyncio.wait_for(
                            pump, timeout=self.config.drain_timeout)
                pump.cancel()
                with contextlib.suppress(asyncio.CancelledError,
                                         ConnectionError):
                    await pump
            if session is not None:
                self.sessions.close(session)
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()
            self._conn_tasks.discard(asyncio.current_task())

    async def _pump(self, session: Session, writer: asyncio.StreamWriter) -> None:
        """Write the session's event stream until it ends."""
        while True:
            event = await session.queue.get()
            writer.write(encode_event(event))
            await writer.drain()
            if event.get("type") in ("bye", "shutdown"):
                return

    # -- lifecycle -----------------------------------------------------

    async def shutdown(self, reason: str = "service shutting down") -> None:
        """Graceful stop: halt the clock, notify, drain, close."""
        if self._world_task is not None and not self._world_task.done():
            self._world_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._world_task
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.driver.bus.publish(shutdown_event(reason))
        if self._conn_tasks:
            done, pending = await asyncio.wait(
                list(self._conn_tasks), timeout=self.config.drain_timeout)
            for task in pending:
                task.cancel()
            for task in pending:
                with contextlib.suppress(asyncio.CancelledError):
                    await task
        self.sessions.close_all()


class InProcessClient:
    """The zero-copy transport: same sessions, queues, and validation
    as TCP, minus the sockets.  Requests are dicts; events come back
    (seq-stamped) from :meth:`next_event`."""

    def __init__(self, service: ConsensusService, session: Session) -> None:
        self.service = service
        self.session = session

    # -- requests ------------------------------------------------------

    def request(self, request: dict) -> None:
        """Validate and dispatch one request dict."""
        if self.session.closed:
            raise ServiceError(f"session {self.session_id!r} is closed")
        if not self.session.handle(validate_request(dict(request))):
            self.close()

    def propose(self, value: str, *, instance: int | None = None,
                node: int | None = None, request_id: str | None = None) -> None:
        request: dict[str, Any] = {"op": "propose", "value": value}
        if instance is not None:
            request["instance"] = instance
        if node is not None:
            request["node"] = node
        if request_id is not None:
            request["id"] = request_id
        self.request(request)

    def ping(self) -> None:
        self.request({"op": "ping"})

    def stats(self) -> None:
        self.request({"op": "stats"})

    def bye(self) -> None:
        self.request({"op": "bye"})

    # -- events --------------------------------------------------------

    async def next_event(self) -> dict:
        return await self.session.queue.get()

    def next_event_nowait(self) -> dict | None:
        return self.session.queue.get_nowait()

    def drain(self) -> list[dict]:
        """Pop everything currently queued (non-blocking)."""
        events = []
        while (event := self.session.queue.get_nowait()) is not None:
            events.append(event)
        return events

    # -- lifecycle -----------------------------------------------------

    @property
    def session_id(self) -> str:
        return self.session.session_id

    @property
    def closed(self) -> bool:
        return self.session.closed

    @property
    def dropped(self) -> int:
        return self.session.queue.dropped

    def close(self) -> None:
        if not self.session.closed:
            self.service.sessions.close(self.session)
