"""The service wire schema: newline-delimited JSON, both directions.

Requests travel client → service as one JSON object per line carrying an
``op`` field; events travel service → client as one JSON object per line
carrying a ``type`` field and a per-session ``seq`` stamped at enqueue
time (so a gap in ``seq`` is the documented signal that the slow-consumer
drop policy fired).  Encoding is canonical — sorted keys, compact
separators — so byte-level comparisons of event streams are meaningful
in tests.

The schema is **declarative**: every request op and event type is an
entry in :data:`OPS` / :data:`EVENTS` carrying its field table, and both
the validators and the machine-readable :func:`catalog` (what
``python -m repro.service --describe`` emits, and what the doc-drift
test pins ``docs/WIRE_PROTOCOL.md`` against) are derived from those
tables — the wire reference cannot drift from the wire implementation.

Validation happens here, once, for every transport: the TCP server calls
:func:`parse_request` on raw lines, the in-process client calls
:func:`validate_request` on dicts, and both reject malformed input with
:class:`WireError` before it reaches the session layer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import ReproError
from .registry import WORLD_NAME_RE

#: Wire-format version, echoed in every ``welcome`` event.  2 = the
#: multi-world schema (world-scoped sessions, read-model ops).
WIRE_SCHEMA = 2

#: Hard per-line ceiling; a client shipping more is torn down, not parsed.
MAX_LINE_BYTES = 64 * 1024


class WireError(ReproError):
    """A request line failed JSON decoding or schema validation."""


# ----------------------------------------------------------------------
# The declarative schema
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FieldSpec:
    """One documented field of a request op or an event type."""

    name: str
    #: Wire type: ``str`` / ``int`` / and, for events, ``float`` /
    #: ``bool`` / ``object`` / ``array`` / a ``X|null`` union.
    kind: str
    required: bool
    doc: str
    #: Extra constraint beyond the type check; raises :class:`WireError`.
    check: Callable[[Any], None] | None = None


@dataclass(frozen=True)
class OpSpec:
    """One request op: its fields and the event types it elicits."""

    doc: str
    fields: tuple[FieldSpec, ...]
    events: tuple[str, ...]


@dataclass(frozen=True)
class EventSpec:
    """One event type and its field table (``seq`` is the envelope)."""

    doc: str
    fields: tuple[FieldSpec, ...]


def _at_least(floor: int, message: str) -> Callable[[Any], None]:
    def check(value: Any) -> None:
        if value < floor:
            raise WireError(message)
    return check


def _world_name(value: Any) -> None:
    if not WORLD_NAME_RE.match(value):
        raise WireError(
            f"invalid world name {value!r}: use 1-64 characters from "
            "[A-Za-z0-9._-], starting alphanumeric"
        )


_REQUEST_ID = FieldSpec(
    "id", "str", False,
    "client-chosen correlation token, echoed on the response event")

_INSTANCE_GE1 = _at_least(
    1, "instance must be >= 1 (instances are 1-based; omit it to target "
       "the next open one)")


#: Every request op the service understands, in documentation order.
OPS: dict[str, OpSpec] = {
    "hello": OpSpec(
        doc="Connection greeting: opens a session bound to one named "
            "world.  Must be the first request on a TCP connection; the "
            "response is a `welcome` event carrying a catch-up snapshot.",
        fields=(
            FieldSpec("client", "str", False,
                      "free-form client label, for operator logs"),
            FieldSpec("world", "str", False,
                      "world to bind to (default: the service's default "
                      "world, w1)", check=_world_name),
        ),
        events=("welcome", "error"),
    ),
    "propose": OpSpec(
        doc="Submit one value into an upcoming consensus instance of the "
            "session's world.  Acked with the instance it landed in; "
            "rejected (error) once that instance has frozen.",
        fields=(
            FieldSpec("value", "str", True, "the proposed value"),
            FieldSpec("instance", "int", False,
                      "target instance (default: the next instance the "
                      "world has not yet begun)", check=_INSTANCE_GE1),
            FieldSpec("node", "int", False,
                      "propose on behalf of one node only (default: a "
                      "wildcard slot every unassigned node reads)",
                      check=_at_least(
                          0, "node must be a non-negative node id")),
            _REQUEST_ID,
        ),
        events=("ack", "error"),
    ),
    "create_world": OpSpec(
        doc="Lazily create a new live world from the service template.  "
            "Without `world` the new world is keyed by its spec hash, so "
            "re-creating an identical spec is a duplicate-create error "
            "naming the existing world.",
        fields=(
            FieldSpec("world", "str", False,
                      "name for the new world (default: derived from the "
                      "spec hash)", check=_world_name),
            FieldSpec("nodes", "int", False,
                      "override the template's cluster size",
                      check=_at_least(1, "nodes must be >= 1")),
            FieldSpec("instances", "int", False,
                      "override the template's instance budget",
                      check=_at_least(1, "instances must be >= 1")),
            _REQUEST_ID,
        ),
        events=("world-created", "error"),
    ),
    "attach_world": OpSpec(
        doc="Re-bind this session to another named world.  The session's "
            "event stream switches to the new world's bus (same queue, "
            "seq continues); instance watches are cleared (instance "
            "numbers are world-local), the value-prefix filter persists.",
        fields=(
            FieldSpec("world", "str", True, "world to attach to",
                      check=_world_name),
            _REQUEST_ID,
        ),
        events=("world-attached", "error"),
    ),
    "worlds": OpSpec(
        doc="List every live world: name, spec hash, round, session "
            "count, completion.",
        fields=(_REQUEST_ID,),
        events=("worlds",),
    ),
    "watch_instance": OpSpec(
        doc="Read model: stream every state transition of one consensus "
            "instance of the session's world.  The `watching` ack "
            "carries the instance's current state; from then on the "
            "session receives `instance-state` events for it "
            "(pending -> running -> decided).",
        fields=(
            FieldSpec("instance", "int", True, "instance to watch",
                      check=_INSTANCE_GE1),
            _REQUEST_ID,
        ),
        events=("watching", "error"),
    ),
    "unwatch_instance": OpSpec(
        doc="Stop streaming state transitions for one watched instance.",
        fields=(
            FieldSpec("instance", "int", True, "instance to stop watching",
                      check=_INSTANCE_GE1),
            _REQUEST_ID,
        ),
        events=("unwatched",),
    ),
    "subscribe_prefix": OpSpec(
        doc="Read model: narrow this session's `decision` feed to "
            "instances whose decided value starts with `prefix`.  An "
            "empty prefix clears the filter (all decisions again, "
            "including all-bottom ones, whose value is null).",
        fields=(
            FieldSpec("prefix", "str", True,
                      "value prefix to match; \"\" clears the filter"),
            _REQUEST_ID,
        ),
        events=("subscribed",),
    ),
    "ping": OpSpec(
        doc="Liveness probe; answered with the world's current round.",
        fields=(),
        events=("pong",),
    ),
    "stats": OpSpec(
        doc="This session's counters and filters, plus its world's clock.",
        fields=(),
        events=("stats",),
    ),
    "bye": OpSpec(
        doc="Graceful detach: the service enqueues a farewell `bye`, "
            "flushes the stream through it, and closes the session.",
        fields=(),
        events=("bye",),
    ),
}


_SNAPSHOT_FIELDS = (
    FieldSpec("world", "str", True, "the world this session is bound to"),
    FieldSpec("spec_hash", "str", True,
              "sha256 fingerprint of the world's experiment spec"),
    FieldSpec("round", "int", True, "the world's current round"),
    FieldSpec("nodes", "int", True, "nodes in the world"),
    FieldSpec("next_instance", "int", True,
              "lowest instance still accepting proposals"),
    FieldSpec("decided_instances", "int", True,
              "instances decided so far"),
    FieldSpec("recent_decisions", "array", True,
              "ring buffer of the most recent decision events "
              "(catch-up instead of replay)"),
    FieldSpec("complete", "bool", True, "has the world's workload run out"),
)

_OPTIONAL_ID = FieldSpec(
    "id", "str", False, "echo of the request's correlation token")

_STATE_FIELDS = (
    FieldSpec("state", "str", True,
              "instance lifecycle state: pending | running | decided"),
    FieldSpec("value", "str|null", False,
              "decided value (present once state is decided; null when "
              "every node decided bottom)"),
    FieldSpec("agreement", "str", False,
              "live agreement verdict (present once state is decided)"),
)


#: Every event type the service emits, in documentation order.  ``seq``
#: (the per-session sequence stamp) is the envelope, present on every
#: event, and therefore not repeated in each table.
EVENTS: dict[str, EventSpec] = {
    "welcome": EventSpec(
        doc="First event of every session: the wire-schema version, the "
            "session id, and a catch-up snapshot of the bound world.",
        fields=(
            FieldSpec("schema", "int", True, "wire-format version"),
            FieldSpec("session", "str", True, "server-assigned session id"),
        ) + _SNAPSHOT_FIELDS,
    ),
    "ack": EventSpec(
        doc="A proposal was accepted into the ledger.",
        fields=(
            FieldSpec("instance", "int", True,
                      "the instance the proposal landed in"),
            _OPTIONAL_ID,
        ),
    ),
    "error": EventSpec(
        doc="A request failed (or a line failed validation).  Pre-session "
            "errors are written with seq -1.",
        fields=(
            FieldSpec("reason", "str", True, "human-readable failure"),
            _OPTIONAL_ID,
        ),
    ),
    "decision": EventSpec(
        doc="One consensus instance of the session's world decided.  "
            "Subject to the session's value-prefix filter.",
        fields=(
            FieldSpec("world", "str", True, "the deciding world"),
            FieldSpec("instance", "int", True, "the decided instance"),
            FieldSpec("round", "int", True,
                      "world round at which the decision was harvested"),
            FieldSpec("value", "str|null", True,
                      "the decided value (null when every node decided "
                      "bottom)"),
            FieldSpec("decided", "int", True,
                      "nodes that decided a value"),
            FieldSpec("bottom", "int", True, "nodes that decided bottom"),
            FieldSpec("agreement", "str", True,
                      "live agreement verdict: \"ok\" or \"violated: ...\""),
        ),
    ),
    "instance-state": EventSpec(
        doc="Read-model stream: one watched instance changed state.  "
            "Delivered only to sessions watching that instance.",
        fields=(
            FieldSpec("world", "str", True, "the instance's world"),
            FieldSpec("instance", "int", True, "the instance"),
            FieldSpec("round", "int", True,
                      "world round of the transition"),
        ) + _STATE_FIELDS[:1] + _STATE_FIELDS[1:],
    ),
    "watching": EventSpec(
        doc="Ack for `watch_instance`, carrying the instance's *current* "
            "state so the watcher has a starting point.",
        fields=(
            FieldSpec("world", "str", True, "the instance's world"),
            FieldSpec("instance", "int", True, "the watched instance"),
        ) + _STATE_FIELDS + (_OPTIONAL_ID,),
    ),
    "unwatched": EventSpec(
        doc="Ack for `unwatch_instance`.",
        fields=(
            FieldSpec("instance", "int", True,
                      "the no-longer-watched instance"),
            _OPTIONAL_ID,
        ),
    ),
    "subscribed": EventSpec(
        doc="Ack for `subscribe_prefix`, echoing the active filter.",
        fields=(
            FieldSpec("prefix", "str|null", True,
                      "the active value-prefix filter (null = none)"),
            _OPTIONAL_ID,
        ),
    ),
    "world-created": EventSpec(
        doc="Ack for `create_world`.",
        fields=(
            FieldSpec("world", "str", True, "the new world's name/id"),
            FieldSpec("spec_hash", "str", True,
                      "sha256 fingerprint of the new world's spec"),
            FieldSpec("nodes", "int", True, "nodes in the new world"),
            FieldSpec("instances", "int|null", True,
                      "the new world's instance budget (null for "
                      "round-budget workloads)"),
            _OPTIONAL_ID,
        ),
    ),
    "world-attached": EventSpec(
        doc="Ack for `attach_world`: the new world's catch-up snapshot "
            "(same shape as the snapshot part of `welcome`).",
        fields=_SNAPSHOT_FIELDS + (_OPTIONAL_ID,),
    ),
    "worlds": EventSpec(
        doc="Ack for `worlds`: one row per live world.",
        fields=(
            FieldSpec("worlds", "array", True,
                      "rows of {world, spec_hash, round, "
                      "decided_instances, sessions, complete, pinned}"),
            _OPTIONAL_ID,
        ),
    ),
    "pong": EventSpec(
        doc="Ack for `ping`.",
        fields=(
            FieldSpec("round", "int", True,
                      "the session's world's current round"),
        ),
    ),
    "stats": EventSpec(
        doc="Ack for `stats`.",
        fields=(
            FieldSpec("session", "str", True, "session id"),
            FieldSpec("world", "str", True, "bound world"),
            FieldSpec("round", "int", True, "world's current round"),
            FieldSpec("next_instance", "int", True,
                      "lowest instance still accepting proposals"),
            FieldSpec("proposals_submitted", "int", True,
                      "proposals this session submitted"),
            FieldSpec("proposals_accepted", "int", True,
                      "proposals the ledger accepted"),
            FieldSpec("events_delivered", "int", True,
                      "events this session consumed"),
            FieldSpec("events_dropped", "int", True,
                      "events evicted by the slow-consumer policy"),
            FieldSpec("events_pending", "int", True,
                      "events queued, not yet read"),
            FieldSpec("watched_instances", "int", True,
                      "instances this session is watching"),
            FieldSpec("value_prefix", "str|null", True,
                      "active decision value-prefix filter (null = none)"),
        ),
    ),
    "bye": EventSpec(
        doc="Farewell: the last event of a gracefully closed session.",
        fields=(),
    ),
    "world-complete": EventSpec(
        doc="The session's world exhausted its workload; final invariant "
            "verdicts attached.  Broadcast to every session of that "
            "world.",
        fields=(
            FieldSpec("world", "str", True, "the completed world"),
            FieldSpec("round", "int", True, "final round"),
            FieldSpec("instances", "int", True, "instances harvested"),
            FieldSpec("decisions", "int", True,
                      "decision events published"),
            FieldSpec("invariants", "object", True,
                      "final invariant verdicts"),
        ),
    ),
    "shutdown": EventSpec(
        doc="The service is stopping; the stream ends after this event.",
        fields=(
            FieldSpec("reason", "str", True, "operator-supplied reason"),
        ),
    ),
}


def catalog() -> dict:
    """The machine-readable op/event catalog.

    This is what ``python -m repro.service --describe`` emits and what
    the doc-drift test compares ``docs/WIRE_PROTOCOL.md`` against; both
    are derived from :data:`OPS` / :data:`EVENTS`, the same tables the
    validators run on.
    """
    def rows(fields: tuple[FieldSpec, ...]) -> list[dict]:
        return [{"name": f.name, "type": f.kind, "required": f.required,
                 "doc": f.doc} for f in fields]

    return {
        "schema": WIRE_SCHEMA,
        "max_line_bytes": MAX_LINE_BYTES,
        "envelope": {
            "request": "one JSON object per line with an 'op' field",
            "event": "one JSON object per line with a 'type' field and a "
                     "per-session 'seq' stamped at enqueue (a seq gap "
                     "means the drop-oldest policy fired)",
        },
        "ops": {name: {"doc": spec.doc, "fields": rows(spec.fields),
                       "events": list(spec.events)}
                for name, spec in OPS.items()},
        "events": {name: {"doc": spec.doc, "fields": rows(spec.fields)}
                   for name, spec in EVENTS.items()},
    }


# ----------------------------------------------------------------------
# Requests (client -> service)
# ----------------------------------------------------------------------

_WIRE_KINDS: dict[str, type] = {"str": str, "int": int}


def _require(obj: dict, spec: FieldSpec) -> Any:
    value = obj.get(spec.name)
    if value is None:
        if not spec.required:
            return None
        raise WireError(
            f"{obj['op']!r} request needs a {spec.name!r} field")
    kind = _WIRE_KINDS[spec.kind]
    # bool is an int subclass; an instance check alone would let
    # ``"instance": true`` through.
    if not isinstance(value, kind) or (kind is int and isinstance(value, bool)):
        raise WireError(
            f"{obj['op']!r} request field {spec.name!r} must be "
            f"{kind.__name__}, got {type(value).__name__}"
        )
    if spec.check is not None:
        spec.check(value)
    return value


def validate_request(obj: Any) -> dict:
    """Validate an already-decoded request object; returns it."""
    if not isinstance(obj, dict):
        raise WireError("request must be a JSON object")
    op = obj.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise WireError(
            f"unknown op {op!r}; known ops: {sorted(OPS)}"
        )
    for field_spec in OPS[op].fields:
        _require(obj, field_spec)
    return obj


def parse_request(line: bytes | str) -> dict:
    """Decode and validate one request line."""
    if len(line) > MAX_LINE_BYTES:
        raise WireError(
            f"request line exceeds {MAX_LINE_BYTES} bytes"
        )
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireError(f"request is not valid JSON: {exc}") from None
    return validate_request(obj)


# ----------------------------------------------------------------------
# Events (service -> client)
# ----------------------------------------------------------------------

def encode_event(event: dict) -> bytes:
    """Canonical NDJSON encoding of one event."""
    return (json.dumps(event, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def decode_event(line: bytes | str) -> dict:
    obj = json.loads(line)
    if not isinstance(obj, dict) or not isinstance(obj.get("type"), str):
        raise WireError("event must be a JSON object with a 'type' field")
    return obj


def _with_id(event: dict, request_id: str | None) -> dict:
    if request_id is not None:
        event["id"] = request_id
    return event


def welcome_event(*, session: str, snapshot: dict) -> dict:
    return {"type": "welcome", "schema": WIRE_SCHEMA, "session": session,
            **snapshot}


def ack_event(*, instance: int, request_id: str | None = None) -> dict:
    return _with_id({"type": "ack", "instance": instance}, request_id)


def error_event(reason: str, *, request_id: str | None = None) -> dict:
    return _with_id({"type": "error", "reason": reason}, request_id)


def pong_event(*, round_: int) -> dict:
    return {"type": "pong", "round": round_}


def stats_event(stats: dict) -> dict:
    return {"type": "stats", **stats}


def bye_event() -> dict:
    return {"type": "bye"}


def shutdown_event(reason: str) -> dict:
    return {"type": "shutdown", "reason": reason}


def world_created_event(*, world: str, spec_hash: str, nodes: int,
                        instances: int | None,
                        request_id: str | None = None) -> dict:
    return _with_id({"type": "world-created", "world": world,
                     "spec_hash": spec_hash, "nodes": nodes,
                     "instances": instances}, request_id)


def world_attached_event(*, snapshot: dict,
                         request_id: str | None = None) -> dict:
    return _with_id({"type": "world-attached", **snapshot}, request_id)


def worlds_event(rows: list[dict], *, request_id: str | None = None) -> dict:
    return _with_id({"type": "worlds", "worlds": rows}, request_id)


def watching_event(*, world: str, state: dict,
                   request_id: str | None = None) -> dict:
    return _with_id({"type": "watching", "world": world, **state},
                    request_id)


def unwatched_event(*, instance: int,
                    request_id: str | None = None) -> dict:
    return _with_id({"type": "unwatched", "instance": instance}, request_id)


def subscribed_event(*, prefix: str | None,
                     request_id: str | None = None) -> dict:
    return _with_id({"type": "subscribed", "prefix": prefix}, request_id)


def instance_state_event(*, world: str, round_: int, state: dict) -> dict:
    return {"type": "instance-state", "world": world, "round": round_,
            **state}
