"""The service wire schema: newline-delimited JSON, both directions.

Requests travel client → service as one JSON object per line carrying an
``op`` field; events travel service → client as one JSON object per line
carrying a ``type`` field and a per-session ``seq`` stamped at enqueue
time (so a gap in ``seq`` is the documented signal that the slow-consumer
drop policy fired).  Encoding is canonical — sorted keys, compact
separators — so byte-level comparisons of event streams are meaningful
in tests.

Validation happens here, once, for every transport: the TCP server calls
:func:`parse_request` on raw lines, the in-process client calls
:func:`validate_request` on dicts, and both reject malformed input with
:class:`WireError` before it reaches the session layer.
"""

from __future__ import annotations

import json
from typing import Any, Callable

from ..errors import ReproError

#: Wire-format version, echoed in every ``welcome`` event.
WIRE_SCHEMA = 1

#: Hard per-line ceiling; a client shipping more is torn down, not parsed.
MAX_LINE_BYTES = 64 * 1024


class WireError(ReproError):
    """A request line failed JSON decoding or schema validation."""


# ----------------------------------------------------------------------
# Requests (client -> service)
# ----------------------------------------------------------------------

def _require(obj: dict, field_name: str, kind: type, *,
             optional: bool = False) -> Any:
    value = obj.get(field_name)
    if value is None:
        if optional:
            return None
        raise WireError(f"{obj['op']!r} request needs a {field_name!r} field")
    # bool is an int subclass; an instance check alone would let
    # ``"instance": true`` through.
    if not isinstance(value, kind) or (kind is int and isinstance(value, bool)):
        raise WireError(
            f"{obj['op']!r} request field {field_name!r} must be "
            f"{kind.__name__}, got {type(value).__name__}"
        )
    return value


def _validate_hello(obj: dict) -> None:
    _require(obj, "client", str, optional=True)


def _validate_propose(obj: dict) -> None:
    _require(obj, "value", str)
    instance = _require(obj, "instance", int, optional=True)
    if instance is not None and instance < 1:
        raise WireError("'propose' instance must be >= 1 (instances are "
                        "1-based; omit it to target the next open one)")
    node = _require(obj, "node", int, optional=True)
    if node is not None and node < 0:
        raise WireError("'propose' node must be a non-negative node id")
    _require(obj, "id", str, optional=True)


def _validate_trivial(obj: dict) -> None:
    pass


_VALIDATORS: dict[str, Callable[[dict], None]] = {
    "hello": _validate_hello,
    "propose": _validate_propose,
    "ping": _validate_trivial,
    "stats": _validate_trivial,
    "bye": _validate_trivial,
}


def validate_request(obj: Any) -> dict:
    """Validate an already-decoded request object; returns it."""
    if not isinstance(obj, dict):
        raise WireError("request must be a JSON object")
    op = obj.get("op")
    if not isinstance(op, str) or op not in _VALIDATORS:
        raise WireError(
            f"unknown op {op!r}; known ops: {sorted(_VALIDATORS)}"
        )
    _VALIDATORS[op](obj)
    return obj


def parse_request(line: bytes | str) -> dict:
    """Decode and validate one request line."""
    if len(line) > MAX_LINE_BYTES:
        raise WireError(
            f"request line exceeds {MAX_LINE_BYTES} bytes"
        )
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireError(f"request is not valid JSON: {exc}") from None
    return validate_request(obj)


# ----------------------------------------------------------------------
# Events (service -> client)
# ----------------------------------------------------------------------

def encode_event(event: dict) -> bytes:
    """Canonical NDJSON encoding of one event."""
    return (json.dumps(event, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def decode_event(line: bytes | str) -> dict:
    obj = json.loads(line)
    if not isinstance(obj, dict) or not isinstance(obj.get("type"), str):
        raise WireError("event must be a JSON object with a 'type' field")
    return obj


def welcome_event(*, session: str, snapshot: dict) -> dict:
    return {"type": "welcome", "schema": WIRE_SCHEMA, "session": session,
            **snapshot}


def ack_event(*, instance: int, request_id: str | None = None) -> dict:
    event = {"type": "ack", "instance": instance}
    if request_id is not None:
        event["id"] = request_id
    return event


def error_event(reason: str, *, request_id: str | None = None) -> dict:
    event = {"type": "error", "reason": reason}
    if request_id is not None:
        event["id"] = request_id
    return event


def pong_event(*, round_: int) -> dict:
    return {"type": "pong", "round": round_}


def stats_event(stats: dict) -> dict:
    return {"type": "stats", **stats}


def bye_event() -> dict:
    return {"type": "bye"}


def shutdown_event(reason: str) -> dict:
    return {"type": "shutdown", "reason": reason}
