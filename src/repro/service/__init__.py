"""repro.service — consensus as a service over many live worlds.

The batch layer (:func:`repro.run`) answers "what does this world do?";
this package answers "what happens when many concurrent clients talk to
it *while it runs*?".  A :class:`ConsensusService` owns a
:class:`~.registry.WorldRegistry` of named worlds — each a
:class:`~repro.experiment.runner.ExperimentStepper` advanced on its own
asyncio clock (:class:`~.driver.WorldDriver`), all sharing one loop.
Clients open sessions bound to a named world, submit proposals into
upcoming instances, and stream per-instance ``decision`` events
carrying live agreement verdicts — over TCP (newline-delimited JSON,
:mod:`~.events`) or in-process (:class:`InProcessClient`, what the
tests and the load harness use).  Worlds appear lazily
(``create_world``), sessions move between them (``attach_world``), and
idle unpinned worlds retire after a grace window.  Two read models
narrow a session's stream: ``watch_instance`` (every state transition
of one instance) and ``subscribe_prefix`` (decisions whose value
matches a prefix) — both per-session publish-time filters, so they
never stall a world's clock.

Determinism is the design invariant: client traffic only lands
proposals in the :class:`~.driver.ProposalLedger` before each instance
freezes, so the same spec plus the same accepted proposal schedule
reproduces the batch run byte for byte — sessions attaching, detaching,
or lagging never perturb the world.  The differential suite pins this.

Backpressure is per-session: every session has a bounded event queue;
a slow consumer loses its *oldest* events (visible as a ``seq`` gap and
a drop counter) while the world clock never blocks.

Usage::

    python -m repro.service --nodes 24 --instances 200   # serve over TCP

    svc = ConsensusService(spec)
    client = svc.connect()
    client.propose("value-1")
    await svc.run_world()

:mod:`~.loadgen` drives seeded client populations (flash-crowd, ramp,
churny-reconnect) against an in-process service; the ``svc-*`` scenarios
in :mod:`repro.bench` report its proposals/sec and decision-latency
percentiles alongside the engine benchmarks.
"""

from .driver import EventBus, ProposalLedger, SessionQueue, WorldDriver
from .events import (
    MAX_LINE_BYTES,
    WIRE_SCHEMA,
    WireError,
    catalog,
    decode_event,
    encode_event,
    parse_request,
    validate_request,
)
from .loadgen import LoadProfile, percentiles, run_load, run_load_sync
from .registry import WorldEntry, WorldRegistry, spec_hash
from .server import ConsensusService, InProcessClient, ServiceConfig
from .session import Session, SessionManager

__all__ = [
    "ConsensusService",
    "EventBus",
    "InProcessClient",
    "LoadProfile",
    "MAX_LINE_BYTES",
    "ProposalLedger",
    "ServiceConfig",
    "Session",
    "SessionManager",
    "SessionQueue",
    "WIRE_SCHEMA",
    "WireError",
    "WorldDriver",
    "WorldEntry",
    "WorldRegistry",
    "catalog",
    "decode_event",
    "encode_event",
    "parse_request",
    "percentiles",
    "run_load",
    "run_load_sync",
    "spec_hash",
    "validate_request",
]
