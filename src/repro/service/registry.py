"""The world registry: many live worlds in one service, keyed by spec hash.

The single-world service (PR 6) owned exactly one
:class:`~repro.service.driver.WorldDriver`; the registry generalises
that to a table of named worlds sharing one asyncio loop.  Identity has
two layers:

* every world carries a **spec hash** — :func:`spec_hash` over the
  canonical pickle of its (inert, pre-proposer-injection)
  :class:`~repro.experiment.spec.ExperimentSpec` — reported in
  ``welcome``/``world-created``/``worlds`` events so a client can verify
  *what* a world runs without trusting its name;
* a world created **without** a name is registered under an id derived
  from that hash (``w-<hash12>``), so anonymous creation is literally
  keyed by spec hash: creating the same spec twice is a duplicate-create
  error naming the existing world.  Named worlds (``create_world`` with
  a ``world`` field, or the CLI's pre-created ``w1..wN``) may share a
  template spec under distinct names.

Lifecycle: the registry counts attached sessions per world
(:meth:`attach`/:meth:`detach`) and stamps ``idle_since`` when a world's
last session detaches; :meth:`evict_idle` retires unpinned worlds whose
idle time exceeded the grace window.  Pre-created worlds are *pinned*
(never evicted) so ``hello`` without a world name always has somewhere
to land; an in-flight ``watch_instance`` keeps its world alive simply
because watches belong to attached sessions.
"""

from __future__ import annotations

import copy
import hashlib
import pickle
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..errors import ServiceError
from ..experiment.spec import ExperimentSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .driver import WorldDriver

#: World names on the wire: short, filesystem/JSON-friendly tokens.
WORLD_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Pickle protocol pinned so a spec's hash is stable across processes.
_HASH_PICKLE_PROTOCOL = 4


def spec_hash(spec: ExperimentSpec) -> str:
    """A stable fingerprint of an experiment spec.

    Hashes the canonical pickle (protocol pinned); specs must pickle
    anyway for the sweep runner, so this covers every servable spec.
    A spec smuggling an unpicklable component (say, a locally defined
    proposer closure) falls back to hashing its ``repr`` — weaker (two
    structurally equal specs with distinct closure reprs hash apart) but
    never wrong in the direction that matters: equal hashes still imply
    the operator intended the same world.
    """
    try:
        payload = pickle.dumps(spec, protocol=_HASH_PICKLE_PROTOCOL)
    except Exception:
        payload = repr(spec).encode("utf-8", "backslashreplace")
    return hashlib.sha256(payload).hexdigest()


@dataclass
class WorldEntry:
    """One registered world and its service-level bookkeeping."""

    name: str
    driver: "WorldDriver"
    spec_hash: str
    #: Pinned worlds (the CLI's pre-created ``w1..wN``) never evict.
    pinned: bool = False
    #: Sessions currently attached (registry-maintained).
    sessions: int = 0
    #: Clock reading when the session count last dropped to zero.
    idle_since: float = 0.0
    #: Creation order, for stable ``worlds`` listings.
    serial: int = 0

    def describe(self) -> dict:
        """The client-visible row of a ``worlds`` listing."""
        return {
            "world": self.name,
            "spec_hash": self.spec_hash,
            "round": self.driver.current_round,
            "decided_instances": self.driver.decisions_published,
            "sessions": self.sessions,
            "complete": self.driver.complete,
            "pinned": self.pinned,
        }


class WorldRegistry:
    """Named live worlds, created lazily and evicted when idle.

    The registry builds drivers through the ``driver_factory`` the
    service injects (so service-level knobs — tick pacing, decision-log
    bounds, instrumentation — apply uniformly), bounds the world count,
    and owns the attach/detach session accounting the idle reaper reads.
    ``clock`` is injectable for deterministic eviction tests.
    """

    def __init__(self, template: ExperimentSpec,
                 driver_factory: Callable[[ExperimentSpec, str], "WorldDriver"],
                 *, max_worlds: int = 64,
                 clock: Callable[[], float] | None = None) -> None:
        if max_worlds < 1:
            raise ServiceError("max_worlds must be >= 1")
        self.template = template
        self._driver_factory = driver_factory
        self._max_worlds = max_worlds
        self._clock = clock if clock is not None else _monotonic
        self._worlds: dict[str, WorldEntry] = {}
        self._created = 0
        self.evicted = 0

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return len(self._worlds)

    def __contains__(self, name: str) -> bool:
        return name in self._worlds

    def __iter__(self):
        """Entries in creation order (stable across evict/recreate)."""
        return iter(sorted(self._worlds.values(), key=lambda e: e.serial))

    def names(self) -> list[str]:
        return [entry.name for entry in self]

    def get(self, name: str) -> WorldEntry:
        entry = self._worlds.get(name)
        if entry is None:
            raise ServiceError(
                f"unknown world {name!r}; known worlds: {self.names()}"
            )
        return entry

    def describe(self) -> list[dict]:
        return [entry.describe() for entry in self]

    # -- creation / removal --------------------------------------------

    def create(self, name: str | None = None,
               spec: ExperimentSpec | None = None, *,
               pinned: bool = False) -> WorldEntry:
        """Register (and build) one world; returns its entry.

        ``spec`` defaults to the service template.  With ``name=None``
        the world is keyed by its spec hash — a second anonymous create
        of the same spec is a duplicate, reported with the existing
        world's id so the client can ``attach_world`` instead.
        """
        spec = self.template if spec is None else spec
        fingerprint = spec_hash(spec)
        if name is None:
            name = f"w-{fingerprint[:12]}"
            if name in self._worlds:
                raise ServiceError(
                    f"a world with this spec already exists as {name!r} "
                    "(spec hashes are the identity of unnamed worlds); "
                    "attach_world to it instead of re-creating it"
                )
        else:
            if not WORLD_NAME_RE.match(name):
                raise ServiceError(
                    f"invalid world name {name!r}: use 1-64 characters "
                    "from [A-Za-z0-9._-], starting alphanumeric"
                )
            if name in self._worlds:
                raise ServiceError(f"world {name!r} already exists")
        if len(self._worlds) >= self._max_worlds:
            raise ServiceError(
                f"world limit reached ({self._max_worlds})"
            )
        # Every world runs a *private copy* of its spec — the same idiom
        # as the sweep runner.  Environment components (adversaries,
        # detectors) carry seeded runtime state; sharing one instance
        # across worlds would interleave their RNG draws, making each
        # world's execution depend on its siblings' traffic.  The copy
        # is taken from the never-run template, so every world starts
        # from the pristine seeded state a batch replay also gets.
        driver = self._driver_factory(copy.deepcopy(spec), name)
        self._created += 1
        entry = WorldEntry(name=name, driver=driver, spec_hash=fingerprint,
                           pinned=pinned, idle_since=self._clock(),
                           serial=self._created)
        self._worlds[name] = entry
        return entry

    def remove(self, name: str) -> WorldEntry:
        """Drop one world from the table (the caller stops its clock)."""
        return self._worlds.pop(self.get(name).name)

    # -- session accounting --------------------------------------------

    def attach(self, name: str) -> WorldEntry:
        entry = self.get(name)
        entry.sessions += 1
        return entry

    def detach(self, name: str) -> None:
        entry = self._worlds.get(name)
        if entry is None:  # world already evicted/removed: nothing to do
            return
        entry.sessions = max(0, entry.sessions - 1)
        if entry.sessions == 0:
            entry.idle_since = self._clock()

    # -- idle eviction --------------------------------------------------

    def evict_idle(self, grace_s: float) -> list[WorldEntry]:
        """Retire unpinned worlds idle longer than ``grace_s``.

        A world is idle while it has zero attached sessions — which is
        also why an in-flight watch protects its world: watches belong
        to sessions, and an attached session keeps the count positive.
        Returns the evicted entries so the caller can cancel their
        clock tasks.
        """
        now = self._clock()
        evicted = [
            entry for entry in list(self._worlds.values())
            if not entry.pinned and entry.sessions == 0
            and now - entry.idle_since >= grace_s
        ]
        for entry in evicted:
            del self._worlds[entry.name]
        self.evicted += len(evicted)
        return evicted


def _monotonic() -> float:
    import time

    return time.monotonic()
