"""CHAP — the Convergent History Agreement Protocol of Figure 1.

The protocol is factored in two layers:

* :class:`ChaCore` is the pure protocol state machine: colours, ballots,
  the ``prev-instance`` pointer and ``calculate-history``.  It exposes one
  method per protocol event (begin instance, ballot reception, veto
  decisions/receptions) and is driven explicitly.  The virtual-
  infrastructure emulation (Section 4) reuses this core with its own
  eleven-phase schedule.
* :class:`CHAProcess` adapts the core to the simulator's
  :class:`~repro.net.node.Process` interface with the canonical
  three-rounds-per-instance schedule of Section 3 (ballot, veto-1,
  veto-2), contending for a single contention manager every round as the
  paper prescribes.

Colour semantics (Figure 2):

====================  =========  ==========================
phases that went bad  colour     output for the instance
====================  =========  ==========================
none                  green      the computed history
veto-2 only           yellow     ⊥ (but instance is *good*)
veto-1 (and later)    orange     ⊥
ballot (and later)    red        ⊥, and no ballot is stored
====================  =========  ==========================
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable, Mapping

from ..errors import ProtocolError
from ..net.messages import MIXED_TAGS, Message
from ..net.node import Process
from ..types import BOTTOM, Color, Instance, NO_INSTANCE, Round, Sentinel, Value
from .ballot import Ballot, BallotPayload, VetoPayload
from .history import (
    HISTORY_TIMER,
    History,
    HistoryChain,
    ROOT_CHAIN,
    reference_history_forced,
)

#: Rounds per CHA instance in the canonical schedule (Theorem 14's constant).
ROUNDS_PER_INSTANCE = 3

PHASE_BALLOT = 0
PHASE_VETO1 = 1
PHASE_VETO2 = 2

#: Shared empty decoded-payload sequence (read-only by construction:
#: the deliver paths only ever iterate the decoded list).
_NO_PAYLOADS: tuple = ()

#: Batch-memo miss sentinel (``None`` and ``False`` are real values).
_UNDECODED = Sentinel(__name__, "_UNDECODED")


def calculate_history_reference(instance: Instance, prev: Instance,
                                ballots: Mapping[Instance, Ballot]) -> History:
    """The ``calculate-history`` function of Figure 1 (lines 46-54).

    Walks the ``prev-instance`` pointers backwards from ``prev``, adopting
    the stored ballot value at every instance on the chain and bottom
    everywhere else.  ``instance`` is the current (not necessarily good)
    instance and fixes the domain ``1..instance`` of the result.

    This is the seed implementation, kept verbatim as the executable
    specification of the incremental fold :class:`ChaCore` uses by
    default (see :meth:`ChaCore._fold_chain`); the property suite in
    ``tests/core/test_history_properties.py`` pins the two together.
    """
    entries: dict[Instance, Value] = {}
    k = instance
    while k >= 1:
        if k == prev:
            ballot = ballots.get(k)
            if ballot is None:
                raise ProtocolError(
                    f"calculate-history reached instance {k} on the chain "
                    "but no ballot is stored for it"
                )
            entries[k] = ballot.value
            prev = ballot.prev_instance
        k -= 1
    return History(instance, entries)


#: Public alias: the stateless fold *is* the reference implementation —
#: the incremental engine needs per-core state and lives in ChaCore.
calculate_history = calculate_history_reference


class ChaCore:
    """Protocol state machine for one CHAP participant.

    ``propose`` supplies the input value for each instance (Figure 1,
    line 15); proposals are recorded for the Validity checker.  ``tag``
    labels this participant's wire payloads so several logical CHA
    executions can share a physical channel (used by the emulation).
    """

    def __init__(self, *, propose: Callable[[Instance], Value],
                 tag: Any = "cha",
                 use_reference_history: bool | None = None) -> None:
        self._propose = propose
        self.tag = tag
        if use_reference_history is None:
            use_reference_history = reference_history_forced()
        #: Pin this core to the seed re-walking fold (the incremental
        #: chain engine is the default).
        self.use_reference_history = use_reference_history
        self.k: Instance = NO_INSTANCE
        self.prev_instance: Instance = NO_INSTANCE
        self.status: dict[Instance, Color] = {}
        self.ballots: dict[Instance, Ballot] = {}
        self.proposals_made: dict[Instance, Value] = {}
        #: Completed folds by chain-head instance: extending the chain by
        #: one good instance reuses the whole fold below it.
        self._fold_cache: dict[Instance, HistoryChain] = {}
        #: Chronological outputs: (instance, History or BOTTOM).
        self.outputs: list[tuple[Instance, History | None]] = []

    # ------------------------------------------------------------------
    # Ballot phase
    # ------------------------------------------------------------------

    def begin_instance(self) -> BallotPayload:
        """Start the next instance; returns the ballot this node *would*
        broadcast if the contention manager advises it to (lines 14-19)."""
        self.k += 1
        value = self._propose(self.k)
        self.proposals_made[self.k] = value
        self.status[self.k] = Color.GREEN
        return BallotPayload(
            tag=self.tag,
            instance=self.k,
            ballot=Ballot(value, self.prev_instance),
        )

    def begin_instance_send(self, active: bool) -> BallotPayload | None:
        """Start the next instance and produce the ballot-phase wire
        payload iff the contention manager advises broadcasting.

        The slotted core overrides this with a pooled, allocation-free
        path; the reference core keeps the seed behaviour verbatim
        (the payload is built either way and discarded when inactive).
        """
        payload = self.begin_instance()
        return payload if active else None

    def on_ballot_reception(self, ballots: Iterable[Ballot], collision: bool) -> None:
        """Ballot-phase reception (lines 29-32).

        An empty reception or a collision indication paints the instance
        red; otherwise the minimum ballot is adopted.
        """
        received = sorted(ballots)
        if collision or not received:
            self.status[self.k] = Color.RED
        else:
            self.ballots[self.k] = received[0]

    # ------------------------------------------------------------------
    # Veto phases
    # ------------------------------------------------------------------

    def has_instance(self) -> bool:
        """True once the current instance has ballot-phase state — i.e.
        veto phases may act.  False before ``begin_instance`` has run (a
        node powered up mid-grid whose first active round lands in a
        veto phase) and after a checkpoint reset; both are *pre-instance*
        states in which veto phases are inert (send and receive nothing).
        """
        return self.k in self.status

    def wants_veto1(self) -> bool:
        """Broadcast ⟨veto⟩ in veto-1 iff the instance is red (line 21).

        Inert (False) before the first instance has begun."""
        return self.status.get(self.k) is Color.RED

    def veto1_payload(self) -> VetoPayload | None:
        """The veto-1 wire payload, or None when not vetoing.

        The payload-producing twin of :meth:`wants_veto1`; the slotted
        core overrides it with a pooled path."""
        if self.status.get(self.k) is Color.RED:
            return VetoPayload(self.tag, self.k, 1)
        return None

    def on_veto1_reception(self, veto_seen: bool, collision: bool) -> None:
        """Veto-1 reception (lines 33-35): downgrade green to orange."""
        if veto_seen or collision:
            self.status[self.k] = min(Color.ORANGE, self.status[self.k])

    def wants_veto2(self) -> bool:
        """Broadcast ⟨veto⟩ in veto-2 iff red or orange (line 25).

        Inert (False) before the first instance has begun."""
        status = self.status.get(self.k)
        return status is not None and status <= Color.ORANGE

    def veto2_payload(self) -> VetoPayload | None:
        """The veto-2 wire payload, or None when not vetoing."""
        status = self.status.get(self.k)
        if status is not None and status <= Color.ORANGE:
            return VetoPayload(self.tag, self.k, 2)
        return None

    def on_veto2_reception(self, veto_seen: bool, collision: bool) -> tuple[Instance, History | None]:
        """Veto-2 reception and end-of-instance bookkeeping (lines 36-45).

        Downgrades green to yellow on trouble, advances ``prev-instance``
        for good instances, computes the history, and produces the
        instance's output: the history when green, bottom otherwise.
        """
        k = self.k
        status = self.status[k]
        if veto_seen or collision:
            status = min(Color.YELLOW, status)
            self.status[k] = status
        if status.is_good:
            self.prev_instance = k
        output: History | None
        if status is Color.GREEN:
            output = self.current_history()
        else:
            output = BOTTOM
        self.outputs.append((k, output))
        return k, output

    def finish_instance_single_veto(self) -> tuple[Instance, History | None]:
        """End-of-instance bookkeeping for the single-veto ablation
        (two-phase CHA): no second downgrade opportunity — green
        advances ``prev-instance`` and outputs its history, everything
        else outputs bottom."""
        k = self.k
        status = self.status[k]
        output: History | None
        if status is Color.GREEN:
            self.prev_instance = k
            output = self.current_history()
        else:
            output = BOTTOM
        self.outputs.append((k, output))
        return k, output

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def current_history(self) -> History:
        """The history computed from the current chain (line 41).

        Well-defined at any time; emulation replicas use it to derive the
        virtual node's state even in instances whose output is bottom.
        """
        timer = HISTORY_TIMER
        if not timer.enabled:
            return self._compute_history()
        t0 = time.perf_counter()
        try:
            return self._compute_history()
        finally:
            timer.seconds += time.perf_counter() - t0
            timer.calls += 1

    def _compute_history(self) -> History:
        if self.use_reference_history:
            return calculate_history_reference(
                self.k, self.prev_instance, self.ballots)
        return History._from_chain(
            self.k, self._fold_chain(self.k, self.prev_instance))

    def _fold_chain(self, instance: Instance, prev: Instance, *,
                    floor: Instance = 0) -> HistoryChain:
        """Incremental ``calculate-history``: extend a cached fold.

        Walks the ``prev-instance`` pointers downward only until it meets
        an already-folded chain head (usually the immediately preceding
        good instance), then replays the unseen links on top of the
        shared :class:`~repro.core.history.HistoryChain`.  Matches the
        reference fold exactly, including its quirks: a pointer above
        ``instance`` never matches, an upward or non-positive pointer
        ends the chain, and a pointed-to instance without a stored ballot
        raises (:meth:`_missing_ballot`).  Entries at or below ``floor``
        are excluded (checkpoint-CHA's garbage-collection anchor).
        """
        cache = self._fold_cache
        ballots = self.ballots
        stack: list[tuple[Instance, Value]] = []
        base: HistoryChain | None = None
        limit = instance
        p = prev
        while floor < p <= limit:
            base = cache.get(p)
            if base is not None:
                break
            ballot = ballots.get(p)
            if ballot is None:
                self._missing_ballot(p)
            stack.append((p, ballot.value))
            limit = p - 1  # the reference walk only moves downward
            p = ballot.prev_instance
        if base is None:
            base = ROOT_CHAIN
        for k, v in reversed(stack):
            base = base.child(k, v)
            cache[k] = base
        return base

    def _missing_ballot(self, k: Instance) -> None:
        """Chain reached an instance with no stored ballot (line 49)."""
        raise ProtocolError(
            f"calculate-history reached instance {k} on the chain "
            "but no ballot is stored for it"
        )

    def color_of(self, k: Instance) -> Color:
        """Colour this node assigns instance ``k`` (green if untouched)."""
        return self.status.get(k, Color.GREEN)

    def decided_history(self) -> History | None:
        """The most recent non-bottom output, if any."""
        for _, out in reversed(self.outputs):
            if out is not BOTTOM:
                return out
        return None

    def resident_entries(self) -> int:
        """Stored ballot + status entries (space metric for experiment E9)."""
        return len(self.ballots) + len(self.status)

    # ------------------------------------------------------------------
    # State transfer (used by the emulation's join protocol)
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """A copyable snapshot of the protocol state."""
        return {
            "k": self.k,
            "prev_instance": self.prev_instance,
            "status": dict(self.status),
            "ballots": dict(self.ballots),
        }

    def restore(self, snapshot: Mapping) -> None:
        """Adopt a snapshot produced by :meth:`snapshot`."""
        self.k = snapshot["k"]
        self.prev_instance = snapshot["prev_instance"]
        self.status = dict(snapshot["status"])
        self.ballots = dict(snapshot["ballots"])
        # The adopted ballots may disagree with locally cached folds.
        self._fold_cache = {}


class CHAProcess(Process):
    """CHAP on the canonical 3-round schedule, as a simulator process.

    Every round the node contends for contention manager ``cm_name``
    ("every (correct) node contends for the contention manager Cℓ"); the
    advice only matters in ballot phases.  ``start_round`` shifts the
    phase grid so several ensembles can interleave.
    """

    def __init__(self, *, propose: Callable[[Instance], Value],
                 cm_name: str = "C", tag: Any = "cha",
                 start_round: Round = 0,
                 on_output: Callable[[Instance, History | None], None] | None = None,
                 use_reference_history: bool | None = None,
                 use_reference_core: bool | None = None,
                 pool_payloads: bool = False) -> None:
        if use_reference_core is None:
            from .slotted import reference_core_forced
            use_reference_core = reference_core_forced()
        #: Pin this process to the seed dict-based core (the slotted
        #: array core is the default).
        self.use_reference_core = use_reference_core
        if use_reference_core:
            self.core = ChaCore(propose=propose, tag=tag,
                                use_reference_history=use_reference_history)
        else:
            from .slotted import SlottedChaCore
            self.core = SlottedChaCore(
                propose=propose, tag=tag,
                use_reference_history=use_reference_history,
                pool_payloads=pool_payloads,
            )
        self.cm_name = cm_name
        self.start_round = start_round
        self._on_output = on_output

    def _phase(self, r: Round) -> int:
        return (r - self.start_round) % ROUNDS_PER_INSTANCE

    def contend(self, r: Round) -> str | None:
        return self.cm_name

    def send(self, r: Round, active: bool) -> Any | None:
        phase = (r - self.start_round) % ROUNDS_PER_INSTANCE
        core = self.core
        if phase == PHASE_BALLOT:
            return core.begin_instance_send(active)
        # The veto payload producers are inert before the first instance
        # has begun (a node powered up mid-grid sends nothing until its
        # first ballot phase comes around).
        if phase == PHASE_VETO1:
            return core.veto1_payload()
        return core.veto2_payload()

    def deliver(self, r: Round, messages: tuple[Message, ...], collision: bool) -> None:
        phase = self._phase(r)
        core = self.core
        mine = [m.payload for m in messages if getattr(m.payload, "tag", None) == core.tag]
        if phase == PHASE_BALLOT:
            ballots = [
                p.ballot for p in mine
                if isinstance(p, BallotPayload) and p.instance == core.k
            ]
            core.on_ballot_reception(ballots, collision)
            return
        if not core.has_instance():
            return  # pre-instance veto phase (mid-grid power-up): inert
        k = core.k
        veto = any(isinstance(p, VetoPayload) and p.instance == k
                   for p in mine)
        if phase == PHASE_VETO1:
            core.on_veto1_reception(veto, collision)
        else:
            k, output = core.on_veto2_reception(veto, collision)
            if self._on_output is not None:
                self._on_output(k, output)

    def deliver_batch(self, r: Round, messages: tuple[Message, ...],
                      collision: bool, batch) -> None:
        """Batched delivery — :meth:`deliver` with the per-receiver work
        amortised through the shared round batch.

        The batch already knows the round's tag census, so the common
        single-ensemble case skips the per-message ``getattr`` scan
        (every payload is ours), a foreign ensemble's round is discarded
        wholesale, and empty receptions skip decoding entirely.  The
        derived reception values — the ballot extraction, the veto scan
        — are memoised on the batch keyed by ``(tag, instance, phase)``,
        so the round's first eligible receiver computes them and its
        lockstep peers reuse them (receivers at another instance, e.g. a
        mid-grid joiner, get their own entry).  Eligibility is the
        point: only a receiver whose reception covers the *whole*
        broadcast set may touch the memo, because receptions are
        per-receiver (a transmitter hears only itself; range and drops
        prune others) and two full-coverage receptions are guaranteed
        identical — same messages, same sender-sorted order.  Partial
        receptions take a private unshared scan.  The phase dispatch is
        kept inline (not shared with :meth:`deliver`) on purpose: this
        runs once per node per round and the extra frame is measurable —
        keep the two bodies in lockstep.
        """
        core = self.core
        phase = (r - self.start_round) % ROUNDS_PER_INSTANCE
        if phase == PHASE_BALLOT:
            if not messages:
                ballots = _NO_PAYLOADS
            elif len(messages) == len(batch.broadcasts):
                memo = batch.memo
                k = core.k
                key = (core.tag, k, PHASE_BALLOT)
                ballots = memo.get(key, _UNDECODED)
                if ballots is _UNDECODED:
                    ballots = [
                        p.ballot for p in self._decode_mine(messages, batch)
                        if isinstance(p, BallotPayload) and p.instance == k
                    ]
                    memo[key] = ballots
            else:
                k = core.k
                tag = core.tag
                ballots = [
                    m.payload.ballot for m in messages
                    if isinstance(m.payload, BallotPayload)
                    and m.payload.tag == tag and m.payload.instance == k
                ]
            core.on_ballot_reception(ballots, collision)
            return
        if not core.has_instance():
            return  # pre-instance veto phase (mid-grid power-up): inert
        if not messages:
            veto = False
        elif len(messages) == len(batch.broadcasts):
            memo = batch.memo
            k = core.k
            key = (core.tag, k, phase)
            veto = memo.get(key, _UNDECODED)
            if veto is _UNDECODED:
                veto = False
                for p in self._decode_mine(messages, batch):
                    if isinstance(p, VetoPayload) and p.instance == k:
                        veto = True
                        break
                memo[key] = veto
        else:
            k = core.k
            tag = core.tag
            veto = any(
                isinstance(m.payload, VetoPayload)
                and m.payload.tag == tag and m.payload.instance == k
                for m in messages
            )
        if phase == PHASE_VETO1:
            core.on_veto1_reception(veto, collision)
        else:
            k, output = core.on_veto2_reception(veto, collision)
            if self._on_output is not None:
                self._on_output(k, output)

    def _decode_mine(self, messages, batch):
        """The round's payloads carrying this core's tag (memoised).

        Only called on a derived-value memo miss by a receiver whose
        reception covers the whole broadcast set, so the decoded list is
        receiver-independent: every full-coverage reception carries the
        same messages in the same sender-sorted order.
        """
        memo = batch.memo
        tag = self.core.tag
        mine = memo.get(("mine", tag), _UNDECODED)
        if mine is _UNDECODED:
            uniform = batch.uniform_tag()
            if uniform == tag:
                mine = [m.payload for m in messages]
            elif uniform is not MIXED_TAGS:
                mine = _NO_PAYLOADS  # a foreign ensemble's round
            else:
                mine = [m.payload for m in messages
                        if getattr(m.payload, "tag", None) == tag]
            memo[("mine", tag)] = mine
        return mine

    # Convenience passthroughs -----------------------------------------

    @property
    def outputs(self) -> list[tuple[Instance, History | None]]:
        return self.core.outputs

    @property
    def proposals_made(self) -> dict[Instance, Value]:
        return self.core.proposals_made
