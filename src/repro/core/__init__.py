"""The paper's core contribution: convergent history agreement (CHAP)."""

from .ballot import Ballot, BallotPayload, VetoPayload, canonical_key
from .cha import (
    CHAProcess,
    ChaCore,
    PHASE_BALLOT,
    PHASE_VETO1,
    PHASE_VETO2,
    ROUNDS_PER_INSTANCE,
    calculate_history,
    calculate_history_reference,
)
from .checkpoint import (
    CheckpointCHAProcess,
    CheckpointChaCore,
    CheckpointOutput,
)
from .history import (
    EMPTY_HISTORY,
    HISTORY_TIMER,
    History,
    HistoryChain,
    reference_history_forced,
)
from .runner import ChaRun, cluster_positions, default_proposer, run_cha
from .slotted import (
    REFERENCE_CORE_ENV,
    SlottedChaCore,
    SlottedCheckpointChaCore,
    reference_core_forced,
)
from .spec import (
    check_agreement,
    check_all,
    check_liveness,
    check_validity,
    find_liveness_point,
)

__all__ = [
    "Ballot",
    "BallotPayload",
    "CHAProcess",
    "ChaCore",
    "ChaRun",
    "CheckpointCHAProcess",
    "CheckpointChaCore",
    "CheckpointOutput",
    "EMPTY_HISTORY",
    "HISTORY_TIMER",
    "History",
    "HistoryChain",
    "PHASE_BALLOT",
    "PHASE_VETO1",
    "PHASE_VETO2",
    "REFERENCE_CORE_ENV",
    "ROUNDS_PER_INSTANCE",
    "SlottedChaCore",
    "SlottedCheckpointChaCore",
    "VetoPayload",
    "calculate_history",
    "calculate_history_reference",
    "canonical_key",
    "reference_core_forced",
    "reference_history_forced",
    "check_agreement",
    "check_all",
    "check_liveness",
    "check_validity",
    "cluster_positions",
    "default_proposer",
    "find_liveness_point",
    "run_cha",
]
