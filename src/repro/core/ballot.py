"""Ballots and their total order, plus the CHAP wire payloads.

A ballot (Figure 1, line 16) is the pair ``⟨v, prev-instance⟩``: the
proposal for the current instance and the proposer's most recent *good*
instance.  Ballots must be totally ordered because a node that receives
several ballots adopts ``min(M)`` deterministically (line 32).

The paper's value domain ``V`` is an abstract totally-ordered set; this
implementation admits heterogeneous Python values by comparing their
*canonical keys* — type-tagged recursive tuples — which yields a total
order even across types (all ints before all strings, etc.).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any

from ..types import Instance, Value


def canonical_key(value: Value) -> tuple:
    """A type-tagged, recursively ordered key for an arbitrary value in V.

    Guarantees a total order over the supported domain: ``bool``, ``int``,
    ``float``, ``str``, ``bytes``, ``None``-free tuples/lists and
    frozensets of supported values.  Tags sort first, so heterogeneous
    comparisons never hit Python's cross-type ``TypeError``.
    """
    if isinstance(value, bool):
        return ("a-bool", int(value))
    if isinstance(value, int):
        return ("b-int", value)
    if isinstance(value, float):
        return ("c-float", value)
    if isinstance(value, str):
        return ("d-str", value)
    if isinstance(value, bytes):
        return ("e-bytes", value)
    if isinstance(value, (tuple, list)):
        return ("f-seq", tuple(canonical_key(v) for v in value))
    if isinstance(value, frozenset):
        return ("g-set", tuple(sorted(canonical_key(v) for v in value)))
    raise TypeError(
        f"value {value!r} of type {type(value).__name__} is outside the "
        "supported totally-ordered domain V"
    )


@functools.total_ordering
@dataclass(frozen=True, slots=True)
class Ballot:
    """The pair ``⟨v, prev-instance⟩`` of Figure 1."""

    value: Value
    prev_instance: Instance

    def sort_key(self) -> tuple:
        return (canonical_key(self.value), self.prev_instance)

    def __lt__(self, other: "Ballot") -> bool:
        return self.sort_key() < other.sort_key()


# ----------------------------------------------------------------------
# Wire payloads.  Both are constant-size in the paper's accounting: a
# value from V plus instance pointers (footnote 3 charges instance
# pointers as constants).  The instance field is a sanity tag — the slot
# number already determines the instance in the synchronous model — and
# lets the emulation multiplex several CHA instances on one channel.
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class BallotPayload:
    """Ballot-phase broadcast: ``⟨v, prev-instance⟩`` tagged with instance."""

    tag: Any          # protocol/virtual-node tag, for multiplexing
    instance: Instance
    ballot: Ballot


@dataclass(frozen=True, slots=True)
class VetoPayload:
    """Veto-phase broadcast: the constant-size ``⟨veto⟩`` message."""

    tag: Any
    instance: Instance
    phase: int        # 1 for veto-1, 2 for veto-2 (sanity tag)
