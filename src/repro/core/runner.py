"""Convenience harness: run a CHAP ensemble in the Section 3 setting.

Section 3 fixes the environment: all ``n`` nodes sit within ``R1/2`` of a
location ``ℓ`` (so every pair can hear every pair), at least one is
correct, and a leader-election contention manager ``Cℓ`` serves them.
:func:`run_cha` builds exactly that world, runs a given number of
instances, and returns everything the spec checkers and the experiment
tables need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping

from ..contention import ContentionManager
from ..detectors import CollisionDetector
from ..geometry import Point
from ..net import (
    Adversary,
    CrashSchedule,
    Simulator,
    Trace,
)
from ..types import Color, Instance, NodeId, Value
from .cha import CHAProcess
from .history import History
from .spec import OutputLog

#: Default radii for the single-region setting.
DEFAULT_R1 = 1.0
DEFAULT_R2 = 1.5


def cluster_positions(n: int, *, center: Point = Point(0.0, 0.0),
                      radius: float = DEFAULT_R1 / 4) -> list[Point]:
    """``n`` positions on a circle of ``radius`` around ``center``.

    ``radius <= R1/2`` keeps every pair within ``R1`` of each other, the
    Section 3 precondition.  A circle (rather than a single point) keeps
    positions distinct so geometry bugs cannot hide.
    """
    if n < 1:
        raise ValueError("need at least one node")
    positions = []
    for i in range(n):
        angle = 2.0 * math.pi * i / n
        positions.append(Point(
            center.x + radius * math.cos(angle),
            center.y + radius * math.sin(angle),
        ))
    return positions


def default_proposer(node: NodeId) -> Callable[[Instance], Value]:
    """Distinct, totally-ordered string proposals: ``v<node>.<instance>``.

    Values are fixed-width (the paper's domain ``V`` has constant-size
    elements), so that message-size measurements are not polluted by the
    decimal width of the instance number.
    """
    return lambda k: f"v{node}.{k:06d}"


@dataclass
class ChaRun:
    """Everything produced by one CHAP ensemble execution."""

    simulator: Simulator
    processes: dict[NodeId, CHAProcess]
    trace: Trace
    instances: Instance

    @property
    def outputs(self) -> dict[NodeId, OutputLog]:
        return {node: proc.outputs for node, proc in self.processes.items()}

    @property
    def proposals(self) -> dict[NodeId, Mapping[Instance, Value]]:
        return {node: proc.proposals_made for node, proc in self.processes.items()}

    def surviving_nodes(self) -> list[NodeId]:
        """Nodes alive at the end of the execution."""
        return [
            node for node in self.processes
            if self.simulator.alive(node)
        ]

    def colors_at(self, k: Instance) -> dict[NodeId, Color]:
        """Colour each *surviving* node assigned to instance ``k``."""
        return {
            node: proc.core.color_of(k)
            for node, proc in self.processes.items()
            if self.simulator.alive(node)
        }

    def history_of(self, node: NodeId) -> History | None:
        return self.processes[node].core.decided_history()


def run_cha(n: int, instances: Instance, *,
            adversary: Adversary | None = None,
            detector: CollisionDetector | None = None,
            cm: ContentionManager | None = None,
            crashes: CrashSchedule | None = None,
            proposer_factory: Callable[[NodeId], Callable[[Instance], Value]] | None = None,
            process_factory: Callable[..., CHAProcess] | None = None,
            r1: float = DEFAULT_R1, r2: float = DEFAULT_R2,
            rcf: int = 0) -> ChaRun:
    """Run ``n`` CHAP replicas for ``instances`` agreement instances.

    Defaults give the stable, benign world (no adversary, accurate
    detector, immediately-stable contention manager); pass an adversary,
    a later-stabilising detector/manager, and a crash schedule to exercise
    the unstable regime.

    This is a compatibility shim over the declarative experiment API —
    equivalent to building an :class:`~repro.experiment.ExperimentSpec`
    with a :class:`~repro.experiment.ClusterWorld` and a
    :class:`~repro.experiment.CHA` protocol and calling
    :func:`repro.experiment.run`; new code should do that directly.
    """
    from ..experiment import (
        CHA,
        ClusterWorld,
        EnvironmentSpec,
        ExperimentSpec,
        WorkloadSpec,
    )
    from ..experiment.runner import run as run_experiment

    result = run_experiment(ExperimentSpec(
        protocol=CHA(proposer_factory=proposer_factory,
                     process_factory=process_factory),
        world=ClusterWorld(n=n, r1=r1, r2=r2, rcf=rcf,
                           cluster_radius=DEFAULT_R1 / 4),
        environment=EnvironmentSpec(adversary=adversary, detector=detector,
                                    cm=cm, crashes=crashes),
        workload=WorkloadSpec(instances=instances),
    ))
    return result.cha_run
