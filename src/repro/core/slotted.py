"""Slotted/flat-array protocol cores for the CHA family.

The dict-based :class:`~repro.core.cha.ChaCore` indexes every piece of
per-instance state (colour, adopted ballot, cached fold) through hash
lookups and allocates a fresh ``Ballot`` + ``BallotPayload`` pair per
node per instance.  After PR 5 pushed engine dispatch down to ~15% of
wall time, that per-instance churn *is* the profile.  This module keeps
the same observable protocol behaviour in flat storage:

* colours live in a ``list[int]`` indexed by instance (``-1`` = absent),
* adopted ballots are parallel ``(value, prev_instance)`` rows, with the
  ``Ballot`` object materialised only at wire/snapshot boundaries (and
  the exact wire object retained when traces may hold it, so pickled
  traces keep their object-sharing structure),
* the fold cache is a parallel ``list[HistoryChain | None]`` — an array
  fast path for :meth:`_fold_chain`'s cache probe,
* wire payloads can be pooled across rounds (``pool_payloads=True``):
  one ``BallotPayload``/``Ballot`` and one ``VetoPayload`` per veto
  phase are mutated in place each round.  Pooling is only safe when
  nothing retains wire objects across rounds, i.e. when the run keeps
  no trace; the experiment runner enables it exactly for
  ``keep_trace=False`` cluster runs.

The dict-based cores remain the executable specification behind
``REPRO_REFERENCE_CORE=1`` / ``ExperimentSpec.use_reference_core`` /
``use_reference_core=`` ctor args — the fourth reference switch
alongside the channel, history and engine switches — and the
differential suite pins the two byte-identical.

``status`` and ``ballots`` stay available as live, writable
dict-style views (tests and glass-box checkers mutate protocol state
through them); only the hot paths bypass the views.
"""

from __future__ import annotations

import os
import time
from collections.abc import MutableMapping
from typing import Any, Callable, Iterable, Iterator, Mapping

from ..errors import ProtocolError
from ..types import BOTTOM, Color, Instance, NO_INSTANCE, Sentinel, Value
from .ballot import Ballot, BallotPayload, VetoPayload
from .cha import calculate_history_reference
from .checkpoint import CheckpointOutput, Reducer
from .history import (
    HISTORY_TIMER,
    History,
    HistoryChain,
    ROOT_CHAIN,
    reference_history_forced,
)

#: Environment switch pinning every CHA-family process to the dict-based
#: reference core (mirrors ``REPRO_REFERENCE_CHANNEL``/``_HISTORY``/
#: ``_ENGINE``).
REFERENCE_CORE_ENV = "REPRO_REFERENCE_CORE"


def reference_core_forced() -> bool:
    """True when the environment pins the dict-based reference core."""
    return os.environ.get(REFERENCE_CORE_ENV, "0") not in ("", "0")


#: Absent-colour sentinel in the status array (colours are 0..3).
_NO_STATUS = -1
_RED = int(Color.RED)
_ORANGE = int(Color.ORANGE)
_YELLOW = int(Color.YELLOW)
_GREEN = int(Color.GREEN)

#: Small-int -> Color, indexed by colour value.
_COLORS = (Color.RED, Color.ORANGE, Color.YELLOW, Color.GREEN)

#: Absent-ballot sentinel in the ballot-value array (``None`` is a legal
#: value in V's Python realisation, so absence needs its own object).
#: Pickle-stable: fresh cores carry it in their arrays, and a process
#: shipped to a shard worker must keep satisfying ``is _ABSENT`` checks.
_ABSENT = Sentinel(__name__, "_ABSENT")


class _StatusView(MutableMapping):
    """Live dict view over a slotted core's colour array."""

    __slots__ = ("_core",)

    def __init__(self, core: "SlottedChaCore") -> None:
        self._core = core

    def __getitem__(self, k: Instance) -> Color:
        arr = self._core._status_arr
        if isinstance(k, int) and 0 <= k < len(arr):
            code = arr[k]
            if code >= 0:
                return _COLORS[code]
        raise KeyError(k)

    def __setitem__(self, k: Instance, color: Color) -> None:
        code = int(color)
        if not 0 <= code <= 3:
            raise ValueError(f"not a CHAP colour: {color!r}")
        core = self._core
        core._ensure(k)
        if core._status_arr[k] < 0:
            core._status_count += 1
        core._status_arr[k] = code

    def __delitem__(self, k: Instance) -> None:
        core = self._core
        arr = core._status_arr
        if isinstance(k, int) and 0 <= k < len(arr) and arr[k] >= 0:
            arr[k] = _NO_STATUS
            core._status_count -= 1
            return
        raise KeyError(k)

    def __iter__(self) -> Iterator[Instance]:
        arr = self._core._status_arr
        return (k for k in range(len(arr)) if arr[k] >= 0)

    def __len__(self) -> int:
        return self._core._status_count

    def __repr__(self) -> str:
        return repr(dict(self))


class _BallotView(MutableMapping):
    """Live dict view over a slotted core's ballot rows.

    Reads materialise (and cache) ``Ballot`` objects on demand; in
    unpooled runs the cached object is the exact wire ballot the core
    adopted, so snapshots preserve the reference core's object sharing.
    """

    __slots__ = ("_core",)

    def __init__(self, core: "SlottedChaCore") -> None:
        self._core = core

    def __getitem__(self, k: Instance) -> Ballot:
        core = self._core
        vals = core._ballot_vals
        if isinstance(k, int) and 0 <= k < len(vals):
            value = vals[k]
            if value is not _ABSENT:
                obj = core._ballot_objs[k]
                if obj is None:
                    obj = Ballot(value, core._ballot_prevs[k])
                    core._ballot_objs[k] = obj
                return obj
        raise KeyError(k)

    def __setitem__(self, k: Instance, ballot: Ballot) -> None:
        core = self._core
        core._ensure(k)
        if core._ballot_vals[k] is _ABSENT:
            core._ballot_count += 1
        core._ballot_vals[k] = ballot.value
        core._ballot_prevs[k] = ballot.prev_instance
        core._ballot_objs[k] = ballot

    def __delitem__(self, k: Instance) -> None:
        core = self._core
        vals = core._ballot_vals
        if isinstance(k, int) and 0 <= k < len(vals) and vals[k] is not _ABSENT:
            vals[k] = _ABSENT
            core._ballot_objs[k] = None
            core._ballot_count -= 1
            return
        raise KeyError(k)

    def __iter__(self) -> Iterator[Instance]:
        vals = self._core._ballot_vals
        return (k for k in range(len(vals)) if vals[k] is not _ABSENT)

    def __len__(self) -> int:
        return self._core._ballot_count

    def __repr__(self) -> str:
        return repr(dict(self))


class SlottedChaCore:
    """:class:`~repro.core.cha.ChaCore` semantics over flat arrays.

    Duck-type compatible with the dict-based core — same methods, same
    quirks (pre-instance ballot receptions still create an entry at
    instance 0; missing-ballot chains still raise), byte-identical
    outputs — with per-instance state in parallel arrays and optional
    wire-payload pooling.
    """

    __slots__ = (
        "_propose", "tag", "use_reference_history", "pool_payloads",
        "k", "prev_instance", "proposals_made", "outputs",
        "_status_arr", "_ballot_vals", "_ballot_prevs", "_ballot_objs",
        "_fold_cache", "_status_count", "_ballot_count",
        "_status_view", "_ballot_view",
        "_pooled_ballot_payload", "_pooled_veto1", "_pooled_veto2",
    )

    def __init__(self, *, propose: Callable[[Instance], Value],
                 tag: Any = "cha",
                 use_reference_history: bool | None = None,
                 pool_payloads: bool = False) -> None:
        self._propose = propose
        self.tag = tag
        if use_reference_history is None:
            use_reference_history = reference_history_forced()
        self.use_reference_history = use_reference_history
        #: Reuse one BallotPayload/Ballot and one VetoPayload per phase
        #: across rounds.  Only safe when no trace retains wire objects.
        self.pool_payloads = pool_payloads
        self.k: Instance = NO_INSTANCE
        self.prev_instance: Instance = NO_INSTANCE
        self.proposals_made: dict[Instance, Value] = {}
        self.outputs: list[tuple[Instance, History | None]] = []
        # Parallel arrays indexed by instance (index 0 is the
        # NO_INSTANCE slot: normally empty, but reachable through the
        # same quirks as the reference dicts).
        self._status_arr: list[int] = [_NO_STATUS]
        self._ballot_vals: list[Any] = [_ABSENT]
        self._ballot_prevs: list[Instance] = [NO_INSTANCE]
        self._ballot_objs: list[Ballot | None] = [None]
        self._fold_cache: list[HistoryChain | None] = [None]
        self._status_count = 0
        self._ballot_count = 0
        self._status_view = _StatusView(self)
        self._ballot_view = _BallotView(self)
        self._pooled_ballot_payload: BallotPayload | None = None
        self._pooled_veto1: VetoPayload | None = None
        self._pooled_veto2: VetoPayload | None = None

    # ------------------------------------------------------------------
    # Storage plumbing
    # ------------------------------------------------------------------

    def _ensure(self, k: Instance) -> None:
        """Grow all parallel arrays to cover instance ``k``.

        Over-allocates (doubling) so the once-per-instance hot paths,
        which guard with ``k >= len(arr)``, amortise growth to O(1):
        empty slots hold the same sentinels a fresh array would, so
        capacity beyond ``k`` is observationally inert.
        """
        arr = self._status_arr
        need = k + 1 - len(arr)
        if need > 0:
            grow = max(need, len(arr), 8)
            arr.extend([_NO_STATUS] * grow)
            self._ballot_vals.extend([_ABSENT] * grow)
            self._ballot_prevs.extend([NO_INSTANCE] * grow)
            self._ballot_objs.extend([None] * grow)
            self._fold_cache.extend([None] * grow)

    def _clear_storage(self, length: int) -> None:
        self._status_arr = [_NO_STATUS] * length
        self._ballot_vals = [_ABSENT] * length
        self._ballot_prevs = [NO_INSTANCE] * length
        self._ballot_objs = [None] * length
        self._fold_cache = [None] * length
        self._status_count = 0
        self._ballot_count = 0

    @property
    def status(self) -> MutableMapping:
        return self._status_view

    @status.setter
    def status(self, mapping: Mapping[Instance, Color]) -> None:
        arr = self._status_arr
        for i in range(len(arr)):
            arr[i] = _NO_STATUS
        self._status_count = 0
        view = self._status_view
        for k, color in mapping.items():
            view[k] = color

    @property
    def ballots(self) -> MutableMapping:
        return self._ballot_view

    @ballots.setter
    def ballots(self, mapping: Mapping[Instance, Ballot]) -> None:
        vals = self._ballot_vals
        objs = self._ballot_objs
        for i in range(len(vals)):
            vals[i] = _ABSENT
            objs[i] = None
        self._ballot_count = 0
        view = self._ballot_view
        for k, ballot in mapping.items():
            view[k] = ballot

    # ------------------------------------------------------------------
    # Ballot phase
    # ------------------------------------------------------------------

    def _begin(self) -> Value:
        """Advance ``k``, record the proposal, paint the slot green."""
        k = self.k + 1
        self.k = k
        value = self._propose(k)
        self.proposals_made[k] = value
        arr = self._status_arr
        if k >= len(arr):
            self._ensure(k)  # extends in place: ``arr`` stays valid
        if arr[k] < 0:
            self._status_count += 1
        arr[k] = _GREEN
        return value

    def begin_instance(self) -> BallotPayload:
        """Start the next instance; always returns a fresh payload
        (compatibility path — the pooled hot path is
        :meth:`begin_instance_send`)."""
        value = self._begin()
        return BallotPayload(
            tag=self.tag,
            instance=self.k,
            ballot=Ballot(value, self.prev_instance),
        )

    def begin_instance_send(self, active: bool) -> BallotPayload | None:
        """Start the next instance and produce the wire payload iff the
        contention manager advises broadcasting (lines 14-19).

        Inactive nodes advance their state without allocating anything;
        active nodes reuse the pooled payload when pooling is on.
        """
        value = self._begin()
        if not active:
            return None
        if not self.pool_payloads:
            return BallotPayload(
                tag=self.tag,
                instance=self.k,
                ballot=Ballot(value, self.prev_instance),
            )
        payload = self._pooled_ballot_payload
        if payload is None:
            payload = BallotPayload(
                tag=self.tag,
                instance=self.k,
                ballot=Ballot(value, self.prev_instance),
            )
            self._pooled_ballot_payload = payload
            return payload
        ballot = payload.ballot
        object.__setattr__(ballot, "value", value)
        object.__setattr__(ballot, "prev_instance", self.prev_instance)
        object.__setattr__(payload, "instance", self.k)
        return payload

    def on_ballot_reception(self, ballots: Iterable[Ballot],
                            collision: bool) -> None:
        """Ballot-phase reception (lines 29-32): adopt ``min(M)``.

        Matches the reference's ``sorted(...)[0]`` including its stable
        tie-break: the *first* minimal wire ballot is the one adopted
        (and retained, when wire objects may outlive the round).
        """
        k = self.k
        best: Ballot | None = None
        if not collision:
            if type(ballots) is list and len(ballots) == 1:
                # The common case — exactly the leader's ballot — needs
                # no sort key (matching the reference: sorting one
                # element performs no comparisons).
                best = ballots[0]
            else:
                best_key = None
                for b in ballots:
                    key = b.sort_key()
                    if best_key is None or key < best_key:
                        best = b
                        best_key = key
        if best is None:
            arr = self._status_arr
            if k >= len(arr):
                self._ensure(k)
            if arr[k] < 0:
                self._status_count += 1
            arr[k] = _RED
            return
        vals = self._ballot_vals
        if k >= len(vals):
            self._ensure(k)
        if vals[k] is _ABSENT:
            self._ballot_count += 1
        vals[k] = best.value
        self._ballot_prevs[k] = best.prev_instance
        # Pooled wire ballots are mutated next round; only retain the
        # object when the run may hold it (trace/snapshot sharing).
        self._ballot_objs[k] = None if self.pool_payloads else best

    # ------------------------------------------------------------------
    # Veto phases
    # ------------------------------------------------------------------

    def has_instance(self) -> bool:
        """True once the current instance has ballot-phase state — i.e.
        veto phases may act.  False before ``begin_instance`` has run
        (a node powered up mid-grid) and after a checkpoint reset."""
        k = self.k
        arr = self._status_arr
        return k < len(arr) and arr[k] >= 0

    def wants_veto1(self) -> bool:
        """Broadcast ⟨veto⟩ in veto-1 iff the instance is red (line 21).

        Inert (False) before the first instance has begun."""
        k = self.k
        arr = self._status_arr
        return k < len(arr) and arr[k] == _RED

    def veto1_payload(self) -> VetoPayload | None:
        """The veto-1 wire payload, or None (pooled hot path)."""
        k = self.k
        arr = self._status_arr
        if k >= len(arr) or arr[k] != _RED:
            return None
        if not self.pool_payloads:
            return VetoPayload(self.tag, k, 1)
        payload = self._pooled_veto1
        if payload is None:
            payload = VetoPayload(self.tag, k, 1)
            self._pooled_veto1 = payload
        else:
            object.__setattr__(payload, "instance", k)
        return payload

    def on_veto1_reception(self, veto_seen: bool, collision: bool) -> None:
        """Veto-1 reception (lines 33-35): downgrade green to orange."""
        if veto_seen or collision:
            k = self.k
            arr = self._status_arr
            status = arr[k] if k < len(arr) else _NO_STATUS
            if status < 0:
                raise KeyError(k)
            if status > _ORANGE:
                arr[k] = _ORANGE

    def wants_veto2(self) -> bool:
        """Broadcast ⟨veto⟩ in veto-2 iff red or orange (line 25).

        Inert (False) before the first instance has begun."""
        k = self.k
        arr = self._status_arr
        return k < len(arr) and 0 <= arr[k] <= _ORANGE

    def veto2_payload(self) -> VetoPayload | None:
        """The veto-2 wire payload, or None (pooled hot path)."""
        k = self.k
        arr = self._status_arr
        if k >= len(arr) or not 0 <= arr[k] <= _ORANGE:
            return None
        if not self.pool_payloads:
            return VetoPayload(self.tag, k, 2)
        payload = self._pooled_veto2
        if payload is None:
            payload = VetoPayload(self.tag, k, 2)
            self._pooled_veto2 = payload
        else:
            object.__setattr__(payload, "instance", k)
        return payload

    def on_veto2_reception(self, veto_seen: bool,
                           collision: bool) -> tuple[Instance, History | None]:
        """Veto-2 reception and end-of-instance bookkeeping (lines 36-45)."""
        k = self.k
        arr = self._status_arr
        status = arr[k] if k < len(arr) else _NO_STATUS
        if status < 0:
            raise KeyError(k)
        if (veto_seen or collision) and status > _YELLOW:
            status = _YELLOW
            arr[k] = _YELLOW
        if status >= _YELLOW:
            self.prev_instance = k
        output: History | None
        if status == _GREEN:
            # Inline fast path for the dominant green case: skip the
            # current_history/_compute_history frames when neither the
            # timer nor the reference fold is armed.
            if HISTORY_TIMER.enabled or self.use_reference_history:
                output = self.current_history()
            else:
                output = History._from_chain(
                    k, self._fold_chain(k, self.prev_instance))
        else:
            output = BOTTOM
        self.outputs.append((k, output))
        return k, output

    def finish_instance_single_veto(self) -> tuple[Instance, History | None]:
        """End-of-instance bookkeeping for the single-veto ablation
        (two-phase CHA): no second downgrade opportunity — green outputs
        its history, everything else outputs bottom."""
        k = self.k
        arr = self._status_arr
        status = arr[k] if k < len(arr) else _NO_STATUS
        if status < 0:
            raise KeyError(k)
        output: History | None
        if status == _GREEN:
            self.prev_instance = k
            output = self.current_history()
        else:
            output = BOTTOM
        self.outputs.append((k, output))
        return k, output

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def current_history(self) -> History:
        """The history computed from the current chain (line 41)."""
        timer = HISTORY_TIMER
        if not timer.enabled:
            return self._compute_history()
        t0 = time.perf_counter()
        try:
            return self._compute_history()
        finally:
            timer.seconds += time.perf_counter() - t0
            timer.calls += 1

    def _compute_history(self) -> History:
        if self.use_reference_history:
            return calculate_history_reference(
                self.k, self.prev_instance, self._ballot_view)
        return History._from_chain(
            self.k, self._fold_chain(self.k, self.prev_instance))

    def _fold_chain(self, instance: Instance, prev: Instance, *,
                    floor: Instance = 0) -> HistoryChain:
        """Incremental ``calculate-history`` over the flat arrays.

        Same walk as :meth:`ChaCore._fold_chain` with the cache probe
        and ballot lookup turned into array indexing.
        """
        cache = self._fold_cache
        vals = self._ballot_vals
        prevs = self._ballot_prevs
        n = len(vals)
        # Fast path for the spine shapes that dominate steady state:
        # the start entry is already cached (repeat fold), or it is one
        # uncached link whose parent is cached / the root.  Falls
        # through to the general walk in every other case.
        p = prev
        if floor < p <= instance and p < n:
            node = cache[p]
            if node is not None:
                return node
            value = vals[p]
            if value is not _ABSENT:
                q = prevs[p]
                if not floor < q <= p - 1:
                    node = ROOT_CHAIN.child(p, value)
                    cache[p] = node
                    return node
                if q < n:
                    base = cache[q]
                    if base is not None:
                        node = base.child(p, value)
                        cache[p] = node
                        return node
        stack: list[tuple[Instance, Value]] = []
        base: HistoryChain | None = None
        limit = instance
        p = prev
        while floor < p <= limit:
            if p < n:
                base = cache[p]
                if base is not None:
                    break
                value = vals[p]
            else:
                value = _ABSENT
            if value is _ABSENT:
                self._missing_ballot(p)
            stack.append((p, value))
            limit = p - 1  # the reference walk only moves downward
            p = prevs[p]
        if base is None:
            base = ROOT_CHAIN
        for k, v in reversed(stack):
            base = base.child(k, v)
            cache[k] = base
        return base

    def _missing_ballot(self, k: Instance) -> None:
        """Chain reached an instance with no stored ballot (line 49)."""
        raise ProtocolError(
            f"calculate-history reached instance {k} on the chain "
            "but no ballot is stored for it"
        )

    def color_of(self, k: Instance) -> Color:
        """Colour this node assigns instance ``k`` (green if untouched)."""
        arr = self._status_arr
        if 0 <= k < len(arr):
            code = arr[k]
            if code >= 0:
                return _COLORS[code]
        return Color.GREEN

    def decided_history(self) -> History | None:
        """The most recent non-bottom output, if any."""
        for _, out in reversed(self.outputs):
            if out is not BOTTOM:
                return out
        return None

    def resident_entries(self) -> int:
        """Stored ballot + status entries (space metric for experiment E9)."""
        return self._ballot_count + self._status_count

    # ------------------------------------------------------------------
    # State transfer (used by the emulation's join protocol)
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """A copyable snapshot of the protocol state.

        Dicts are materialised in ascending instance order — the order
        the reference core's insertion-ordered dicts carry in practice —
        and ballot objects are the retained/cached ones, so pickled
        snapshots share structure with the trace exactly as the
        reference core's do.
        """
        arr = self._status_arr
        status = {}
        for k in range(len(arr)):
            code = arr[k]
            if code >= 0:
                status[k] = _COLORS[code]
        vals = self._ballot_vals
        view = self._ballot_view
        ballots = {}
        for k in range(len(vals)):
            if vals[k] is not _ABSENT:
                ballots[k] = view[k]
        return {
            "k": self.k,
            "prev_instance": self.prev_instance,
            "status": status,
            "ballots": ballots,
        }

    def restore(self, snapshot: Mapping) -> None:
        """Adopt a snapshot produced by :meth:`snapshot`."""
        self.k = snapshot["k"]
        self.prev_instance = snapshot["prev_instance"]
        self._clear_storage(self.k + 1)
        status_view = self._status_view
        for k, color in snapshot["status"].items():
            status_view[k] = color
        ballot_view = self._ballot_view
        for k, ballot in snapshot["ballots"].items():
            ballot_view[k] = ballot


class SlottedCheckpointChaCore(SlottedChaCore):
    """:class:`~repro.core.checkpoint.CheckpointChaCore` over flat arrays."""

    __slots__ = ("_reducer", "checkpoint_instance", "checkpoint_state")

    def __init__(self, *, propose: Callable[[Instance], Value],
                 reducer: Reducer, initial_state: Any,
                 tag: Any = "cha",
                 use_reference_history: bool | None = None,
                 pool_payloads: bool = False) -> None:
        super().__init__(propose=propose, tag=tag,
                         use_reference_history=use_reference_history,
                         pool_payloads=pool_payloads)
        self._reducer = reducer
        self.checkpoint_instance: Instance = NO_INSTANCE
        self.checkpoint_state: Any = initial_state

    # -- folding --------------------------------------------------------

    def _fold_to(self, green: Instance, history: History | None = None) -> None:
        """Advance the checkpoint to the green instance ``green`` and
        garbage-collect every entry below it (the ballot *at* the
        checkpoint survives as the chain anchor)."""
        if history is None:
            history = self.current_history()
        state = self.checkpoint_state
        for k in range(self.checkpoint_instance + 1, green + 1):
            state = self._reducer(state, k, history(k))
        self.checkpoint_state = state
        self.checkpoint_instance = green
        arr = self._status_arr
        vals = self._ballot_vals
        objs = self._ballot_objs
        for k in range(min(green, len(arr))):
            if arr[k] >= 0:
                arr[k] = _NO_STATUS
                self._status_count -= 1
            if vals[k] is not _ABSENT:
                vals[k] = _ABSENT
                objs[k] = None
                self._ballot_count -= 1
        # Cached folds were anchored at the old checkpoint floor (see
        # CheckpointChaCore._fold_to); drop them all.
        self._fold_cache = [None] * len(arr)

    def on_veto2_reception(self, veto_seen: bool, collision: bool):
        """End of instance: green instances fold-and-GC and output the
        ``(checkpoint, suffix)`` pair instead of a full history."""
        k = self.k
        arr = self._status_arr
        status = arr[k] if k < len(arr) else _NO_STATUS
        if status < 0:
            raise KeyError(k)
        if (veto_seen or collision) and status > _YELLOW:
            status = _YELLOW
            arr[k] = _YELLOW
        if status >= _YELLOW:
            self.prev_instance = k
        output: CheckpointOutput | None
        if status == _GREEN:
            # One fold serves both the checkpoint advance and the
            # output derivation.
            history = self.current_history()
            self._fold_to(k, history)
            output = self.current_checkpoint_output(history)
        else:
            output = BOTTOM
        self.outputs.append((k, output))
        return k, output

    # -- checkpointed view ----------------------------------------------

    def current_checkpoint_output(self, history: History | None = None
                                  ) -> CheckpointOutput:
        """The (checkpoint, suffix) pair for the current chain."""
        if history is None:
            history = self.current_history()
        suffix_entries = {
            k: v for k, v in history.items() if k > self.checkpoint_instance
        }
        return CheckpointOutput(
            checkpoint_instance=self.checkpoint_instance,
            checkpoint_state=self.checkpoint_state,
            suffix=History(history.length, suffix_entries),
        )

    # -- state transfer -------------------------------------------------

    def snapshot(self) -> dict:
        snap = super().snapshot()
        snap["checkpoint_instance"] = self.checkpoint_instance
        snap["checkpoint_state"] = self.checkpoint_state
        return snap

    def restore(self, snapshot) -> None:
        super().restore(snapshot)
        self.checkpoint_instance = snapshot["checkpoint_instance"]
        self.checkpoint_state = snapshot["checkpoint_state"]

    def reset_to(self, instance: Instance, state: Any) -> None:
        """Re-anchor a fresh core at ``instance`` (the emulation's
        reset).  Leaves the core in a pre-instance state: veto phases
        stay inert until the next ballot phase begins an instance."""
        self.k = instance
        self.prev_instance = instance
        self.checkpoint_instance = instance
        self.checkpoint_state = state
        self._clear_storage(instance + 1)

    def _compute_history(self) -> History:
        """Chain reconstruction that stops at the checkpoint anchor."""
        if self.use_reference_history:
            entries: dict[Instance, Value] = {}
            k = self.k
            prev = self.prev_instance
            ballots = self._ballot_view
            while k > self.checkpoint_instance:
                if k == prev:
                    ballot = ballots[k]
                    entries[k] = ballot.value
                    prev = ballot.prev_instance
                k -= 1
            return History(self.k, entries)
        return History._from_chain(self.k, self._fold_chain(
            self.k, self.prev_instance, floor=self.checkpoint_instance))

    def _missing_ballot(self, k: Instance) -> None:
        # The seed checkpoint walk indexes ballots directly, so a broken
        # chain surfaces as a KeyError rather than a ProtocolError.
        raise KeyError(k)
