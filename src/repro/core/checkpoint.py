"""Checkpoint-CHA: the garbage-collected variant of Section 3.5.

Plain CHAP keeps every ballot and status entry forever (local state grows
with the execution, even though *messages* stay constant size).  Section
3.5 observes that a node may garbage-collect whenever an instance is
designated **green**: by Lemma 5 every other node then designates it good,
so every future ``prev-instance`` chain stays at or above it and the
entries below can be folded into a checkpoint.

A checkpoint is the application-level fold of the history up to and
including the green instance, produced by a caller-supplied ``reducer``
(for a virtual node, the reducer is the node's deterministic transition
function, so the checkpoint *is* the virtual-node state).  Outputs become
``(checkpoint, suffix)`` pairs — the "checkpoint-CHA" interface the paper
sketches.

Yellow instances never garbage-collect: a yellow node cannot rule out an
orange peer whose future ballots point below the yellow instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..types import BOTTOM, Color, Instance, NO_INSTANCE, Value
from .cha import CHAProcess, ChaCore
from .history import History

#: Folds ``(state, instance, value_or_bottom) -> state``.
Reducer = Callable[[Any, Instance, Value], Any]


@dataclass(frozen=True)
class CheckpointOutput:
    """The checkpoint-CHA output: a fold plus the recent history suffix."""

    #: Instance up to (and including) which the checkpoint folds.
    checkpoint_instance: Instance
    #: Application state after folding instances ``1..checkpoint_instance``.
    checkpoint_state: Any
    #: Output history for the instances after the checkpoint.
    suffix: History

    def includes(self, k: Instance) -> bool:
        if k <= self.checkpoint_instance:
            return True  # folded instances are, by construction, decided
        return self.suffix.includes(k)


class CheckpointChaCore(ChaCore):
    """A :class:`ChaCore` that folds and discards below green instances."""

    def __init__(self, *, propose: Callable[[Instance], Value],
                 reducer: Reducer, initial_state: Any,
                 tag: Any = "cha",
                 use_reference_history: bool | None = None) -> None:
        super().__init__(propose=propose, tag=tag,
                         use_reference_history=use_reference_history)
        self._reducer = reducer
        self.checkpoint_instance: Instance = NO_INSTANCE
        self.checkpoint_state: Any = initial_state

    # -- folding --------------------------------------------------------

    def _fold_to(self, green: Instance, history: History | None = None) -> None:
        """Advance the checkpoint to the green instance ``green``.

        ``history`` lets the caller reuse an already-computed fold of
        the current chain (it is, by definition, what
        :meth:`current_history` would return right now).
        """
        if history is None:
            history = self.current_history()
        state = self.checkpoint_state
        for k in range(self.checkpoint_instance + 1, green + 1):
            state = self._reducer(state, k, history(k))
        self.checkpoint_state = state
        self.checkpoint_instance = green
        # Garbage-collect: keep only entries after the checkpoint.  The
        # ballot *at* the checkpoint must survive: it is the anchor that
        # future prev-instance chains terminate on.
        self.ballots = {
            k: b for k, b in self.ballots.items() if k >= green
        }
        self.status = {
            k: c for k, c in self.status.items() if k >= green
        }
        # Cached folds were anchored at the old checkpoint floor: their
        # chains still carry entries at or below the new one, so seeding
        # a floor-anchored fold from them would resurrect GC'd instances.
        # (restore()/reset_to() clear the cache for the same reason —
        # adopted ballots/anchors may disagree with locally cached
        # chains; the fold-count regression test pins all three paths.)
        self._fold_cache.clear()

    def on_veto2_reception(self, veto_seen: bool, collision: bool):
        """End of instance: green instances fold-and-GC and output the
        ``(checkpoint, suffix)`` pair instead of a full history.

        Mirrors :meth:`ChaCore.on_veto2_reception` (lines 36-45 of Figure
        1) with the Section 3.5 output interface.
        """
        if veto_seen or collision:
            self.status[self.k] = min(Color.YELLOW, self.status[self.k])
        if self.status[self.k].is_good:
            self.prev_instance = self.k
        output: CheckpointOutput | None
        if self.status[self.k] is Color.GREEN:
            # One fold serves both the checkpoint advance and the output
            # derivation (the seed path re-folded the chain a second
            # time inside current_checkpoint_output, right after
            # _fold_to had discarded the fold cache).
            history = self.current_history()
            self._fold_to(self.k, history)
            output = self.current_checkpoint_output(history)
        else:
            output = BOTTOM
        self.outputs.append((self.k, output))
        return self.k, output

    # -- checkpointed view ----------------------------------------------

    def current_checkpoint_output(self, history: History | None = None) -> CheckpointOutput:
        """The (checkpoint, suffix) pair for the current chain.

        ``history`` is an optional already-computed fold of the current
        chain; passing it (as the green-instance path does) avoids
        re-folding the suffix the caller just derived.
        """
        if history is None:
            history = self.current_history()
        suffix_entries = {
            k: v for k, v in history.items() if k > self.checkpoint_instance
        }
        return CheckpointOutput(
            checkpoint_instance=self.checkpoint_instance,
            checkpoint_state=self.checkpoint_state,
            suffix=History(history.length, suffix_entries),
        )

    # -- state transfer ---------------------------------------------------

    def snapshot(self) -> dict:
        """Snapshot including the checkpoint fields (join-protocol acks)."""
        snap = super().snapshot()
        snap["checkpoint_instance"] = self.checkpoint_instance
        snap["checkpoint_state"] = self.checkpoint_state
        return snap

    def restore(self, snapshot) -> None:
        super().restore(snapshot)
        self.checkpoint_instance = snapshot["checkpoint_instance"]
        self.checkpoint_state = snapshot["checkpoint_state"]

    def reset_to(self, instance: Instance, state: Any) -> None:
        """Re-anchor a fresh core at ``instance`` (the emulation's reset).

        Used when a joiner concludes the virtual node is dead: the node is
        reborn with ``state`` (normally the program's initial state) as a
        checkpoint at the current instance, with an empty suffix.
        """
        self.k = instance
        self.prev_instance = instance
        self.checkpoint_instance = instance
        self.checkpoint_state = state
        self.status = {}
        self.ballots = {}
        self._fold_cache = {}

    def _compute_history(self) -> History:
        """Chain reconstruction that stops at the checkpoint anchor.

        Below the checkpoint the ballots are gone; the chain, by the GC
        safety argument, never goes below it, so reconstruction walks only
        the retained suffix and reports bottom below the checkpoint (the
        folded prefix lives in ``checkpoint_state``).
        """
        if self.use_reference_history:
            entries: dict[Instance, Value] = {}
            k = self.k
            prev = self.prev_instance
            while k > self.checkpoint_instance:
                if k == prev:
                    ballot = self.ballots[k]
                    entries[k] = ballot.value
                    prev = ballot.prev_instance
                k -= 1
            return History(self.k, entries)
        return History._from_chain(self.k, self._fold_chain(
            self.k, self.prev_instance, floor=self.checkpoint_instance))

    def _missing_ballot(self, k: Instance) -> None:
        # The seed checkpoint walk indexes ballots directly, so a broken
        # chain surfaces as a KeyError rather than a ProtocolError.
        raise KeyError(k)


class CheckpointCHAProcess(CHAProcess):
    """Checkpoint-CHA on the canonical 3-round schedule."""

    def __init__(self, *, propose: Callable[[Instance], Value],
                 reducer: Reducer, initial_state: Any,
                 cm_name: str = "C", tag: Any = "cha",
                 start_round: int = 0,
                 on_output: Callable[[Instance, History | None], None] | None = None,
                 use_reference_history: bool | None = None,
                 use_reference_core: bool | None = None,
                 pool_payloads: bool = False) -> None:
        super().__init__(propose=propose, cm_name=cm_name, tag=tag,
                         start_round=start_round, on_output=on_output,
                         use_reference_history=use_reference_history,
                         use_reference_core=use_reference_core,
                         pool_payloads=pool_payloads)
        if self.use_reference_core:
            self.core = CheckpointChaCore(
                propose=propose, reducer=reducer,
                initial_state=initial_state, tag=tag,
                use_reference_history=use_reference_history,
            )
        else:
            from .slotted import SlottedCheckpointChaCore
            self.core = SlottedCheckpointChaCore(
                propose=propose, reducer=reducer,
                initial_state=initial_state, tag=tag,
                use_reference_history=use_reference_history,
                pool_payloads=pool_payloads,
            )

    @property
    def checkpoint(self) -> CheckpointOutput:
        return self.core.current_checkpoint_output()
