"""Executable specification of Convergent History Agreement (Section 3.2).

Given the outputs and proposals of an execution, these checkers decide the
three CHA requirements:

* **Validity** — every value in every output history was proposed by some
  node for the corresponding instance.
* **Agreement** — every pair of non-bottom outputs agrees on the common
  prefix of instances.
* **Liveness** — some instance ``kst`` exists from which every node
  outputs a history that includes every instance in ``[kst, k]``.

Checkers raise :class:`~repro.errors.SpecViolation` with enough context to
reproduce a failure; the liveness checker instead *finds* the convergence
instance (or reports failure), since liveness over a finite prefix is a
measurement rather than a pass/fail property.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import SpecViolation
from ..types import BOTTOM, Instance, NodeId, Value
from .history import History, reference_history_forced

#: The per-node output sequence type: (instance, History or BOTTOM) pairs.
OutputLog = Sequence[tuple[Instance, History | None]]


def check_validity(outputs: Mapping[NodeId, OutputLog],
                   proposals: Mapping[NodeId, Mapping[Instance, Value]]) -> None:
    """Raise :class:`SpecViolation` on any non-proposed history value."""
    proposed_at: dict[Instance, set[Value]] = {}
    for node_proposals in proposals.values():
        for k, v in node_proposals.items():
            proposed_at.setdefault(k, set()).add(v)
    for node, log in outputs.items():
        for k, out in log:
            if out is BOTTOM:
                continue
            for k_prime, value in out.items():
                if value not in proposed_at.get(k_prime, ()):
                    raise SpecViolation(
                        f"validity: node {node}'s output at instance {k} "
                        f"contains value {value!r} at instance {k_prime}, "
                        "which no node proposed",
                        context={"node": node, "instance": k,
                                 "at": k_prime, "value": value},
                    )


def check_agreement(outputs: Mapping[NodeId, OutputLog], *,
                    exhaustive: bool = False,
                    use_reference: bool | None = None) -> None:
    """Raise :class:`SpecViolation` on any common-prefix disagreement.

    The default check compares every history against a maximal-instance
    witness, which is equivalent to the pairwise condition because the
    agreement relation is "equality on the shorter prefix" and every
    history is compared on *its own* full domain against the witness.
    ``exhaustive=True`` performs the O(m²) pairwise comparison (useful in
    unit tests of the checker itself).

    ``use_reference`` (default: the ``REPRO_REFERENCE_HISTORY``
    environment switch) pins the agreement relation to the seed
    prefix-rebuild derivation instead of the chain-identity short
    circuit — the two are pinned together by the differential suite.
    """
    if use_reference is None:
        use_reference = reference_history_forced()
    agrees = (History.agrees_with_reference if use_reference
              else History.agrees_with)
    histories: list[tuple[NodeId, Instance, History]] = []
    for node, log in outputs.items():
        for k, out in log:
            if out is not BOTTOM:
                if out.length != k:
                    raise SpecViolation(
                        f"agreement: node {node} output a history of length "
                        f"{out.length} for instance {k}",
                        context={"node": node, "instance": k},
                    )
                histories.append((node, k, out))
    if not histories:
        return

    def _fail(a, b) -> None:
        (node_a, k_a, h_a), (node_b, k_b, h_b) = a, b
        cut = min(k_a, k_b)
        diverging = [
            k for k in range(1, cut + 1) if h_a(k) != h_b(k)
        ]
        raise SpecViolation(
            f"agreement: node {node_a}'s output at instance {k_a} and node "
            f"{node_b}'s output at instance {k_b} differ at instances "
            f"{diverging[:5]}",
            context={"a": (node_a, k_a), "b": (node_b, k_b),
                     "diverging": diverging},
        )

    if exhaustive:
        for i in range(len(histories)):
            for j in range(i + 1, len(histories)):
                if not agrees(histories[i][2], histories[j][2]):
                    _fail(histories[i], histories[j])
        return

    witness = max(histories, key=lambda item: item[1])
    for item in histories:
        if not agrees(item[2], witness[2]):
            _fail(item, witness)


def find_liveness_point(outputs: Mapping[NodeId, OutputLog],
                        *, alive: Sequence[NodeId] | None = None) -> Instance | None:
    """The smallest ``kst`` witnessing Liveness over this finite execution.

    Only nodes in ``alive`` (default: all nodes in ``outputs``) are
    required to satisfy the property — crashed nodes are exempt, per the
    problem statement's "non-failed node" qualifier.  Returns ``None``
    when no suffix of the execution satisfies Liveness.
    """
    nodes = list(alive if alive is not None else outputs.keys())
    if not nodes:
        return None
    per_node: dict[NodeId, dict[Instance, History | None]] = {
        node: dict(outputs[node]) for node in nodes
    }
    last_instance = min(
        (max(log) if (log := per_node[node]) else 0) for node in nodes
    )
    if last_instance == 0:
        return None

    # kst works iff for every k in [kst, last]: every node output a
    # non-bottom history at k that includes every instance in [kst, k].
    def works(kst: Instance) -> bool:
        for node in nodes:
            for k in range(kst, last_instance + 1):
                out = per_node[node].get(k, BOTTOM)
                if out is BOTTOM:
                    return False
                if any(not out.includes(k2) for k2 in range(kst, k + 1)):
                    return False
        return True

    # Scan from the smallest candidate upward; the property is monotone in
    # practice but not by definition (a bottom at instance j only blocks
    # kst <= j), so we simply test candidates in order.
    for kst in range(1, last_instance + 1):
        if works(kst):
            return kst
    return None


def check_liveness(outputs: Mapping[NodeId, OutputLog],
                   *, by_instance: Instance,
                   alive: Sequence[NodeId] | None = None) -> Instance:
    """Assert that Liveness holds with ``kst <= by_instance``.

    Returns the discovered ``kst``.  Raises :class:`SpecViolation` if the
    execution never converges, or converges later than demanded.
    """
    kst = find_liveness_point(outputs, alive=alive)
    if kst is None:
        raise SpecViolation(
            "liveness: no convergence instance exists in this execution",
            context={"by_instance": by_instance},
        )
    if kst > by_instance:
        raise SpecViolation(
            f"liveness: convergence at instance {kst}, later than the "
            f"required {by_instance}",
            context={"kst": kst, "by_instance": by_instance},
        )
    return kst


def check_all(outputs: Mapping[NodeId, OutputLog],
              proposals: Mapping[NodeId, Mapping[Instance, Value]],
              *, liveness_by: Instance | None = None,
              alive: Sequence[NodeId] | None = None) -> Instance | None:
    """Run Validity + Agreement (+ Liveness when ``liveness_by`` given)."""
    check_validity(outputs, proposals)
    check_agreement(outputs)
    if liveness_by is not None:
        return check_liveness(outputs, by_instance=liveness_by, alive=alive)
    return None
