"""The history datatype of Section 3.2.

A history is a function ``h : N -> V ∪ {⊥}``.  An output produced for
instance ``k`` is defined on instances ``1..k`` (the paper indexes
instances from 1); we represent it sparsely as the mapping of instances to
their *non-bottom* values plus the length ``k``.

Histories are immutable and hashable so they can be collected, compared
and deduplicated by the spec checkers.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from ..types import BOTTOM, Instance, Value


class History:
    """An immutable CHA output history, defined on instances ``1..length``."""

    __slots__ = ("length", "_entries", "_lookup", "_hash")

    def __init__(self, length: Instance, entries: Mapping[Instance, Value]) -> None:
        if length < 0:
            raise ValueError("history length must be non-negative")
        for k, v in entries.items():
            if not 1 <= k <= length:
                raise ValueError(f"history entry at instance {k} outside 1..{length}")
            if v is BOTTOM:
                raise ValueError("bottom values must be omitted, not stored")
        self.length = length
        self._entries: tuple[tuple[Instance, Value], ...] = tuple(
            sorted(entries.items())
        )
        self._lookup = dict(self._entries)
        self._hash = hash((self.length, self._entries))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def __call__(self, k: Instance) -> Value:
        """``h(k)``: the value at instance ``k``, or bottom."""
        return self._lookup.get(k, BOTTOM)

    def value_at(self, k: Instance) -> Value:
        return self(k)

    def includes(self, k: Instance) -> bool:
        """The paper's "history ``h`` includes instance ``k``": h(k) != ⊥."""
        return k in self._lookup

    @property
    def included_instances(self) -> tuple[Instance, ...]:
        """Instances with non-bottom values, ascending."""
        return tuple(k for k, _ in self._entries)

    def items(self) -> Iterator[tuple[Instance, Value]]:
        """(instance, value) pairs for the non-bottom entries, ascending."""
        return iter(self._entries)

    def __len__(self) -> int:
        """Number of *included* (non-bottom) instances."""
        return len(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, History):
            return NotImplemented
        return self.length == other.length and self._entries == other._entries

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        body = ", ".join(f"{k}:{v!r}" for k, v in self._entries)
        return f"History(len={self.length}, {{{body}}})"

    # ------------------------------------------------------------------
    # Prefix algebra (used by the Agreement checker)
    # ------------------------------------------------------------------

    def prefix(self, k: Instance) -> "History":
        """The restriction of this history to instances ``1..k``."""
        k = min(k, self.length)
        return History(k, {i: v for i, v in self._entries if i <= k})

    def agrees_with(self, other: "History") -> bool:
        """The Agreement relation: equal on ``1..min(length, other.length)``.

        This is exactly the paper's requirement for a pair of outputs
        ``h_{i,k1}`` and ``h_{j,k2}`` with ``k1 <= k2``.
        """
        cut = min(self.length, other.length)
        return self.prefix(cut) == other.prefix(cut)

    def extends(self, other: "History") -> bool:
        """True when ``other`` is a prefix of this history."""
        return self.length >= other.length and self.agrees_with(other)

    def last_included(self) -> Instance | None:
        """The largest included instance, or ``None`` if all-bottom."""
        if not self._entries:
            return None
        return self._entries[-1][0]


EMPTY_HISTORY = History(0, {})
