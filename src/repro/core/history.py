"""The history datatype of Section 3.2, backed by a shared fold chain.

A history is a function ``h : N -> V ∪ {⊥}``.  An output produced for
instance ``k`` is defined on instances ``1..k`` (the paper indexes
instances from 1); we represent it sparsely as the mapping of instances to
their *non-bottom* values plus the length ``k``.

Histories are immutable and hashable so they can be collected, compared
and deduplicated by the spec checkers.

Two representations coexist behind the one :class:`History` type:

* the **dict form** (the seed representation): entries are supplied as a
  mapping, validated, sorted and stored as a tuple.  This is what the
  reference fold :func:`~repro.core.cha.calculate_history_reference`
  produces and what tests construct directly.
* the **chain form**: a :class:`HistoryChain` node — one link of a
  structurally shared, interned spine mirroring the protocol's
  ``prev-instance`` chain.  :class:`~repro.core.cha.ChaCore` extends the
  previous instance's fold by one link instead of re-walking, so
  producing an output is O(1), and two histories over the same chain
  share every link.

Interning (type-exact, so ``True``/``1``/``1.0`` never swap objects)
resolves equal same-typed paths to the same chain node, so ``extends`` /
``agrees_with`` / ``prefix`` short-circuit positively on chain identity
instead of rebuilding and comparing prefix dictionaries; distinct spines
fall back to entry comparison.  Entry tuples, lookup dicts and hashes
are materialised lazily (and cached on the shared chain), so runs that
never inspect a history's contents — the common case on the bench hot
path — never pay for them.

Set ``REPRO_REFERENCE_HISTORY=1`` in the environment (or pass
``use_reference_history=True`` to the cores / the experiment spec) to pin
every protocol core to the seed fold; the differential suite
(``tests/core/test_history_differential.py``) asserts both engines are
byte-identical end to end.
"""

from __future__ import annotations

import os
import weakref
from typing import Iterator, Mapping

from ..types import BOTTOM, Instance, Value

#: Environment switch: any value except ``""``/``"0"`` pins every newly
#: constructed protocol core to the reference (re-walking) history fold.
REFERENCE_HISTORY_ENV = "REPRO_REFERENCE_HISTORY"


def reference_history_forced() -> bool:
    """Whether the environment pins cores to the reference history fold."""
    return os.environ.get(REFERENCE_HISTORY_ENV, "0") not in ("", "0")


class HistoryTimer:
    """Opt-in accumulator for wall time spent computing histories.

    Disabled by default so the hot path pays nothing; the bench runner
    enables it (``with HISTORY_TIMER: ...``) around a run and the
    experiment runner folds the delta into
    :attr:`~repro.experiment.result.ExperimentResult.timings` as the
    ``history_s`` phase bucket.
    """

    __slots__ = ("enabled", "seconds", "calls")

    def __init__(self) -> None:
        self.enabled = False
        self.seconds = 0.0
        self.calls = 0

    def __enter__(self) -> "HistoryTimer":
        self.enabled = True
        return self

    def __exit__(self, *exc) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.seconds = 0.0
        self.calls = 0


#: The process-wide history timer (one is enough: runs are sequential
#: within a process, and sweep workers each fork their own copy).
HISTORY_TIMER = HistoryTimer()


#: Current interning generation (see :func:`new_chain_generation`).
_chain_generation = 0

#: High-water mark: generations are allocated from here so re-activating
#: an old generation can never hand its number to a new execution.
_generation_counter = 0


def new_chain_generation() -> int:
    """Open a fresh chain-interning generation and return its number.

    Interning dedups chain links under ``(generation, anchor, key)``, so
    links from different generations never resolve to the same object.
    The experiment stepper opens a generation per execution: without
    this, a previous run's not-yet-collected chains could satisfy the
    current run's interning probes, handing back links whose *value*
    objects come from the dead run — equal, but distinct from the values
    on this run's wire, which changes which objects a pickled result
    shares between its trace and its outputs.  Byte-identity of a run's
    observables would then depend on garbage-collector timing.  Scoping
    interning per execution keeps all sharing within a run (where every
    participant folds the same wire objects) and none across runs.
    """
    global _chain_generation, _generation_counter
    _generation_counter += 1
    _chain_generation = _generation_counter
    return _chain_generation


def activate_chain_generation(generation: int) -> int:
    """Make ``generation`` the current interning generation.

    Returns the previously current generation so callers can restore it.
    Executions that *interleave* — several live
    :class:`~repro.experiment.runner.ExperimentStepper`\\ s advanced in
    turns on one event loop, as the multi-world service does — must
    re-activate their own generation around every step: constructing
    world B mid-run of world A would otherwise split A's interning
    across two generations, so equal folds from either side of the
    split stop being the same object and A's pickled sharing structure
    diverges from an uninterrupted batch run of the same spec.
    """
    global _chain_generation
    previous = _chain_generation
    _chain_generation = generation
    return previous


def _intern_key(value):
    """A type-exact interning key for a fold value, or raise TypeError.

    Plain ``(anchor, value)`` dict keys would conflate equal-but-distinct
    values (``True == 1 == 1.0``, ``0.0 == -0.0``), letting one core's
    interned value object silently replace another's differently-typed
    one — observable through reducers, ``repr`` and pickles, breaking the
    byte-identical equivalence guarantee.  Keys are therefore tagged with
    the exact class recursively; floats key on their repr (which
    separates ``-0.0``) except NaN, and any type outside the closed list
    raises ``TypeError`` so the caller falls back to a private,
    non-interned link (comparisons then use entry tuples — slower, never
    wrong).
    """
    cls = value.__class__
    if cls is str or cls is bytes or cls is int or cls is bool:
        return (cls, value)
    if cls is float:
        if value != value:  # NaN: x != x, so lookups could never
            raise TypeError("NaN values are not interned")
        return (cls, repr(value))
    if cls is tuple:
        return (cls, tuple(_intern_key(v) for v in value))
    if cls is frozenset:
        return (cls, frozenset(_intern_key(v) for v in value))
    raise TypeError(f"{cls.__name__} values are not interned")


class HistoryChain:
    """One link of a structurally shared ``prev-instance`` fold.

    A node represents the fold of a whole chain: the entry
    ``(anchor, value)`` plus everything below it via ``parent``.  Links
    are **interned** per parent (weakly, so finished runs can be
    collected) under the type-exact key of :func:`_intern_key`, scoped
    to the current :func:`new_chain_generation`: among live same-
    generation nodes, type-identical equal paths are the same object,
    which is what lets :class:`History` short-circuit prefix comparisons
    on identity.  Interning fails soft — an unhashable or non-internable
    value yields a private, non-interned node and the comparisons fall
    back to entry tuples, exactly the seed semantics.

    Anchors strictly decrease towards the root, mirroring the protocol
    invariant that ``prev-instance`` pointers only point downward.
    """

    __slots__ = ("parent", "anchor", "value", "depth", "interned",
                 "_children", "_entries", "_last_child", "__weakref__")

    def __init__(self, parent: "HistoryChain | None", anchor: Instance,
                 value: Value, *, interned: bool) -> None:
        self.parent = parent
        self.anchor = anchor
        self.value = value
        self.depth = 0 if parent is None else parent.depth + 1
        self.interned = interned
        self._children: weakref.WeakValueDictionary | None = (
            weakref.WeakValueDictionary() if interned else None
        )
        self._entries: tuple[tuple[Instance, Value], ...] | None = (
            () if parent is None else None
        )
        self._last_child: tuple | None = None

    def child(self, anchor: Instance, value: Value) -> "HistoryChain":
        """The (interned) link extending this fold by one entry."""
        # Lockstep fast path: a whole cohort folds the same wire value
        # object onto the same parent in one round, so remember the last
        # interned link and serve repeats by identity — same result as
        # the interning probe (``v is value`` implies equal intern keys)
        # without the key construction or the weak lookup.  The
        # generation check keeps a dead run's pinned link from ever
        # resolving in the next run.
        last = self._last_child
        if (last is not None and last[2] is value and last[1] == anchor
                and last[0] == _chain_generation):
            return last[3]
        kids = self._children
        if kids is None:
            return HistoryChain(self, anchor, value, interned=False)
        try:  # unhashable / non-internable value: private node, no dedup
            key = (_chain_generation, anchor, _intern_key(value))
            node = kids.get(key)
        except TypeError:
            return HistoryChain(self, anchor, value, interned=False)
        if node is None:
            node = HistoryChain(self, anchor, value, interned=True)
            kids[key] = node
        self._last_child = (_chain_generation, anchor, value, node)
        return node

    def prefix(self, cut: Instance) -> "HistoryChain":
        """The deepest link whose anchor is at most ``cut``."""
        node = self
        while node.anchor > cut:
            node = node.parent  # root anchors at 0, so this terminates
        return node

    def entries(self) -> tuple[tuple[Instance, Value], ...]:
        """The (instance, value) pairs of this fold, ascending.

        Materialised lazily and cached per link, so every history over a
        shared spine amortises one tuple per link.
        """
        cached = self._entries
        if cached is not None:
            return cached
        stack = []
        node = self
        while node._entries is None:
            stack.append(node)
            node = node.parent
        cached = node._entries
        for pending in reversed(stack):
            cached = cached + ((pending.anchor, pending.value),)
            pending._entries = cached
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"HistoryChain(anchor={self.anchor}, depth={self.depth}, "
                f"interned={self.interned})")


#: The shared empty fold every chain grows from.
ROOT_CHAIN = HistoryChain(None, 0, None, interned=True)


class History:
    """An immutable CHA output history, defined on instances ``1..length``."""

    __slots__ = ("length", "_chain", "_entries", "_lookup", "_hash")

    def __init__(self, length: Instance, entries: Mapping[Instance, Value]) -> None:
        if length < 0:
            raise ValueError("history length must be non-negative")
        for k, v in entries.items():
            if not 1 <= k <= length:
                raise ValueError(f"history entry at instance {k} outside 1..{length}")
            if v is BOTTOM:
                raise ValueError("bottom values must be omitted, not stored")
        self.length = length
        self._entries: tuple[tuple[Instance, Value], ...] = tuple(
            sorted(entries.items())
        )
        self._lookup = dict(self._entries)
        self._chain: HistoryChain | None = None
        self._hash: int | None = None

    @classmethod
    def _from_chain(cls, length: Instance, chain: HistoryChain) -> "History":
        """Internal O(1) constructor over an already-folded chain.

        The chain is trusted to lie within ``1..length`` (the fold walk
        guarantees it), so the dict-form validation is skipped and
        entries/lookup/hash stay unmaterialised until something asks.
        """
        h = object.__new__(cls)
        h.length = length
        h._chain = chain
        h._entries = None
        h._lookup = None
        h._hash = None
        return h

    # ------------------------------------------------------------------
    # Representation plumbing
    # ------------------------------------------------------------------

    def _materialized(self) -> tuple[tuple[Instance, Value], ...]:
        entries = self._entries
        if entries is None:
            entries = self._entries = self._chain.entries()
        return entries

    def _lookup_table(self) -> dict[Instance, Value]:
        lookup = self._lookup
        if lookup is None:
            lookup = self._lookup = dict(self._materialized())
        return lookup

    def _as_chain(self) -> HistoryChain:
        """This history's fold chain, derived (and interned) on demand."""
        chain = self._chain
        if chain is None:
            chain = ROOT_CHAIN
            for k, v in self._entries:
                chain = chain.child(k, v)
            self._chain = chain
        return chain

    def __reduce__(self):
        # Canonical pickle independent of representation: unpickles to
        # the dict form, never drags a live chain spine along.
        return (History, (self.length, dict(self._materialized())))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def __call__(self, k: Instance) -> Value:
        """``h(k)``: the value at instance ``k``, or bottom."""
        return self._lookup_table().get(k, BOTTOM)

    def value_at(self, k: Instance) -> Value:
        return self(k)

    def includes(self, k: Instance) -> bool:
        """The paper's "history ``h`` includes instance ``k``": h(k) != ⊥."""
        return k in self._lookup_table()

    @property
    def included_instances(self) -> tuple[Instance, ...]:
        """Instances with non-bottom values, ascending."""
        return tuple(k for k, _ in self._materialized())

    def items(self) -> Iterator[tuple[Instance, Value]]:
        """(instance, value) pairs for the non-bottom entries, ascending."""
        return iter(self._materialized())

    def __len__(self) -> int:
        """Number of *included* (non-bottom) instances."""
        chain = self._chain
        if chain is not None:
            return chain.depth
        return len(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, History):
            return NotImplemented
        if self.length != other.length:
            return False
        a, b = self._chain, other._chain
        if a is not None and a is b:
            return True  # shared spine: equal without materialising
        # Identity is only a *positive* witness: interning keys are
        # type-exact while value equality is not (True == 1), so
        # distinct spines can still hold equal entries.
        return self._materialized() == other._materialized()

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = self._hash = hash((self.length, self._materialized()))
        return h

    def __repr__(self) -> str:
        body = ", ".join(f"{k}:{v!r}" for k, v in self._materialized())
        return f"History(len={self.length}, {{{body}}})"

    # ------------------------------------------------------------------
    # Prefix algebra (used by the Agreement checker)
    # ------------------------------------------------------------------

    def prefix(self, k: Instance) -> "History":
        """The restriction of this history to instances ``1..k``.

        Derived from the shared chain: the prefix *shares* the fold below
        the cut instead of re-sorting a fresh dict per call.
        """
        k = min(k, self.length)
        if k < 0:  # mirror the seed derivation's constructor validation
            raise ValueError("history length must be non-negative")
        return History._from_chain(k, self._as_chain().prefix(k))

    def prefix_reference(self, k: Instance) -> "History":
        """The seed prefix derivation (fresh dict + sort), kept as the
        executable specification of :meth:`prefix`."""
        k = min(k, self.length)
        return History(k, {i: v for i, v in self._materialized() if i <= k})

    def agrees_with(self, other: "History") -> bool:
        """The Agreement relation: equal on ``1..min(length, other.length)``.

        This is exactly the paper's requirement for a pair of outputs
        ``h_{i,k1}`` and ``h_{j,k2}`` with ``k1 <= k2``.  Identical
        pruned spines (the common case on a converged run: every output
        extends the same interned chain) decide it in O(links above the
        cut); distinct spines fall back to comparing the restricted
        entry tuples, because interning keys are type-exact while value
        equality is not.
        """
        cut = min(self.length, other.length)
        a = self._as_chain().prefix(cut)
        b = other._as_chain().prefix(cut)
        if a is b:
            return True
        return (tuple(e for e in self._materialized() if e[0] <= cut)
                == tuple(e for e in other._materialized() if e[0] <= cut))

    def agrees_with_reference(self, other: "History") -> bool:
        """The seed Agreement derivation (prefix rebuild + compare)."""
        cut = min(self.length, other.length)
        return self.prefix_reference(cut) == other.prefix_reference(cut)

    def extends(self, other: "History") -> bool:
        """True when ``other`` is a prefix of this history."""
        return self.length >= other.length and self.agrees_with(other)

    def last_included(self) -> Instance | None:
        """The largest included instance, or ``None`` if all-bottom."""
        chain = self._chain
        if chain is not None:
            return chain.anchor if chain.depth else None
        if not self._entries:
            return None
        return self._entries[-1][0]


EMPTY_HISTORY = History(0, {})
