"""Exception hierarchy for the reproduction.

All library errors derive from :class:`ReproError` so that callers can
catch library failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed or wired with invalid parameters."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class ProtocolError(ReproError):
    """A protocol implementation violated its own preconditions."""


class SpecViolation(ReproError):
    """An executable specification check failed.

    Raised by :mod:`repro.core.spec` and :mod:`repro.analysis.invariants`
    when an execution violates Validity, Agreement, Liveness, or one of the
    paper's lemmas.  Carries enough context to reproduce the failure.
    """

    def __init__(self, message: str, *, context: dict | None = None) -> None:
        super().__init__(message)
        self.context = dict(context or {})


class ScheduleError(ReproError):
    """A virtual-node broadcast schedule is incomplete or conflicting."""


class ServiceError(ReproError):
    """A live-service request could not be honoured.

    Raised by :mod:`repro.service` for session-level failures: proposing
    into an instance the world has already begun, exceeding the session
    limit, or submitting to a world that has completed.  Wire transports
    translate it into an ``error`` event rather than tearing the
    connection down.
    """


class CrashedNodeError(ReproError):
    """An operation was attempted on a node that has crashed."""
