"""Runtime invariant checkers for the paper's lemmas (Section 3.6).

These complement :mod:`repro.core.spec` (the black-box CHA requirements)
with glass-box checks against protocol internals: colours, prev-instance
pointers, and detector behaviour.  Each checker raises
:class:`~repro.errors.SpecViolation` with reproduction context.
"""

from __future__ import annotations

from typing import Mapping

from ..core.runner import ChaRun
from ..errors import SpecViolation
from ..types import BOTTOM, Color, Instance, NodeId


def check_property4(run: ChaRun) -> None:
    """No two nodes' colours for an instance differ by more than a shade."""
    for k in range(1, run.instances + 1):
        colors = run.colors_at(k)
        if not colors:
            continue
        lo_node = min(colors, key=lambda n: colors[n])
        hi_node = max(colors, key=lambda n: colors[n])
        spread = colors[lo_node].shade_distance(colors[hi_node])
        if spread > 1:
            raise SpecViolation(
                f"Property 4: instance {k} colours span {spread} shades "
                f"({colors[lo_node].name} at node {lo_node} vs "
                f"{colors[hi_node].name} at node {hi_node})",
                context={"instance": k, "colors": dict(colors)},
            )


def check_lemma5(run: ChaRun) -> None:
    """Green implies everyone green/yellow; red implies everyone red/orange."""
    for k in range(1, run.instances + 1):
        colors = run.colors_at(k).values()
        if Color.GREEN in colors and any(c <= Color.ORANGE for c in colors):
            raise SpecViolation(
                f"Lemma 5: instance {k} is green somewhere yet "
                "orange-or-worse elsewhere",
                context={"instance": k},
            )
        if Color.RED in colors and any(c >= Color.YELLOW for c in colors):
            raise SpecViolation(
                f"Lemma 5: instance {k} is red somewhere yet "
                "yellow-or-better elsewhere",
                context={"instance": k},
            )


def check_lemma6(run: ChaRun) -> None:
    """No output history includes an instance any surviving node holds red.

    (The lemma quantifies over all nodes; crashed nodes' final colours
    are not observable through surviving state, so the check covers the
    survivors — the universe the emulation cares about.)
    """
    red_at: set[Instance] = {
        k for k in range(1, run.instances + 1)
        if Color.RED in run.colors_at(k).values()
    }
    for node, log in run.outputs.items():
        for k_out, out in log:
            if out is BOTTOM:
                continue
            included_reds = red_at & set(out.included_instances)
            if included_reds:
                raise SpecViolation(
                    f"Lemma 6: node {node}'s output at {k_out} includes "
                    f"red instances {sorted(included_reds)}",
                    context={"node": node, "instance": k_out},
                )


def check_lemma9(run: ChaRun) -> None:
    """Every green instance is included in every later output history."""
    greens = [
        k for k in range(1, run.instances + 1)
        if Color.GREEN in run.colors_at(k).values()
    ]
    for node, log in run.outputs.items():
        for k_out, out in log:
            if out is BOTTOM:
                continue
            for g in greens:
                if g <= k_out and not out.includes(g):
                    raise SpecViolation(
                        f"Lemma 9: green instance {g} missing from node "
                        f"{node}'s output at instance {k_out}",
                        context={"node": node, "green": g, "at": k_out},
                    )


def check_prev_pointer_discipline(run: ChaRun) -> None:
    """``prev-instance`` points at the node's latest *completed* good
    instance.

    An instance the node began but never finished (it crashed mid-
    instance) still carries the initial green status; only instances with
    a recorded output count.
    """
    for node, proc in run.processes.items():
        core = proc.core
        completed = {k for k, _ in core.outputs}
        goods = [
            k for k, c in core.status.items()
            if c.is_good and k in completed
        ]
        expected = max(goods, default=getattr(core, "checkpoint_instance", 0))
        if core.prev_instance != expected:
            raise SpecViolation(
                f"prev-instance discipline: node {node} holds "
                f"{core.prev_instance}, expected {expected}",
                context={"node": node},
            )


def check_all_invariants(run: ChaRun) -> None:
    """All glass-box lemma checks in one call (used by soak tests)."""
    check_property4(run)
    check_lemma5(run)
    check_lemma6(run)
    check_lemma9(run)
    check_prev_pointer_discipline(run)


#: Name -> checker: the single source of truth for the glass-box lemma
#: checks.  The experiment runner builds its invariant registry from
#: this mapping, and :func:`collect_violations` enumerates it.
GLASS_BOX_CHECKERS = {
    "property4": check_property4,
    "lemma5": check_lemma5,
    "lemma6": check_lemma6,
    "lemma9": check_lemma9,
    "prev_pointer": check_prev_pointer_discipline,
}


def collect_violations(run: ChaRun) -> dict[str, SpecViolation]:
    """Run every glass-box checker, returning *all* failures (not just
    the first) keyed by checker name.

    Unlike :func:`check_all_invariants` this never raises — handy when
    debugging a :class:`~repro.core.runner.ChaRun` by hand, where the
    complete violation set with each
    :attr:`~repro.errors.SpecViolation.context` intact (violating
    instance, nodes, colours) beats dying on the first failure.
    """
    violations: dict[str, SpecViolation] = {}
    for name, checker in GLASS_BOX_CHECKERS.items():
        try:
            checker(run)
        except SpecViolation as exc:
            violations[name] = exc
    return violations


def first_violation(run: ChaRun) -> SpecViolation | None:
    """The first glass-box violation in checker order, or ``None``."""
    for exc in collect_violations(run).values():
        return exc
    return None
