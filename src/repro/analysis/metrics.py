"""Measurement helpers for the experiment tables.

Every benchmark in ``benchmarks/`` is "run a configuration, feed the
result through one of these functions, print a table row".  Keeping the
measurement code here (and under unit test) keeps the benchmarks thin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.runner import ChaRun
from ..net.trace import Trace
from ..types import BOTTOM, Color, Instance, NodeId


@dataclass(frozen=True)
class SizeStats:
    """Summary of wire message sizes over (a slice of) an execution."""

    count: int
    max: int
    mean: float

    @classmethod
    def of(cls, sizes: Sequence[int]) -> "SizeStats":
        if not sizes:
            return cls(0, 0, 0.0)
        return cls(len(sizes), max(sizes), sum(sizes) / len(sizes))


def message_size_stats(trace: Trace, *, first_round: int = 0,
                       last_round: int | None = None) -> SizeStats:
    """Wire-size stats over the broadcasts in a round window."""
    last = len(trace) if last_round is None else last_round
    sizes = [
        msg.size
        for rec in trace
        if first_round <= rec.round < last
        for _, msg in sorted(rec.broadcasts.items())
    ]
    return SizeStats.of(sizes)


def decided_instances(run: ChaRun, node: NodeId) -> int:
    """Instances for which ``node`` output a history (not bottom)."""
    return sum(out is not BOTTOM for _, out in run.outputs[node])


def decision_throughput(run: ChaRun, node: NodeId) -> float:
    """Decided instances per real communication round."""
    rounds = len(run.trace)
    if rounds == 0:
        return 0.0
    return decided_instances(run, node) / rounds


def rounds_per_decided_instance(run: ChaRun, node: NodeId) -> float:
    """Real rounds spent per decided instance (inverse throughput)."""
    decided = decided_instances(run, node)
    if decided == 0:
        return float("inf")
    return len(run.trace) / decided


def color_divergence_histogram(run: ChaRun) -> dict[int, int]:
    """Instances binned by the maximum shade distance across nodes.

    Property 4 asserts the support of this histogram is ``{0, 1}``.
    """
    histogram: dict[int, int] = {}
    for k in range(1, run.instances + 1):
        colors = list(run.colors_at(k).values())
        if not colors:
            continue
        worst = max(a.shade_distance(b) for a in colors for b in colors)
        histogram[worst] = histogram.get(worst, 0) + 1
    return histogram


def bottom_rate(run: ChaRun, node: NodeId) -> float:
    """Fraction of instances for which ``node`` output bottom."""
    log = run.outputs[node]
    if not log:
        return 0.0
    return sum(out is BOTTOM for _, out in log) / len(log)


def convergence_instance(run: ChaRun) -> Instance | None:
    """The liveness point of the surviving nodes, if any."""
    from ..core.spec import find_liveness_point

    survivors = run.surviving_nodes()
    outs = {node: run.outputs[node] for node in survivors}
    return find_liveness_point(outs, alive=survivors)


def green_fraction_by_window(run: ChaRun, window: int) -> list[float]:
    """Per-window fraction of instances any node designated green.

    Visualises the instability -> stability transition for experiment E6.
    """
    fractions = []
    for start in range(1, run.instances + 1, window):
        instances = range(start, min(start + window, run.instances + 1))
        greens = sum(
            any(c is Color.GREEN for c in run.colors_at(k).values())
            for k in instances
        )
        fractions.append(greens / len(instances))
    return fractions
