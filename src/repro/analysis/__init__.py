"""Metrics, invariant checkers and table rendering for experiments."""

from .invariants import (
    GLASS_BOX_CHECKERS,
    check_all_invariants,
    check_lemma5,
    check_lemma6,
    check_lemma9,
    check_prev_pointer_discipline,
    check_property4,
    collect_violations,
    first_violation,
)
from .metrics import (
    SizeStats,
    bottom_rate,
    color_divergence_histogram,
    convergence_instance,
    decided_instances,
    decision_throughput,
    green_fraction_by_window,
    message_size_stats,
    rounds_per_decided_instance,
)
from .reporting import format_cell, print_table, render_table

__all__ = [
    "GLASS_BOX_CHECKERS",
    "SizeStats",
    "bottom_rate",
    "check_all_invariants",
    "check_lemma5",
    "check_lemma6",
    "check_lemma9",
    "check_prev_pointer_discipline",
    "check_property4",
    "collect_violations",
    "color_divergence_histogram",
    "convergence_instance",
    "decided_instances",
    "first_violation",
    "decision_throughput",
    "format_cell",
    "green_fraction_by_window",
    "message_size_stats",
    "print_table",
    "render_table",
    "rounds_per_decided_instance",
]
