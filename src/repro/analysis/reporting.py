"""Fixed-width table rendering for the benchmark harness.

The experiment scripts print the same rows EXPERIMENTS.md records; this
tiny renderer keeps them aligned and diff-friendly without pulling in a
plotting stack (the environment is offline).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return str(value)
        return f"{value:.3f}".rstrip("0").rstrip(".") if abs(value) < 1e6 else f"{value:.3g}"
    return str(value)


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[Any]],
                 *, title: str | None = None) -> str:
    """Render an aligned ASCII table with the given headers and rows."""
    str_rows = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def print_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                *, title: str | None = None) -> str:
    """Render, print and return the table (benchmarks use the side effect,
    tests use the return value)."""
    text = render_table(headers, rows, title=title)
    print("\n" + text)
    return text
