"""The declarative experiment specification.

An :class:`ExperimentSpec` is a complete, inert description of one
experiment: the **world** (geometry, placement, radio parameters), the
**environment** (adversary, collision detector, contention manager, crash
schedule), the **protocol** (plain CHA, checkpoint-CHA, a baseline, a 3PC
comparator, or a full virtual-infrastructure deployment), the
**workload** (how long to run) and the **metrics/invariants** to extract.
Specs are plain frozen dataclasses, so they pickle (the sweep runner
ships them to worker processes), compare and print cleanly, and can be
rewritten field-by-field with :meth:`ExperimentSpec.override`.

Construct specs directly, or fluently with
:class:`repro.experiment.builder.ScenarioBuilder`; execute them with
:func:`repro.experiment.runner.run`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime use
    # of FaultPlan lives in repro.faults.compile, resolved lazily by the
    # runner).
    from ..faults.plan import FaultPlan

from ..contention import ContentionManager
from ..detectors import CollisionDetector
from ..errors import ConfigurationError
from ..geometry import Point
from ..net import Adversary, CrashSchedule, MobilityModel
from ..types import Instance, NodeId, Round, Value
from ..vi.client import ClientProgram
from ..vi.program import VNProgram
from ..vi.schedule import Schedule, VNSite

#: Supplies each node its per-instance proposal function.
ProposerFactory = Callable[[NodeId], Callable[[Instance], Value]]


# ----------------------------------------------------------------------
# Worlds
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ClusterWorld:
    """The Section 3 single-region world: ``n`` nodes within ``R1/2``."""

    n: int
    r1: float = 1.0
    r2: float = 1.5
    rcf: Round = 0
    #: Radius of the placement circle (defaults to ``r1 / 4``).
    cluster_radius: float | None = None

    def validate(self) -> None:
        if self.n < 1:
            raise ConfigurationError("cluster world needs at least one node")
        if self.r2 < self.r1:
            raise ConfigurationError("quasi-unit-disk model needs r2 >= r1")


@dataclass(frozen=True)
class DeviceSpec:
    """One physical device of a deployed world.

    ``initially_active`` follows :meth:`repro.vi.world.VIWorld.add_device`
    semantics (default: active iff present from round 0); ``name`` lets
    results be queried by role instead of node id.
    """

    mobility: MobilityModel | Point
    client: ClientProgram | None = None
    start_round: Round = 0
    initially_active: bool | None = None
    name: str | None = None


@dataclass(frozen=True)
class DeployedWorld:
    """A Section 4 world: virtual-node sites plus physical devices."""

    sites: tuple[VNSite, ...]
    devices: tuple[DeviceSpec, ...] = ()
    r1: float = 1.0
    r2: float = 1.5
    rcf: Round = 0
    cm_stable_round: Round = 0
    min_schedule_length: int = 1
    schedule: Schedule | None = None

    def validate(self) -> None:
        if not self.sites:
            raise ConfigurationError("deployed world needs at least one site")
        names = [d.name for d in self.devices if d.name is not None]
        if len(names) != len(set(names)):
            raise ConfigurationError("device names must be unique")


# ----------------------------------------------------------------------
# Protocols
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CHA:
    """Plain CHAP on the canonical 3-round schedule (Figure 1)."""

    proposer_factory: ProposerFactory | None = None
    #: Escape hatch for ablations: builds the per-node process.
    process_factory: Callable[..., Any] | None = None


@dataclass(frozen=True)
class CheckpointCHA:
    """Checkpoint-CHA (Section 3.5): fold-and-GC below green instances."""

    reducer: Callable[[Any, Instance, Value], Any]
    initial_state: Any
    proposer_factory: ProposerFactory | None = None


@dataclass(frozen=True)
class NaiveRSM:
    """The full-history-on-the-wire strawman of Section 3.4."""

    proposer_factory: ProposerFactory | None = None


@dataclass(frozen=True)
class TwoPhaseCHA:
    """Ablation A1: CHAP without the veto-2 phase (unsafe)."""

    proposer_factory: ProposerFactory | None = None


@dataclass(frozen=True)
class MajorityRSM:
    """The majority-quorum strawman of Section 1.5 (node 0 leads)."""


@dataclass(frozen=True)
class ThreePhaseCommit:
    """Textbook 3PC, CHAP's ancestor — an off-channel comparator."""

    votes: tuple[bool, ...]
    lossy: frozenset[int] = frozenset()
    crash_coordinator_after: str | None = None


@dataclass(frozen=True)
class VIEmulation:
    """The full virtual-infrastructure emulation of Section 4."""

    #: Deterministic program per virtual-node id (must cover every site).
    programs: Mapping[int, VNProgram] = field(default_factory=dict)


#: Protocols that run on a :class:`ClusterWorld`.
CLUSTER_PROTOCOLS = (CHA, CheckpointCHA, NaiveRSM, TwoPhaseCHA, MajorityRSM)

ProtocolSpec = (CHA | CheckpointCHA | NaiveRSM | TwoPhaseCHA | MajorityRSM
                | ThreePhaseCommit | VIEmulation)


# ----------------------------------------------------------------------
# Environment / workload / measurement
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class EnvironmentSpec:
    """Everything hostile or scheduled about the run.

    ``None`` fields take the benign defaults run-time (no adversary, an
    immediately-accurate detector, an immediately-stable leader-election
    contention manager, no crashes) — matching the classic ``run_cha``
    defaults.  The contention manager is ignored by deployed worlds,
    which build one :class:`~repro.contention.RegionalCM` per site.
    """

    adversary: Adversary | None = None
    detector: CollisionDetector | None = None
    cm: ContentionManager | None = None
    crashes: CrashSchedule | None = None


@dataclass(frozen=True)
class WorkloadSpec:
    """How much work to run.

    Exactly one of the fields applies, depending on the protocol family:
    ``instances`` for agreement protocols (converted to real rounds at
    each protocol's rounds-per-instance), ``rounds`` for a raw
    communication-round budget, ``virtual_rounds`` for emulations.
    """

    instances: Instance | None = None
    rounds: Round | None = None
    virtual_rounds: int | None = None


@dataclass(frozen=True)
class MetricsSpec:
    """Which metrics to extract and which invariants to verify.

    Metric and invariant names are resolved against the registries in
    :mod:`repro.experiment.runner`; ``invariants=("all",)`` expands to
    every checker applicable to the protocol.  ``liveness_by`` arms the
    ``liveness`` invariant with its convergence deadline.
    """

    metrics: tuple[str, ...] = ()
    invariants: tuple[str, ...] = ()
    liveness_by: Instance | None = None


# ----------------------------------------------------------------------
# The spec itself
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentSpec:
    """One complete, declarative experiment."""

    protocol: ProtocolSpec
    world: ClusterWorld | DeployedWorld | None = None
    environment: EnvironmentSpec = field(default_factory=EnvironmentSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    metrics: MetricsSpec = field(default_factory=MetricsSpec)
    #: A declarative :class:`~repro.faults.FaultPlan`; the runner
    #: compiles it into the environment (adversary, crashes, detector,
    #: stabilisation rounds) on entry.  Stays inert — and picklable —
    #: until then, so fault-laden sweeps fan out like any other.
    faults: "FaultPlan | None" = None
    #: Retain the full :class:`~repro.net.trace.Trace`?  Sweeps switch
    #: this off: every registry metric is computed online via observers.
    keep_trace: bool = True
    #: Pin every protocol core (and the agreement checker) of this run to
    #: the seed re-walking history fold instead of the incremental
    #: :class:`~repro.core.history.HistoryChain` engine.  ``None`` defers
    #: to the ``REPRO_REFERENCE_HISTORY`` environment switch at core
    #: construction time, mirroring ``REPRO_REFERENCE_CHANNEL``.
    use_reference_history: bool | None = None
    #: Pin this run's simulator to the seed per-node round loop instead
    #: of the batched dispatch engine.  ``None`` defers to the
    #: ``REPRO_REFERENCE_ENGINE`` environment switch at simulator
    #: construction time.
    use_reference_engine: bool | None = None
    #: Pin every CHA-family process of this run to the seed dict-based
    #: protocol core instead of the slotted array core
    #: (:mod:`repro.core.slotted`).  ``None`` defers to the
    #: ``REPRO_REFERENCE_CORE`` environment switch at process
    #: construction time — the fourth reference switch alongside the
    #: channel, history and engine axes.
    use_reference_core: bool | None = None
    #: Pin this run's VI emulation (deployed worlds) to the seed
    #: per-device dispatch — one full ``Simulator.step`` per real round —
    #: instead of the phase-table engine (:mod:`repro.vi.engine`).
    #: ``None`` defers to the ``REPRO_REFERENCE_VI`` environment switch
    #: at world construction time — the sixth reference switch alongside
    #: the channel, history, engine, core and shard axes.
    use_reference_vi: bool | None = None
    #: Run this experiment's round engine sharded across that many worker
    #: processes (:mod:`repro.net.shard`), each owning a contiguous strip
    #: of grid-cell columns and exchanging only boundary-cell payloads.
    #: ``None`` defers to the ``REPRO_SHARDS`` environment switch — the
    #: fifth reference-style axis; ``1`` pins the run serial.  Cluster
    #: worlds with the built-in CHA-family protocols only.
    shards: int | None = None

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent combinations."""
        protocol, world, workload = self.protocol, self.world, self.workload
        if self.shards is not None and self.shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1, got {self.shards}"
            )
        if self.shards is not None and self.shards > 1 and not isinstance(
                world, ClusterWorld):
            raise ConfigurationError(
                "sharded execution (shards > 1) currently covers cluster "
                "worlds only"
            )
        if isinstance(protocol, ThreePhaseCommit):
            if world is not None:
                raise ConfigurationError(
                    "the 3PC comparator runs off-channel: world must be None"
                )
            if self.faults is not None:
                raise ConfigurationError(
                    "the 3PC comparator runs off-channel: it cannot carry "
                    "a FaultPlan"
                )
            return
        if isinstance(protocol, VIEmulation):
            if not isinstance(world, DeployedWorld):
                raise ConfigurationError(
                    "VI emulation needs a DeployedWorld (sites + devices)"
                )
            world.validate()
            if set(protocol.programs) != {s.vn_id for s in world.sites}:
                raise ConfigurationError(
                    "programs must be keyed exactly by the site vn_ids"
                )
            if workload.virtual_rounds is None:
                raise ConfigurationError(
                    "VI emulation needs workload.virtual_rounds"
                )
            return
        if not isinstance(world, ClusterWorld):
            raise ConfigurationError(
                f"{type(protocol).__name__} needs a ClusterWorld"
            )
        world.validate()
        if workload.instances is None and workload.rounds is None:
            raise ConfigurationError(
                "cluster protocols need workload.instances or workload.rounds"
            )
        if workload.instances is not None and workload.rounds is not None:
            raise ConfigurationError(
                "workload.instances and workload.rounds are mutually "
                "exclusive; set exactly one"
            )

    def override(self, **overrides: Any) -> "ExperimentSpec":
        """A copy with dotted-path fields replaced.

        Keys use ``__`` as the path separator (so they stay valid keyword
        names): ``spec.override(world__n=12, workload__instances=50)``.
        The sweep runner drives grids through this.
        """
        spec = self
        for path, value in overrides.items():
            spec = _replace_path(spec, path.split("__"), value)
        return spec


def _replace_path(obj: Any, path: list[str], value: Any) -> Any:
    head, rest = path[0], path[1:]
    if not hasattr(obj, head):
        raise ConfigurationError(
            f"{type(obj).__name__} has no field {head!r}"
        )
    if rest:
        value = _replace_path(getattr(obj, head), rest, value)
    return dataclasses.replace(obj, **{head: value})
