"""One declarative entrypoint for every protocol, world, and sweep.

* :mod:`~repro.experiment.spec` — the :class:`ExperimentSpec` dataclasses.
* :mod:`~repro.experiment.builder` — the fluent :func:`scenario` builder.
* :mod:`~repro.experiment.runner` — :func:`run`, the single entrypoint.
* :mod:`~repro.experiment.sweep` — :func:`sweep`, parallel grid fan-out.
* :mod:`~repro.experiment.observers` — online per-round metric collectors.
"""

from .builder import ScenarioBuilder, scenario
from .observers import WireStatsObserver
from .result import ExperimentResult
from .runner import ExperimentStepper, run
from .spec import (
    CHA,
    CheckpointCHA,
    ClusterWorld,
    DeployedWorld,
    DeviceSpec,
    EnvironmentSpec,
    ExperimentSpec,
    MajorityRSM,
    MetricsSpec,
    NaiveRSM,
    ThreePhaseCommit,
    TwoPhaseCHA,
    VIEmulation,
    WorkloadSpec,
)
from .sweep import SweepPoint, expand_grid, sweep

__all__ = [
    "CHA",
    "CheckpointCHA",
    "ClusterWorld",
    "DeployedWorld",
    "DeviceSpec",
    "EnvironmentSpec",
    "ExperimentResult",
    "ExperimentSpec",
    "ExperimentStepper",
    "MajorityRSM",
    "MetricsSpec",
    "NaiveRSM",
    "ScenarioBuilder",
    "SweepPoint",
    "ThreePhaseCommit",
    "TwoPhaseCHA",
    "VIEmulation",
    "WireStatsObserver",
    "WorkloadSpec",
    "expand_grid",
    "run",
    "scenario",
    "sweep",
]
