"""Parameter-grid sweeps over one declarative spec.

``sweep(spec, grid)`` runs the cartesian product of a parameter grid and
returns one :class:`SweepPoint` per combination, in deterministic
row-major order of the grid (first key varies slowest).  Grid keys are
``__``-separated field paths into the spec, exactly as accepted by
:meth:`ExperimentSpec.override`::

    points = sweep(
        base_spec,
        {"world__n": (3, 6, 12), "workload__instances": (50, 200)},
        workers=4,
    )

With ``workers > 1`` the points fan out over a ``multiprocessing`` pool.
Every point — serial or parallel — runs against a **private copy** of the
spec (``copy.deepcopy`` serially, pickling into the worker in parallel),
so stateful environment components (seeded adversaries, contention
managers, clients) start fresh at every point and the parallel results
are byte-identical to the serial ones.

Workers return only the picklable :class:`SweepPoint` (overrides +
metrics + invariant verdicts), never live simulators, so sweeps stay
cheap to ship between processes.  Sweep runs skip trace retention
(``keep_trace=False``): every registry metric is collected online.
"""

from __future__ import annotations

import copy
import dataclasses
import itertools
import multiprocessing
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..errors import ConfigurationError
from .spec import ExperimentSpec


@dataclass(frozen=True)
class SweepPoint:
    """One grid point's configuration and results."""

    #: The (path, value) overrides applied to the base spec, in grid order.
    overrides: tuple[tuple[str, Any], ...]
    metrics: dict[str, Any]
    invariants: dict[str, str]

    def __getitem__(self, path: str) -> Any:
        """The override value applied at ``path`` (e.g. ``"world__n"``)."""
        for key, value in self.overrides:
            if key == path:
                return value
        raise KeyError(path)


def expand_grid(grid: Mapping[str, Sequence[Any]]) -> list[dict[str, Any]]:
    """The cartesian product of a grid, in row-major key order."""
    if not grid:
        return [{}]
    keys = list(grid)
    for key, values in grid.items():
        if not isinstance(values, Sequence) or isinstance(values, (str, bytes)):
            raise ConfigurationError(
                f"grid values for {key!r} must be a sequence"
            )
        if len(values) == 0:
            raise ConfigurationError(f"grid axis {key!r} is empty")
    return [
        dict(zip(keys, combo))
        for combo in itertools.product(*(grid[k] for k in keys))
    ]


def pool_context(start_method: str | None = None) -> multiprocessing.context.BaseContext:
    """The multiprocessing context the sweep pool runs under.

    Always an *explicitly named* start method — never the platform
    default, whose identity varies across OS and Python versions and
    would make the serial-vs-parallel byte-identity claim untestable.
    With ``start_method=None`` the preference order is ``fork`` (cheap,
    inherits interning state) then ``spawn`` (universal).
    """
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    for method in ("fork", "spawn"):
        if method in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context(method)
    return multiprocessing.get_context(  # pragma: no cover - exotic platforms
        multiprocessing.get_all_start_methods()[0])


def pool_map(fn, jobs: Sequence[Any], *, workers: int,
             start_method: str | None = None) -> list[Any]:
    """Map a picklable function over jobs on the sweep worker pool.

    The shared fan-out plumbing behind :func:`sweep` and
    :func:`repro.bench.run_benchmarks`: ``workers == 1`` runs serially
    in-process; otherwise the jobs ship to a ``multiprocessing`` pool
    under :func:`pool_context` (an explicitly pinned start method)
    with ``chunksize=1`` so long jobs interleave.
    """
    if workers < 1:
        raise ConfigurationError("workers must be at least 1")
    jobs = list(jobs)
    if workers == 1 or not jobs:
        return [fn(job) for job in jobs]
    ctx = pool_context(start_method)
    with ctx.Pool(min(workers, len(jobs))) as pool:
        return pool.map(fn, jobs, chunksize=1)


def _run_point(job: tuple[ExperimentSpec, dict[str, Any]]) -> SweepPoint:
    from .runner import run

    base, overrides = job
    spec = base.override(**overrides) if overrides else base
    spec = dataclasses.replace(spec, keep_trace=False)
    result = run(spec)
    return SweepPoint(
        overrides=tuple(overrides.items()),
        metrics=result.metrics,
        invariants=result.invariants,
    )


def sweep(spec: ExperimentSpec, grid: Mapping[str, Sequence[Any]], *,
          workers: int = 1, start_method: str | None = None) -> list[SweepPoint]:
    """Run ``spec`` across a parameter grid, optionally in parallel.

    ``start_method`` pins the multiprocessing start method (``"fork"`` /
    ``"spawn"`` / ``"forkserver"``); ``None`` picks the
    :func:`pool_context` default.  Results are byte-identical across
    methods — the agreement suite runs both where available.
    """
    if workers < 1:
        raise ConfigurationError("workers must be at least 1")
    jobs = [(spec, overrides) for overrides in expand_grid(grid)]
    if workers == 1:
        # Private copy per point, mirroring what pickling gives workers.
        return [_run_point((copy.deepcopy(base), overrides))
                for base, overrides in jobs]
    return pool_map(_run_point, jobs, workers=workers,
                    start_method=start_method)
