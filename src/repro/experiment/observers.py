"""Online (per-round) metric accumulators.

These ride the :meth:`repro.net.Simulator.add_observer` hook: the
simulator hands each completed :class:`~repro.net.trace.RoundRecord` to
every observer as it is produced, so wire metrics cost O(1) extra memory
and are available even when the run does not retain its trace
(``ExperimentSpec(keep_trace=False)``, which sweeps use) — instead of
re-scanning the whole trace after the fact.
"""

from __future__ import annotations

from ..net.trace import RoundRecord
from ..types import NodeId


class WireStatsObserver:
    """Accumulates the trace-level wire metrics online."""

    def __init__(self) -> None:
        self.rounds = 0
        self.total_broadcasts = 0
        self.max_message_size = 0
        self._size_sum = 0
        self.collision_flags: dict[NodeId, int] = {}

    def __call__(self, record: RoundRecord) -> None:
        self.rounds += 1
        self.total_broadcasts += len(record.broadcasts)
        for message in record.broadcasts.values():
            size = message.size
            self._size_sum += size
            if size > self.max_message_size:
                self.max_message_size = size
        for node, flag in record.collisions.items():
            if flag:
                self.collision_flags[node] = self.collision_flags.get(node, 0) + 1

    def observe_summary(self, r: int, *, n_broadcasts: int, size_sum: int,
                        size_max: int, flagged: list[NodeId]) -> None:
        """Record-free ingestion for the sharded fast path.

        The sharded coordinator (:mod:`repro.net.shard`) builds no
        :class:`RoundRecord` in fast mode; it feeds the already-reduced
        per-round aggregates instead.  ``flagged`` arrives in ascending
        node order, matching the serial flag-map insertion order, so the
        resulting counters — and their pickles — are identical.
        """
        self.rounds += 1
        self.total_broadcasts += n_broadcasts
        self._size_sum += size_sum
        if size_max > self.max_message_size:
            self.max_message_size = size_max
        for node in flagged:
            self.collision_flags[node] = self.collision_flags.get(node, 0) + 1

    @property
    def mean_message_size(self) -> float:
        if self.total_broadcasts == 0:
            return 0.0
        return self._size_sum / self.total_broadcasts
