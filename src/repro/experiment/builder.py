"""Fluent construction of :class:`~repro.experiment.spec.ExperimentSpec`.

``scenario()`` opens a builder; each method returns the builder, so a
whole experiment reads as one chain::

    from repro import scenario

    result = (scenario()
              .nodes(6).instances(40)
              .adversary(RandomLossAdversary(p_drop=0.3, seed=1))
              .cha()
              .metrics("decided_instances", "max_message_size")
              .invariants("all")
              .run())

Deployed (virtual-infrastructure) worlds chain the same way::

    result = (scenario()
              .single_region(n_replicas=3)
              .program(0, CounterProgram())
              .client(Point(0.4, 0.0), ScriptedClient({...}), name="writer")
              .virtual_rounds(12)
              .metrics("availability")
              .run())

``build()`` validates and returns the inert spec; ``run()`` builds and
executes it in one step.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Iterable, Mapping

from ..contention import ContentionManager
from ..detectors import CollisionDetector
from ..errors import ConfigurationError
from ..geometry import Point
from ..net import Adversary, CrashSchedule, MobilityModel
from ..types import Instance, Round, Value
from ..vi.client import ClientProgram
from ..vi.program import VNProgram
from ..vi.schedule import VNSite
from .result import ExperimentResult
from .spec import (
    CHA,
    CheckpointCHA,
    ClusterWorld,
    DeployedWorld,
    DeviceSpec,
    EnvironmentSpec,
    ExperimentSpec,
    MajorityRSM,
    MetricsSpec,
    NaiveRSM,
    ProposerFactory,
    ProtocolSpec,
    ThreePhaseCommit,
    TwoPhaseCHA,
    VIEmulation,
    WorkloadSpec,
)


def scenario() -> "ScenarioBuilder":
    """Open a fresh :class:`ScenarioBuilder`."""
    return ScenarioBuilder()


class ScenarioBuilder:
    """Accumulates one experiment, then :meth:`build`\\ s or :meth:`run`\\ s it."""

    def __init__(self) -> None:
        self._n: int | None = None
        self._cluster_radius: float | None = None
        self._sites: list[VNSite] | None = None
        self._devices: list[DeviceSpec] = []
        self._programs: dict[int, VNProgram] = {}
        self._r1, self._r2, self._rcf = 1.0, 1.5, 0
        self._cm_stable_round: Round = 0
        self._min_schedule_length = 1
        self._protocol: ProtocolSpec | None = None
        self._environment = EnvironmentSpec()
        self._workload = WorkloadSpec()
        self._metrics: tuple[str, ...] = ()
        self._invariants: tuple[str, ...] = ()
        self._liveness_by: Instance | None = None
        self._faults = None
        self._keep_trace = True

    # ------------------------------------------------------------------
    # World: cluster
    # ------------------------------------------------------------------

    def nodes(self, n: int, *, cluster_radius: float | None = None) -> "ScenarioBuilder":
        """A Section 3 single-region cluster of ``n`` protocol nodes."""
        self._n = n
        self._cluster_radius = cluster_radius
        return self

    def radio(self, *, r1: float | None = None, r2: float | None = None,
              rcf: Round | None = None) -> "ScenarioBuilder":
        """Override the radio parameters (broadcast/interference radius,
        the adversarial-drop cutoff ``rcf``)."""
        if r1 is not None:
            self._r1 = r1
        if r2 is not None:
            self._r2 = r2
        if rcf is not None:
            self._rcf = rcf
        return self

    # ------------------------------------------------------------------
    # World: deployed (virtual infrastructure)
    # ------------------------------------------------------------------

    def sites(self, sites: Iterable[VNSite]) -> "ScenarioBuilder":
        """Deploy virtual nodes at the given sites."""
        self._sites = list(sites)
        return self

    def single_region(self, n_replicas: int = 3, *,
                      radius: float = 0.2) -> "ScenarioBuilder":
        """One virtual node at the origin, ``n_replicas`` replica devices."""
        from ..workloads import single_region

        sites, positions = single_region(n_replicas=n_replicas, radius=radius)
        return self.sites(sites).replicas(positions)

    def vn_line(self, count: int, *, spacing: float = 0.5,
                replicas_per_vn: int = 2) -> "ScenarioBuilder":
        """A corridor of virtual nodes with replica devices at each."""
        from ..workloads import vn_line

        sites, positions = vn_line(count, spacing=spacing,
                                   replicas_per_vn=replicas_per_vn)
        return self.sites(sites).replicas(positions)

    def vn_grid(self, rows: int, cols: int, *, spacing: float = 6.0,
                replicas_per_vn: int = 2) -> "ScenarioBuilder":
        """A grid of virtual nodes with replica devices at each."""
        from ..workloads import vn_grid

        sites, positions = vn_grid(rows, cols, spacing=spacing,
                                   replicas_per_vn=replicas_per_vn)
        return self.sites(sites).replicas(positions)

    def device(self, mobility: MobilityModel | Point, *,
               client: ClientProgram | None = None,
               start_round: Round = 0,
               initially_active: bool | None = None,
               name: str | None = None) -> "ScenarioBuilder":
        """Add one physical device (the generic form)."""
        self._devices.append(DeviceSpec(
            mobility=mobility, client=client, start_round=start_round,
            initially_active=initially_active, name=name,
        ))
        return self

    def replicas(self, mobilities: Iterable[MobilityModel | Point]) -> "ScenarioBuilder":
        """Add clientless replica devices, one per mobility/position."""
        for mobility in mobilities:
            self.device(mobility)
        return self

    def client(self, mobility: MobilityModel | Point,
               program: ClientProgram, *, start_round: Round = 0,
               initially_active: bool = False,
               name: str | None = None) -> "ScenarioBuilder":
        """Add a client device (inactive by default: it joins, not hosts)."""
        return self.device(mobility, client=program, start_round=start_round,
                           initially_active=initially_active, name=name)

    def program(self, vn_id: int, program: VNProgram) -> "ScenarioBuilder":
        """Assign the deterministic program for virtual node ``vn_id``."""
        self._programs[vn_id] = program
        return self

    def programs(self, programs: Mapping[int, VNProgram]) -> "ScenarioBuilder":
        self._programs.update(programs)
        return self

    def cm_stable_round(self, r: Round) -> "ScenarioBuilder":
        """Round from which the regional contention managers are stable."""
        self._cm_stable_round = r
        return self

    def min_schedule_length(self, length: int) -> "ScenarioBuilder":
        self._min_schedule_length = length
        return self

    # ------------------------------------------------------------------
    # Environment
    # ------------------------------------------------------------------

    def adversary(self, adversary: Adversary) -> "ScenarioBuilder":
        self._environment = dataclasses.replace(self._environment,
                                                adversary=adversary)
        return self

    def detector(self, detector: CollisionDetector) -> "ScenarioBuilder":
        self._environment = dataclasses.replace(self._environment,
                                                detector=detector)
        return self

    def contention(self, cm: ContentionManager) -> "ScenarioBuilder":
        self._environment = dataclasses.replace(self._environment, cm=cm)
        return self

    def crashes(self, crashes: CrashSchedule) -> "ScenarioBuilder":
        self._environment = dataclasses.replace(self._environment,
                                                crashes=crashes)
        return self

    def faults(self, plan, *, seed: int | None = None) -> "ScenarioBuilder":
        """Attach a declarative :class:`~repro.faults.FaultPlan`.

        The runner compiles the plan into the environment on entry
        (adversary, crashes, detector accuracy, world ``rcf``); explicit
        :meth:`adversary`/:meth:`detector`/:meth:`crashes` calls compose
        with it as documented on
        :func:`repro.faults.compile.apply_faults`.  ``seed`` reseeds the
        plan in place.
        """
        if seed is not None:
            plan = plan.with_seed(seed)
        self._faults = plan
        return self

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def protocol(self, protocol: ProtocolSpec) -> "ScenarioBuilder":
        self._protocol = protocol
        return self

    def cha(self, *, proposer_factory: ProposerFactory | None = None,
            process_factory: Callable[..., Any] | None = None) -> "ScenarioBuilder":
        return self.protocol(CHA(proposer_factory=proposer_factory,
                                 process_factory=process_factory))

    def checkpoint_cha(self, *, reducer: Callable[[Any, Instance, Value], Any],
                       initial_state: Any,
                       proposer_factory: ProposerFactory | None = None) -> "ScenarioBuilder":
        return self.protocol(CheckpointCHA(
            reducer=reducer, initial_state=initial_state,
            proposer_factory=proposer_factory,
        ))

    def naive_rsm(self, *, proposer_factory: ProposerFactory | None = None) -> "ScenarioBuilder":
        return self.protocol(NaiveRSM(proposer_factory=proposer_factory))

    def two_phase_cha(self, *, proposer_factory: ProposerFactory | None = None) -> "ScenarioBuilder":
        return self.protocol(TwoPhaseCHA(proposer_factory=proposer_factory))

    def majority_rsm(self) -> "ScenarioBuilder":
        return self.protocol(MajorityRSM())

    def three_phase_commit(self, votes: Iterable[bool], *,
                           lossy: Iterable[int] = (),
                           crash_coordinator_after: str | None = None) -> "ScenarioBuilder":
        return self.protocol(ThreePhaseCommit(
            votes=tuple(votes), lossy=frozenset(lossy),
            crash_coordinator_after=crash_coordinator_after,
        ))

    # ------------------------------------------------------------------
    # Workload / measurement
    # ------------------------------------------------------------------

    def instances(self, instances: Instance) -> "ScenarioBuilder":
        """Run this many agreement instances (cluster protocols)."""
        self._workload = dataclasses.replace(self._workload,
                                             instances=instances)
        return self

    def rounds(self, rounds: Round) -> "ScenarioBuilder":
        """Run a raw communication-round budget (cluster protocols)."""
        self._workload = dataclasses.replace(self._workload, rounds=rounds)
        return self

    def virtual_rounds(self, virtual_rounds: int) -> "ScenarioBuilder":
        """Run this many whole virtual rounds (VI emulations)."""
        self._workload = dataclasses.replace(self._workload,
                                             virtual_rounds=virtual_rounds)
        return self

    def metrics(self, *names: str) -> "ScenarioBuilder":
        self._metrics = self._metrics + names
        return self

    def invariants(self, *names: str) -> "ScenarioBuilder":
        self._invariants = self._invariants + names
        return self

    def liveness_by(self, instance: Instance) -> "ScenarioBuilder":
        """Arm the ``liveness`` invariant with its convergence deadline."""
        self._liveness_by = instance
        if "liveness" not in self._invariants and "all" not in self._invariants:
            self._invariants = self._invariants + ("liveness",)
        return self

    def keep_trace(self, keep: bool = True) -> "ScenarioBuilder":
        self._keep_trace = keep
        return self

    # ------------------------------------------------------------------
    # Terminal operations
    # ------------------------------------------------------------------

    def build(self) -> ExperimentSpec:
        """Assemble and validate the spec."""
        protocol = self._protocol
        if protocol is None:
            if self._sites is not None or self._programs:
                protocol = VIEmulation(programs=dict(self._programs))
            else:
                protocol = CHA()
        elif isinstance(protocol, VIEmulation) and self._programs:
            raise ConfigurationError(
                "pass programs either via .program()/.programs() or inside "
                "the VIEmulation protocol, not both"
            )

        world: ClusterWorld | DeployedWorld | None
        if isinstance(protocol, ThreePhaseCommit):
            world = None
        elif isinstance(protocol, VIEmulation):
            if self._sites is None:
                raise ConfigurationError(
                    "a VI emulation needs sites (.sites()/.single_region()/"
                    ".vn_line()/.vn_grid())"
                )
            world = DeployedWorld(
                sites=tuple(self._sites), devices=tuple(self._devices),
                r1=self._r1, r2=self._r2, rcf=self._rcf,
                cm_stable_round=self._cm_stable_round,
                min_schedule_length=self._min_schedule_length,
            )
        else:
            if self._n is None:
                raise ConfigurationError(
                    f"{type(protocol).__name__} needs .nodes(n)"
                )
            world = ClusterWorld(
                n=self._n, r1=self._r1, r2=self._r2, rcf=self._rcf,
                cluster_radius=self._cluster_radius,
            )

        spec = ExperimentSpec(
            protocol=protocol, world=world,
            environment=self._environment, workload=self._workload,
            metrics=MetricsSpec(metrics=self._metrics,
                                invariants=self._invariants,
                                liveness_by=self._liveness_by),
            faults=self._faults,
            keep_trace=self._keep_trace,
        )
        spec.validate()
        return spec

    def run(self) -> ExperimentResult:
        """Build the spec and execute it immediately."""
        from .runner import run

        return run(self.build())
