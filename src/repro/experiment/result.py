"""The uniform result every experiment run produces.

Whatever the protocol — a CHAP ensemble, a baseline, the off-channel 3PC
comparator, or a whole virtual-infrastructure deployment — running a spec
yields one :class:`ExperimentResult` carrying the requested metrics, the
invariant verdicts, and protocol-appropriate handles (the
:class:`~repro.core.runner.ChaRun`, the :class:`~repro.vi.world.VIWorld`,
the live client programs, ...) for deeper inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from ..core.runner import ChaRun
from ..core.spec import OutputLog
from ..errors import ConfigurationError
from ..net import Simulator, Trace
from ..types import Instance, NodeId, Value
from ..vi.client import ClientProgram
from ..vi.world import VIWorld
from .spec import ExperimentSpec

#: Verdict value meaning an invariant held.
OK = "ok"


@dataclass
class ExperimentResult:
    """Everything one experiment run produced."""

    spec: ExperimentSpec
    #: Requested metric name -> value (picklable primitives/containers).
    metrics: dict[str, Any]
    #: Invariant name -> ``"ok"`` or ``"violated: <message>"``.
    invariants: dict[str, str]
    #: For each violated invariant, the checker's reproduction context
    #: (:attr:`~repro.errors.SpecViolation.context` — violating
    #: instance, nodes, colours).  The fault shrinker mines this for
    #: horizon hints.
    violation_context: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Per-node output logs (agreement-protocol families; else None).
    outputs: dict[NodeId, OutputLog] | None = None
    #: Per-node proposals (CHA families; else None).
    proposals: dict[NodeId, Mapping[Instance, Value]] | None = None
    #: The execution trace (None when keep_trace=False or off-channel).
    trace: Trace | None = None
    simulator: Simulator | None = None
    #: The classic run handle for CHA-family protocols.
    cha_run: ChaRun | None = None
    #: The deployment handle for VI emulations.
    world: VIWorld | None = None
    processes: dict[NodeId, Any] = field(default_factory=dict)
    #: Live client programs of a deployment, keyed by node id.
    clients: dict[NodeId, ClientProgram] = field(default_factory=dict)
    #: Clients (and their node ids) by DeviceSpec.name.
    named_clients: dict[str, ClientProgram] = field(default_factory=dict)
    #: The 3PC comparator's decision / participants.
    decision: Any = None
    participants: list[Any] = field(default_factory=list)
    #: Execution timings filled in by the runner: ``wall_s`` (seconds
    #: spent building + driving the run) and, for channel-driven
    #: protocols, ``rounds`` and ``rounds_per_sec``.  The bench subsystem
    #: (:mod:`repro.bench`) consumes these.
    timings: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------

    def ok(self) -> bool:
        """True when every checked invariant held."""
        return all(v == OK for v in self.invariants.values())

    def assert_ok(self) -> None:
        """Raise ``AssertionError`` listing any violated invariants."""
        bad = {k: v for k, v in self.invariants.items() if v != OK}
        assert not bad, f"invariants violated: {bad}"

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    def client(self, name: str) -> ClientProgram:
        """The live client program of the device named ``name``."""
        try:
            return self.named_clients[name]
        except KeyError:
            raise ConfigurationError(
                f"no client device named {name!r}; known: "
                f"{sorted(self.named_clients)}"
            ) from None

    def summary(self) -> dict[str, Any]:
        """The picklable core of the result (what sweep workers return)."""
        return {"metrics": self.metrics, "invariants": self.invariants}
