"""Execute an :class:`~repro.experiment.spec.ExperimentSpec`.

:func:`run` is the one entrypoint behind every protocol the library
implements.  It builds the world, wires the environment, drives the
execution, and extracts the requested metrics (collected online through
the simulator's observer hook wherever possible) and invariant verdicts
into a uniform :class:`~repro.experiment.result.ExperimentResult`.

Metric and invariant names are resolved against per-family registries;
asking for a metric a protocol cannot produce is a configuration error,
not a silent ``None``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..analysis.invariants import GLASS_BOX_CHECKERS
from ..baselines.majority_rsm import MajorityRSMProcess
from ..baselines.naive_rsm import NaiveRSMProcess
from ..baselines.three_phase_commit import (
    Participant,
    ThreePhaseCommit as ThreePhaseCommitTxn,
    state_spread,
)
from ..baselines.two_phase_cha import TWO_PHASE_ROUNDS, TwoPhaseChaProcess
from ..contention import LeaderElectionCM
from ..core.cha import CHAProcess, ROUNDS_PER_INSTANCE
from ..core.checkpoint import CheckpointCHAProcess
from ..core.history import (
    HISTORY_TIMER,
    activate_chain_generation,
    new_chain_generation,
)
from ..core.runner import ChaRun, cluster_positions, default_proposer
from ..core.spec import check_agreement, check_liveness, check_validity
from ..detectors import EventuallyAccurateDetector
from ..errors import ConfigurationError, SimulationError, SpecViolation
from ..net import RadioSpec, Simulator
from ..net.shard import ShardedSimulator, shards_forced
from ..types import BOTTOM, NodeId
from ..vi.world import VIWorld
from .observers import WireStatsObserver
from .result import OK, ExperimentResult
from .spec import (
    CHA,
    CheckpointCHA,
    ClusterWorld,
    DeployedWorld,
    ExperimentSpec,
    MajorityRSM,
    NaiveRSM,
    ThreePhaseCommit,
    TwoPhaseCHA,
    VIEmulation,
)


@dataclass
class _RunContext:
    """Everything metric/invariant extractors may consult."""

    spec: ExperimentSpec
    rounds_run: int = 0
    wire: WireStatsObserver | None = None
    sim: Simulator | None = None
    cha_run: ChaRun | None = None
    processes: dict[NodeId, Any] = field(default_factory=dict)
    world: VIWorld | None = None
    decision: Any = None
    participants: list[Participant] = field(default_factory=list)
    txn_log: tuple[str, ...] = ()


# ----------------------------------------------------------------------
# Metric registries
# ----------------------------------------------------------------------

def _wire(ctx: _RunContext) -> WireStatsObserver:
    assert ctx.wire is not None
    return ctx.wire


_WIRE_METRICS: dict[str, Callable[[_RunContext], Any]] = {
    "rounds": lambda ctx: _wire(ctx).rounds,
    "total_broadcasts": lambda ctx: _wire(ctx).total_broadcasts,
    "max_message_size": lambda ctx: _wire(ctx).max_message_size,
    "mean_message_size": lambda ctx: _wire(ctx).mean_message_size,
    "collision_flags": lambda ctx: dict(_wire(ctx).collision_flags),
}


def _decided_by_node(ctx: _RunContext) -> dict[NodeId, int]:
    run = ctx.cha_run
    assert run is not None
    return {
        node: sum(out is not BOTTOM for _, out in log)
        for node, log in run.outputs.items()
    }


def _throughput_by_node(ctx: _RunContext) -> dict[NodeId, float]:
    rounds = ctx.rounds_run
    return {
        node: (decided / rounds if rounds else 0.0)
        for node, decided in _decided_by_node(ctx).items()
    }


def _bottom_rate_by_node(ctx: _RunContext) -> dict[NodeId, float]:
    run = ctx.cha_run
    assert run is not None
    return {
        node: (sum(out is BOTTOM for _, out in log) / len(log) if log else 0.0)
        for node, log in run.outputs.items()
    }


def _color_divergence(ctx: _RunContext) -> dict[int, int]:
    from ..analysis.metrics import color_divergence_histogram

    assert ctx.cha_run is not None
    return color_divergence_histogram(ctx.cha_run)


def _convergence_instance(ctx: _RunContext) -> Any:
    from ..analysis.metrics import convergence_instance

    assert ctx.cha_run is not None
    return convergence_instance(ctx.cha_run)


def _resident_entries(ctx: _RunContext) -> dict[NodeId, int]:
    return {
        node: proc.core.resident_entries()
        for node, proc in ctx.processes.items()
    }


_CHA_METRICS: dict[str, Callable[[_RunContext], Any]] = {
    **_WIRE_METRICS,
    "decided_instances": _decided_by_node,
    "decision_throughput": _throughput_by_node,
    "bottom_rate": _bottom_rate_by_node,
    "color_divergence": _color_divergence,
    "convergence_instance": _convergence_instance,
    "resident_entries": _resident_entries,
}

_MAJORITY_METRICS: dict[str, Callable[[_RunContext], Any]] = {
    **_WIRE_METRICS,
    "decided_instances": lambda ctx: {
        node: proc.decided_count for node, proc in ctx.processes.items()
    },
}

_VI_METRICS: dict[str, Callable[[_RunContext], Any]] = {
    **_WIRE_METRICS,
    "availability": lambda ctx: {
        site.vn_id: ctx.world.availability(site.vn_id)
        for site in ctx.world.sites
    },
    "emulation_gaps": lambda ctx: {
        site.vn_id: ctx.world.emulation_gaps(site.vn_id)
        for site in ctx.world.sites
    },
    "schedule_length": lambda ctx: ctx.world.schedule.length,
    "rounds_per_virtual_round": lambda ctx: (
        ctx.rounds_run / ctx.world.virtual_rounds_run
        if ctx.world.virtual_rounds_run else 0.0
    ),
}

_3PC_METRICS: dict[str, Callable[[_RunContext], Any]] = {
    "decision": lambda ctx: ctx.decision.value,
    "state_spread": lambda ctx: state_spread(ctx.participants),
    "log": lambda ctx: ctx.txn_log,
}


# ----------------------------------------------------------------------
# Invariant registries
# ----------------------------------------------------------------------

def _inv_validity(ctx: _RunContext) -> None:
    check_validity(ctx.cha_run.outputs, ctx.cha_run.proposals)


def _inv_agreement(ctx: _RunContext) -> None:
    check_agreement(ctx.cha_run.outputs,
                    use_reference=ctx.spec.use_reference_history)


def _inv_liveness(ctx: _RunContext) -> None:
    by = ctx.spec.metrics.liveness_by
    if by is None:
        raise ConfigurationError(
            "the liveness invariant needs MetricsSpec.liveness_by"
        )
    run = ctx.cha_run
    survivors = run.surviving_nodes()
    check_liveness(
        {node: run.outputs[node] for node in survivors},
        by_instance=by, alive=survivors,
    )


def _inv_replica_consistency(ctx: _RunContext) -> None:
    for site in ctx.world.sites:
        try:
            ctx.world.check_replica_consistency(site.vn_id)
        except AssertionError as exc:
            raise SpecViolation(str(exc)) from None


def _inv_vi_liveness(ctx: _RunContext) -> None:
    """Every virtual node is live in every virtual round from
    ``liveness_by`` (a virtual-round index) onward."""
    by = ctx.spec.metrics.liveness_by
    if by is None:
        raise ConfigurationError(
            "the liveness invariant needs MetricsSpec.liveness_by "
            "(a virtual-round index for emulations)"
        )
    for site in ctx.world.sites:
        outcomes = ctx.world.outcomes[site.vn_id]
        tail = outcomes[by:]
        if not tail:
            raise SpecViolation(
                f"liveness: the run ended before virtual round {by}",
                context={"vn_id": site.vn_id, "by": by},
            )
        for offset, outcome in enumerate(tail):
            if not outcome.live:
                raise SpecViolation(
                    f"liveness: virtual node {site.vn_id} not live at "
                    f"virtual round {by + offset} (required from {by} on)",
                    context={"vn_id": site.vn_id, "vr": by + offset,
                             "by": by},
                )


_FULL_HISTORY_INVARIANTS: dict[str, Callable[[_RunContext], None]] = {
    "validity": _inv_validity,
    "agreement": _inv_agreement,
    "liveness": _inv_liveness,
    # The glass-box lemma checkers come from the analysis registry, the
    # single source of truth shared with ad-hoc ChaRun debugging
    # (repro.analysis.collect_violations).
    **{name: (lambda ctx, checker=checker: checker(ctx.cha_run))
       for name, checker in GLASS_BOX_CHECKERS.items()},
}

#: Checkpoint outputs are (checkpoint, suffix) pairs, not full histories,
#: so only the glass-box colour/pointer checkers apply.
_CHECKPOINT_INVARIANTS = {
    name: _FULL_HISTORY_INVARIANTS[name]
    for name in ("property4", "lemma5", "prev_pointer")
}

_VI_INVARIANTS: dict[str, Callable[[_RunContext], None]] = {
    "replica_consistency": _inv_replica_consistency,
    "liveness": _inv_vi_liveness,
}


def _registries_for(protocol) -> tuple[dict, dict]:
    if isinstance(protocol, (CHA, NaiveRSM, TwoPhaseCHA)):
        return _CHA_METRICS, _FULL_HISTORY_INVARIANTS
    if isinstance(protocol, CheckpointCHA):
        return _CHA_METRICS, _CHECKPOINT_INVARIANTS
    if isinstance(protocol, MajorityRSM):
        return _MAJORITY_METRICS, {}
    if isinstance(protocol, VIEmulation):
        return _VI_METRICS, _VI_INVARIANTS
    if isinstance(protocol, ThreePhaseCommit):
        return _3PC_METRICS, {}
    raise ConfigurationError(f"unknown protocol spec {protocol!r}")


def _extract(ctx: _RunContext) -> tuple[dict[str, Any], dict[str, str],
                                        dict[str, dict[str, Any]]]:
    metric_registry, invariant_registry = _registries_for(ctx.spec.protocol)
    metrics: dict[str, Any] = {}
    for name in ctx.spec.metrics.metrics:
        if name not in metric_registry:
            raise ConfigurationError(
                f"metric {name!r} is not available for "
                f"{type(ctx.spec.protocol).__name__}; known: "
                f"{sorted(metric_registry)}"
            )
        metrics[name] = metric_registry[name](ctx)

    wanted = list(ctx.spec.metrics.invariants)
    if "all" in wanted:
        expanded = [n for n in sorted(invariant_registry)
                    if n != "liveness" or ctx.spec.metrics.liveness_by is not None]
        wanted = [n for n in wanted if n != "all"] + [
            n for n in expanded if n not in wanted
        ]
    verdicts: dict[str, str] = {}
    contexts: dict[str, dict[str, Any]] = {}
    for name in wanted:
        if name not in invariant_registry:
            raise ConfigurationError(
                f"invariant {name!r} is not available for "
                f"{type(ctx.spec.protocol).__name__}; known: "
                f"{sorted(invariant_registry)}"
            )
        try:
            invariant_registry[name](ctx)
        except SpecViolation as exc:
            verdicts[name] = f"violated: {exc}"
            # The checker's reproduction context (violating instance,
            # nodes, colours) feeds the shrinker's horizon heuristics.
            contexts[name] = dict(exc.context)
        else:
            verdicts[name] = OK
    return metrics, verdicts, contexts


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

#: Hook called with the freshly built :class:`~repro.net.Simulator`
#: before any round executes — the bench subsystem uses it to install
#: timing proxies; tests use it to reach engine internals mid-run.
Instrument = Callable[[Any], None]


def run(spec: ExperimentSpec, *,
        instrument: Instrument | None = None) -> ExperimentResult:
    """Run one declarative experiment and return its uniform result.

    The spec's environment components (adversary, detector, contention
    manager, clients, mobility models) are used *directly*, exactly as
    the classic per-protocol runners did — handles the caller kept stay
    live for post-run inspection.  A stateful spec therefore describes
    one run; :func:`repro.experiment.sweep.sweep` copies the spec per
    grid point, so sweeps are repeatable by construction.

    ``instrument`` is called with the built simulator (cluster and
    emulation runs; the off-channel 3PC comparator has none) before the
    first round, so callers can attach observers or timing wrappers.
    The result's :attr:`~.result.ExperimentResult.timings` carries the
    run's wall time and, where rounds exist, the rounds/sec throughput.

    This is a thin wrapper over :class:`ExperimentStepper` — building
    the world and driving it to completion in one call.  Callers that
    need to interleave their own work with the execution (the live
    service in :mod:`repro.service` advances the world on an asyncio
    clock) construct the stepper directly and call
    :meth:`~ExperimentStepper.step` / :meth:`~ExperimentStepper.finish`
    themselves; the two paths produce identical results.
    """
    return ExperimentStepper(spec, instrument=instrument).finish()


class ExperimentStepper:
    """Resumable execution of one :class:`ExperimentSpec`.

    Construction builds the whole world (simulator, processes, wiring)
    but runs nothing.  :meth:`step` then advances the execution by a
    number of *ticks* — communication rounds for cluster protocols,
    virtual rounds for emulations, the whole (off-channel) transaction
    for the 3PC comparator — and :meth:`finish` runs whatever remains
    and extracts the metrics and invariant verdicts into the same
    :class:`~.result.ExperimentResult` a one-shot :func:`run` returns.
    The identity suite pins stepped and one-shot executions to identical
    results (traces, outputs, metrics, verdicts).

    ``timings["wall_s"]`` accumulates only *active* execution time
    (construction, stepping, extraction) so a stepper driven on a slow
    external clock still reports the throughput of the engine rather
    than of the clock.
    """

    def __init__(self, spec: ExperimentSpec, *,
                 instrument: Instrument | None = None) -> None:
        spec.validate()
        if spec.faults is not None:
            # Lazy import: repro.faults.explorer sits *above* this module.
            from ..faults.compile import apply_faults

            spec = apply_faults(spec)
        # One execution = one chain-interning generation: a prior run's
        # uncollected chains must never satisfy this run's interning
        # probes (see core.history.new_chain_generation).  The stepper
        # remembers its generation and re-activates it around every
        # step/finish, so several live steppers advanced in turns (the
        # multi-world service) each keep interning in their own
        # generation exactly as an uninterrupted run would.
        self.generation = new_chain_generation()
        self._history_t0 = (HISTORY_TIMER.seconds
                            if HISTORY_TIMER.enabled else None)
        self._active_s = 0.0
        self._result: ExperimentResult | None = None
        started = time.perf_counter()
        protocol = spec.protocol
        if isinstance(protocol, ThreePhaseCommit):
            self._exec: _Execution = _ThreePhaseExecution(spec, instrument)
        elif isinstance(protocol, VIEmulation):
            self._exec = _EmulationExecution(spec, instrument)
        else:
            self._exec = _ClusterExecution(spec, instrument)
        self._active_s += time.perf_counter() - started
        self.spec = spec

    # -- introspection -------------------------------------------------

    @property
    def total_ticks(self) -> int:
        """Ticks the workload prescribes (rounds / virtual rounds / 1)."""
        return self._exec.total_ticks

    @property
    def ticks_run(self) -> int:
        return self._exec.ticks_run

    @property
    def remaining(self) -> int:
        return self._exec.total_ticks - self._exec.ticks_run

    @property
    def finished(self) -> bool:
        return self._result is not None

    @property
    def simulator(self) -> Simulator | None:
        """The live simulator (None for the off-channel comparator)."""
        return self._exec.simulator

    @property
    def processes(self) -> dict[NodeId, Any]:
        """The live per-node processes (empty for the comparator)."""
        return self._exec.processes

    # -- execution -----------------------------------------------------

    def step(self, ticks: int = 1) -> int:
        """Advance up to ``ticks`` ticks; returns how many actually ran
        (fewer once the workload is exhausted)."""
        if self._result is not None:
            raise ConfigurationError(
                "this stepper already finished; build a new one to re-run"
            )
        if ticks < 0:
            raise ConfigurationError("ticks must be non-negative")
        started = time.perf_counter()
        previous = activate_chain_generation(self.generation)
        try:
            ran = self._exec.step(ticks)
        finally:
            activate_chain_generation(previous)
        self._active_s += time.perf_counter() - started
        return ran

    def finish(self) -> ExperimentResult:
        """Run any remaining ticks, extract, and return the result.

        Idempotent: subsequent calls return the same result object.
        """
        if self._result is not None:
            return self._result
        started = time.perf_counter()
        previous = activate_chain_generation(self.generation)
        try:
            self._exec.step(self.remaining)
            result = self._exec.finalize()
        finally:
            activate_chain_generation(previous)
        self._active_s += time.perf_counter() - started
        result.timings["wall_s"] = self._active_s
        if self._history_t0 is not None:
            # The history-phase bucket: wall time spent folding/deriving
            # histories, measured only when the caller armed
            # HISTORY_TIMER (the bench runner does) so the hot path pays
            # nothing otherwise.
            result.timings["history_s"] = (HISTORY_TIMER.seconds
                                           - self._history_t0)
        if result.simulator is not None:
            rounds = float(result.simulator.current_round)
            result.timings["rounds"] = rounds
            result.timings["rounds_per_sec"] = (
                rounds / self._active_s if self._active_s > 0 else 0.0)
        self._result = result
        return result


class _Execution:
    """One protocol family's build/step/extract machinery."""

    total_ticks: int
    ticks_run: int = 0
    simulator: Simulator | None = None
    processes: dict[NodeId, Any] = {}

    def step(self, ticks: int) -> int:
        raise NotImplementedError

    def finalize(self) -> ExperimentResult:
        raise NotImplementedError


class _ClusterExecution(_Execution):
    def __init__(self, spec: ExperimentSpec,
                 instrument: Instrument | None = None) -> None:
        self.spec = spec
        world: ClusterWorld = spec.world
        env = spec.environment
        protocol = spec.protocol
        sim = Simulator(
            spec=RadioSpec(r1=world.r1, r2=world.r2, rcf=world.rcf),
            adversary=env.adversary,
            detector=env.detector if env.detector is not None
            else EventuallyAccurateDetector(),
            cms={"C": env.cm if env.cm is not None
                 else LeaderElectionCM(stable_round=0)},
            crashes=env.crashes,
            record_trace=spec.keep_trace,
            use_reference_engine=spec.use_reference_engine,
        )
        wire = WireStatsObserver()
        sim.add_observer(wire)

        radius = (world.cluster_radius if world.cluster_radius is not None
                  else world.r1 / 4.0)
        positions = cluster_positions(world.n, radius=radius)
        proposer_factory = getattr(protocol, "proposer_factory", None) or default_proposer

        reference_history = spec.use_reference_history
        reference_core = spec.use_reference_core
        # Wire-payload pooling is only safe when nothing retains wire
        # objects across rounds; dropping the trace is exactly that
        # promise (see repro.core.slotted).  The reference core ignores
        # the flag.
        pool_payloads = not spec.keep_trace
        processes: dict[NodeId, Any] = {}
        for node_id, position in enumerate(positions):
            if isinstance(protocol, CHA):
                if protocol.process_factory is not None:
                    # Custom factories keep their seed signature; the spec
                    # switch only drives the built-in process classes.
                    proc = protocol.process_factory(
                        propose=proposer_factory(node_id), cm_name="C")
                else:
                    proc = CHAProcess(propose=proposer_factory(node_id),
                                      cm_name="C",
                                      use_reference_history=reference_history,
                                      use_reference_core=reference_core,
                                      pool_payloads=pool_payloads)
                rpi = ROUNDS_PER_INSTANCE
            elif isinstance(protocol, CheckpointCHA):
                proc = CheckpointCHAProcess(
                    propose=proposer_factory(node_id),
                    reducer=protocol.reducer,
                    initial_state=protocol.initial_state,
                    cm_name="C",
                    use_reference_history=reference_history,
                    use_reference_core=reference_core,
                    pool_payloads=pool_payloads,
                )
                rpi = ROUNDS_PER_INSTANCE
            elif isinstance(protocol, NaiveRSM):
                proc = NaiveRSMProcess(propose=proposer_factory(node_id),
                                       cm_name="C",
                                       use_reference_history=reference_history,
                                       use_reference_core=reference_core,
                                       pool_payloads=pool_payloads)
                rpi = ROUNDS_PER_INSTANCE
            elif isinstance(protocol, TwoPhaseCHA):
                proc = TwoPhaseChaProcess(propose=proposer_factory(node_id),
                                          use_reference_history=reference_history,
                                          use_reference_core=reference_core,
                                          pool_payloads=pool_payloads)
                rpi = TWO_PHASE_ROUNDS
            elif isinstance(protocol, MajorityRSM):
                proc = MajorityRSMProcess(
                    my_index=node_id, n=world.n, is_leader=node_id == 0,
                    propose=lambda k, idx=node_id: f"m{idx}.{k:06d}",
                )
                rpi = world.n + 2
            else:  # pragma: no cover - validate() rejects this earlier
                raise ConfigurationError(f"unsupported cluster protocol {protocol!r}")
            assigned = sim.add_node(proc, position)
            if assigned != node_id:
                raise SimulationError(
                    f"simulator assigned node id {assigned}, expected {node_id}"
                )
            processes[assigned] = proc

        rounds = (spec.workload.rounds if spec.workload.rounds is not None
                  else spec.workload.instances * rpi)
        if instrument is not None:
            instrument(sim)
        self.simulator = sim
        self.processes = processes
        self.wire = wire
        self.rpi = rpi
        self.total_ticks = rounds
        # The fifth reference-style switch: spec.shards, or REPRO_SHARDS
        # when the spec leaves it open.  Workers fork lazily on the
        # first step, so the instrument hook above is inherited.
        shards = spec.shards if spec.shards is not None else shards_forced()
        self.shard: ShardedSimulator | None = None
        if shards is not None and shards > 1:
            if isinstance(protocol, MajorityRSM) or (
                    isinstance(protocol, CHA)
                    and protocol.process_factory is not None):
                raise ConfigurationError(
                    "sharded execution covers the built-in CHA-family "
                    "protocols (cha, checkpoint-cha, naive-rsm, "
                    "two-phase-cha); majority-rsm and custom process "
                    "factories run serially"
                )
            self.shard = ShardedSimulator(sim, shards,
                                          plan_positions=positions)

    def step(self, ticks: int) -> int:
        ran = min(ticks, self.total_ticks - self.ticks_run)
        stepper = self.shard if self.shard is not None else self.simulator
        for _ in range(ran):
            stepper.step()
        self.ticks_run += ran
        return ran

    def finalize(self) -> ExperimentResult:
        if self.shard is not None:
            # Fast-mode workers hold the authoritative protocol state
            # until it is shipped home here; mirror mode cross-checks.
            self.shard.finish()
        spec, sim, processes = self.spec, self.simulator, self.processes
        protocol, rounds = spec.protocol, self.total_ticks
        trace = sim.trace
        ctx = _RunContext(spec=spec, rounds_run=rounds, wire=self.wire,
                          sim=sim, processes=processes)
        cha_run = None
        outputs = proposals = None
        if not isinstance(protocol, MajorityRSM):
            instances = (spec.workload.instances
                         if spec.workload.instances is not None
                         else rounds // self.rpi)
            cha_run = ChaRun(simulator=sim, processes=processes, trace=trace,
                             instances=instances)
            ctx.cha_run = cha_run
            outputs, proposals = cha_run.outputs, cha_run.proposals
        metrics, verdicts, contexts = _extract(ctx)
        return ExperimentResult(
            spec=spec, metrics=metrics, invariants=verdicts,
            violation_context=contexts,
            outputs=outputs, proposals=proposals,
            trace=trace if spec.keep_trace else None,
            simulator=sim, cha_run=cha_run, processes=processes,
        )


class _EmulationExecution(_Execution):
    def __init__(self, spec: ExperimentSpec,
                 instrument: Instrument | None = None) -> None:
        self.spec = spec
        world_spec: DeployedWorld = spec.world
        protocol: VIEmulation = spec.protocol
        env = spec.environment
        world = VIWorld(
            list(world_spec.sites), dict(protocol.programs),
            r1=world_spec.r1, r2=world_spec.r2, rcf=world_spec.rcf,
            adversary=env.adversary, detector=env.detector,
            crashes=env.crashes,
            cm_stable_round=world_spec.cm_stable_round,
            min_schedule_length=world_spec.min_schedule_length,
            schedule=world_spec.schedule,
            use_reference_history=spec.use_reference_history,
            use_reference_engine=spec.use_reference_engine,
            use_reference_core=spec.use_reference_core,
            use_reference_vi=spec.use_reference_vi,
            # Pooled wire payloads are only safe when nothing retains
            # the broadcast objects across rounds (mirrors the cluster
            # executor's gate).
            pool_payloads=not spec.keep_trace,
        )
        world.sim.record_trace = spec.keep_trace
        wire = WireStatsObserver()
        world.sim.add_observer(wire)

        clients: dict[NodeId, Any] = {}
        named: dict[str, Any] = {}
        for device in world_spec.devices:
            node_id = world.add_device(
                device.mobility, client=device.client,
                start_round=device.start_round,
                initially_active=device.initially_active,
            )
            if device.client is not None:
                clients[node_id] = device.client
                if device.name is not None:
                    named[device.name] = device.client

        if instrument is not None:
            instrument(world.sim)
        self.world = world
        self.wire = wire
        self.clients = clients
        self.named = named
        self.simulator = world.sim
        self.processes = dict(world.devices)
        self.total_ticks = spec.workload.virtual_rounds

    def step(self, ticks: int) -> int:
        ran = min(ticks, self.total_ticks - self.ticks_run)
        if ran:
            self.world.run_virtual_rounds(ran)
        self.ticks_run += ran
        return ran

    def finalize(self) -> ExperimentResult:
        spec, world = self.spec, self.world
        # Device membership can grow mid-run (joins); re-read it here.
        self.processes = dict(world.devices)
        ctx = _RunContext(spec=spec, rounds_run=world.sim.current_round,
                          wire=self.wire, sim=world.sim, world=world,
                          processes=dict(world.devices))
        metrics, verdicts, contexts = _extract(ctx)
        return ExperimentResult(
            spec=spec, metrics=metrics, invariants=verdicts,
            violation_context=contexts,
            trace=world.sim.trace if spec.keep_trace else None,
            simulator=world.sim, world=world,
            processes=dict(world.devices),
            clients=self.clients, named_clients=self.named,
        )


class _ThreePhaseExecution(_Execution):
    #: The whole off-channel transaction is one tick.
    total_ticks = 1

    def __init__(self, spec: ExperimentSpec,
                 instrument: Instrument | None = None) -> None:
        if instrument is not None:
            raise ConfigurationError(
                "the 3PC comparator runs off-channel: there is no "
                "simulator to instrument"
            )
        self.spec = spec
        protocol: ThreePhaseCommit = spec.protocol
        self.participants = [
            Participant(pid=i, vote_yes=vote)
            for i, vote in enumerate(protocol.votes)
        ]
        self.txn = ThreePhaseCommitTxn(
            self.participants,
            lossy=protocol.lossy,
            crash_coordinator_after=protocol.crash_coordinator_after,
        )
        self.decision = None

    def step(self, ticks: int) -> int:
        ran = min(ticks, self.total_ticks - self.ticks_run)
        if ran:
            self.decision = self.txn.run()
        self.ticks_run += ran
        return ran

    def finalize(self) -> ExperimentResult:
        spec = self.spec
        ctx = _RunContext(spec=spec, decision=self.decision,
                          participants=self.participants,
                          txn_log=tuple(self.txn.log))
        metrics, verdicts, contexts = _extract(ctx)
        return ExperimentResult(
            spec=spec, metrics=metrics, invariants=verdicts,
            violation_context=contexts,
            decision=self.decision, participants=self.participants,
        )
