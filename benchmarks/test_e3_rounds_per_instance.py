"""E3 — Theorem 14 (rounds): every CHA instance costs exactly 3 rounds.

Measures real rounds per *decided* instance in the stable regime across
ensemble sizes and execution lengths: the constant 3, independent of n —
the headline contrast with quorum protocols whose cost grows with n.
"""

from repro.analysis import rounds_per_decided_instance
from repro.core import run_cha


def sweep():
    rows = []
    for n in (1, 3, 6, 12, 24):
        run = run_cha(n=n, instances=60)
        rows.append((n, 60, rounds_per_decided_instance(run, 0)))
    for instances in (20, 200, 800):
        run = run_cha(n=4, instances=instances)
        rows.append((4, instances, rounds_per_decided_instance(run, 0)))
    return rows


def test_e3_rounds_per_instance(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        ["n nodes", "instances", "rounds / decided instance"],
        rows,
        title="E3 / Theorem 14 — constant 3 rounds per agreement instance",
    )
    assert all(row[2] == 3.0 for row in rows)
