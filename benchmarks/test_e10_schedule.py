"""E10 — §4.1: schedule length vs deployment density.

Builds schedules for grids of increasing density, verifies completeness
and non-conflict, and reports the schedule length (= the density-
dependent part of the per-virtual-round overhead).  At fixed density,
growing the deployment must not grow the schedule materially.
"""

from repro.vi import build_schedule, verify_schedule
from repro.workloads import vn_grid


def sweep():
    by_density = []
    for spacing in (12.0, 8.0, 4.0, 2.0, 1.0):
        sites, _ = vn_grid(4, 4, spacing=spacing)
        schedule = build_schedule(sites, r1=1.0, r2=1.5)
        verify_schedule(schedule, sites, r1=1.0, r2=1.5)
        by_density.append((spacing, len(sites), schedule.length))
    by_size = []
    for rows_cols in (2, 4, 6, 8):
        sites, _ = vn_grid(rows_cols, rows_cols, spacing=3.0)
        schedule = build_schedule(sites, r1=1.0, r2=1.5)
        verify_schedule(schedule, sites, r1=1.0, r2=1.5)
        by_size.append((f"{rows_cols}x{rows_cols}", len(sites), schedule.length))
    return by_density, by_size


def test_e10_schedule(benchmark, report):
    by_density, by_size = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        ["grid spacing", "virtual nodes", "schedule length s"],
        by_density,
        title="E10a / §4.1 — schedule length vs density (4x4 grid)",
    )
    report(
        ["grid", "virtual nodes", "schedule length s"],
        by_size,
        title="E10b / §4.1 — schedule length vs deployment size (fixed density)",
    )
    lengths = [row[2] for row in by_density]
    assert lengths == sorted(lengths)      # denser -> longer
    assert lengths[-1] > lengths[0]
    sizes = [row[2] for row in by_size]
    assert max(sizes) <= min(sizes) + 2    # size barely matters at fixed density