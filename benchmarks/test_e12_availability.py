"""E12 — §4.2: virtual-node availability vs device density and speed.

Devices roam an arena under random-waypoint mobility; a virtual node at
the centre lives exactly while *someone* is in its region (joins keep it
alive, resets revive it after total abandonment).  The table reports
availability (fraction of live virtual rounds) and emulation gaps as
density and speed vary: the paper's progress condition — "a sufficient
number of correct nodes sufficiently close" — made quantitative.

Each configuration is one declarative scenario; availability and gap
counts come back as experiment metrics.
"""

from repro import scenario
from repro.geometry import Point
from repro.vi import SilentProgram, VNSite
from repro.workloads import roaming_devices

ARENA = (-0.7, -0.7, 0.7, 0.7)
VIRTUAL_ROUNDS = 40


def run_config(n_devices, speed, seed):
    result = (
        scenario()
        .sites([VNSite(0, Point(0.0, 0.0))])
        .program(0, SilentProgram())
        .replicas(roaming_devices(n_devices, arena=ARENA, speed=speed,
                                  seed=seed))
        .virtual_rounds(VIRTUAL_ROUNDS)
        .metrics("availability", "emulation_gaps")
        .run()
    )
    return result.metrics["availability"][0], result.metrics["emulation_gaps"][0]


def sweep():
    rows = []
    for n_devices in (3, 8, 16):
        for speed in (0.005, 0.02, 0.08):
            avail, gaps = run_config(n_devices, speed, seed=n_devices * 7 + 1)
            rows.append((n_devices, speed, avail, gaps))
    return rows


def test_e12_availability(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        ["devices", "speed (per round)", "availability", "gap rounds"],
        rows,
        title=f"E12 / §4.2 — virtual-node availability over "
              f"{VIRTUAL_ROUNDS} virtual rounds (roaming devices)",
    )
    by_density = {}
    for n_devices, speed, avail, gaps in rows:
        by_density.setdefault(n_devices, []).append(avail)
    means = {n: sum(v) / len(v) for n, v in by_density.items()}
    # Density helps availability (the paper's progress condition)...
    assert means[16] > means[3]
    assert means[16] > 0.5
    # ... and speed hurts it: slow worlds beat fast worlds at any density.
    by_speed = {}
    for _, speed, avail, _ in rows:
        by_speed.setdefault(speed, []).append(avail)
    speed_means = {s: sum(v) / len(v) for s, v in by_speed.items()}
    assert speed_means[0.005] > speed_means[0.08]
    # The metric is not vacuous: sparse/fast configurations do lose rounds.
    assert any(avail < 1.0 for _, _, avail, _ in rows)
