"""E9 — §3.5: checkpoint-CHA garbage collection bounds local state.

Plain CHAP's resident ballot/status entries grow linearly with the
execution; checkpoint-CHA's stay bounded while the execution is stable
(every green instance folds and collects) and grow only with the
distance to the last green instance during instability.
"""

from repro.contention import LeaderElectionCM
from repro.core import CheckpointCHAProcess, run_cha
from repro.detectors import EventuallyAccurateDetector
from repro.net import RandomLossAdversary


def checkpoint_factory(*, propose, cm_name):
    return CheckpointCHAProcess(
        propose=propose, cm_name=cm_name,
        reducer=lambda state, k, value: state + (value is not None),
        initial_state=0,
    )


def resident(run):
    return run.processes[0].core.resident_entries()


def sweep():
    rows = []
    for instances in (25, 100, 400):
        plain = run_cha(n=3, instances=instances)
        gc = run_cha(n=3, instances=instances,
                     process_factory=checkpoint_factory)
        rows.append(("stable", instances, resident(plain), resident(gc)))
    # Unstable prefix: greens are rare before stabilisation, so the GC'd
    # core temporarily holds more, then collapses after stabilising.
    stabilize = 300
    unstable = run_cha(
        n=3, instances=120,
        adversary=RandomLossAdversary(p_drop=0.5, p_false=0.3, seed=4),
        detector=EventuallyAccurateDetector(racc=stabilize),
        cm=LeaderElectionCM(stable_round=stabilize, chaos="random", seed=4),
        rcf=stabilize,
        process_factory=checkpoint_factory,
    )
    rows.append(("unstable->stable", 120, "-", resident(unstable)))
    return rows


def test_e9_space_gc(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        ["regime", "instances", "plain CHAP entries", "checkpoint-CHA entries"],
        rows,
        title="E9 / §3.5 — resident protocol state (ballot+status entries)",
    )
    stable = [row for row in rows if row[0] == "stable"]
    # Plain grows ~2 entries/instance; GC'd bounded by a small constant.
    assert stable[-1][2] > stable[0][2]
    assert all(row[3] <= 4 for row in stable)
    # Post-stabilisation, the unstable run has also collapsed.
    assert rows[-1][3] <= 4
