"""E6 — Theorem 12 (Liveness): convergence after stabilisation.

The environment stabilises (channel, detector accuracy, contention
manager) at a known instance; the table reports how many instances after
that point the ensemble needs before every node decides every instance —
the paper's claim is a small constant, independent of n.
"""

from repro.analysis import convergence_instance
from repro.contention import LeaderElectionCM
from repro.core import run_cha
from repro.detectors import EventuallyAccurateDetector
from repro.net import RandomLossAdversary

STABILIZE_INSTANCE = 15
STABILIZE_ROUND = STABILIZE_INSTANCE * 3


def sweep():
    rows = []
    for n in (2, 5, 10):
        for intensity, p_drop in (("moderate", 0.3), ("heavy", 0.6)):
            lags = []
            for seed in range(10):
                run = run_cha(
                    n=n, instances=STABILIZE_INSTANCE + 15,
                    adversary=RandomLossAdversary(
                        p_drop=p_drop, p_false=p_drop / 2, seed=seed,
                    ),
                    detector=EventuallyAccurateDetector(racc=STABILIZE_ROUND),
                    cm=LeaderElectionCM(stable_round=STABILIZE_ROUND,
                                        chaos="random", seed=seed),
                    rcf=STABILIZE_ROUND,
                )
                kst = convergence_instance(run)
                assert kst is not None, "never converged"
                lags.append(max(0, kst - (STABILIZE_INSTANCE + 1)))
            rows.append((n, intensity, max(lags), sum(lags) / len(lags)))
    return rows


def test_e6_liveness_convergence(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        ["n nodes", "adversary", "max lag (instances)", "mean lag"],
        rows,
        title="E6 / Theorem 12 — instances from stabilisation to full "
              "convergence (10 seeds each)",
    )
    # Convergence within one instance of stabilisation, regardless of n.
    assert all(row[2] <= 1 for row in rows)
