"""E1 — Figure 2: the collision-pattern -> colour -> output table.

Reproduces the paper's Figure 2 by injecting collisions into exactly one
phase combination per row (via scripted false-collision indications at a
single victim node) and reading back the victim's colour and output.

Each row is one declarative :class:`~repro.experiment.ExperimentSpec`:
the scripted adversary is the only thing that varies across rows.
"""

from repro import scenario
from repro.detectors import EventuallyAccurateDetector
from repro.net import ScriptedAdversary
from repro.types import BOTTOM

#: Figure 2 rows: (ballot ok, veto-1 ok, veto-2 ok) -> expected colour.
ROWS = [
    ((True, True, True), "GREEN", "history"),
    ((True, True, False), "YELLOW", "⊥"),
    ((True, False, False), "ORANGE", "⊥"),
    ((False, False, False), "RED", "⊥"),
]

VICTIM = 1  # a non-leader node experiences the collisions


def run_pattern(pattern):
    """One ensemble where instance 2 shows ``pattern`` at the victim."""
    ballot_ok, v1_ok, v2_ok = pattern
    # Instance 2 occupies rounds 3,4,5.
    script = []
    if not ballot_ok:
        script.append((3, VICTIM))
    if not v1_ok:
        script.append((4, VICTIM))
    if not v2_ok:
        script.append((5, VICTIM))
    result = (
        scenario()
        .nodes(3).instances(4)
        .cha()
        .adversary(ScriptedAdversary(false_script=script))
        .detector(EventuallyAccurateDetector(racc=100))
        .run()
    )
    run = result.cha_run
    color = run.colors_at(2)[VICTIM]
    output = dict(run.outputs[VICTIM])[2]
    return color, output, run


def test_e1_figure2_table(benchmark, report):
    results = benchmark.pedantic(
        lambda: [run_pattern(p) for p, _, _ in ROWS],
        rounds=1, iterations=1,
    )
    rows = []
    for (pattern, want_color, want_output), (color, output, run) in zip(ROWS, results):
        marks = "".join("✓" if ok else "X" for ok in pattern)
        out_text = "⊥" if output is BOTTOM else "history"
        rows.append([marks[0], marks[1], marks[2], color.name, out_text,
                     f"paper: {want_color}/{want_output}"])
        assert color.name == want_color
        assert out_text == ("history" if want_output == "history" else "⊥")
        if output is not BOTTOM:
            assert output.length == 2
    report(
        ["ballot", "veto-1", "veto-2", "colour", "output", "expected"],
        rows,
        title="E1 / Figure 2 — collision pattern vs replica colour and output",
    )
