"""Ablations A1-A3: the design choices DESIGN.md calls out.

A1 removes the veto-2 phase (back to a two-phase-commit shape) and shows
Agreement breaks on a concrete decide-and-die schedule that full CHAP
survives.  A2 weakens the collision detector to complete-but-never-
accurate and shows liveness stalls while safety holds (§5 open question
1).  A3 removes contention management (everyone always broadcasts) and
shows ballots never land — the decoupling argument of §1.1.
"""

from repro.baselines.two_phase_cha import run_two_phase
from repro.contention import LeaderElectionCM
from repro.core import check_agreement, check_validity, run_cha
from repro.detectors import CompleteOnlyDetector, EventuallyAccurateDetector
from repro.errors import SpecViolation
from repro.net import Crash, CrashPoint, CrashSchedule, ScriptedAdversary
from repro.types import BOTTOM


# ----------------------------------------------------------------------
# A1 — drop veto-2
# ----------------------------------------------------------------------

def a1_run():
    """The killer schedule: a spurious collision isolates one node's veto
    phase; the leader goes green, decides, and dies."""
    rows = []
    # Two-phase: instance 1 = rounds 0-1; false collision at node 1 in the
    # veto round; leader crashes before instance 2.
    violations_2p = 0
    try:
        run = run_two_phase(
            2, 4,
            adversary=ScriptedAdversary(false_script=[(1, 1)]),
            detector=EventuallyAccurateDetector(racc=100),
            crashes=CrashSchedule([Crash(0, 2, CrashPoint.BEFORE_SEND)]),
        )
        check_agreement(run.outputs)
    except SpecViolation:
        violations_2p += 1
    rows.append(("two-phase (no veto-2)", 2, violations_2p))

    violations_3p = 0
    try:
        run = run_cha(
            2, 4,
            adversary=ScriptedAdversary(false_script=[(1, 1)]),
            detector=EventuallyAccurateDetector(racc=100),
            crashes=CrashSchedule([Crash(0, 3, CrashPoint.BEFORE_SEND)]),
        )
        check_agreement(run.outputs)
    except SpecViolation:
        violations_3p += 1
    rows.append(("full CHAP (3 phases)", 3, violations_3p))
    return rows


def test_a1_two_phase_ablation(benchmark, report):
    rows = benchmark.pedantic(a1_run, rounds=1, iterations=1)
    report(
        ["protocol", "rounds/instance", "agreement violations"],
        rows,
        title="A1 — removing veto-2 breaks Agreement on a decide-and-die "
              "schedule",
    )
    assert rows[0][2] == 1   # the ablated protocol split history
    assert rows[1][2] == 0   # CHAP survives the identical schedule


# ----------------------------------------------------------------------
# A2 — weaker collision detector
# ----------------------------------------------------------------------

def a2_run():
    rows = []
    for name, detector in (
        ("eventually accurate (◇AC)", EventuallyAccurateDetector(racc=0)),
        ("complete-only, 30% false+", CompleteOnlyDetector(p_false=0.3, seed=1)),
        ("complete-only, 80% false+", CompleteOnlyDetector(p_false=0.8, seed=1)),
    ):
        run = run_cha(n=4, instances=60, detector=detector)
        check_validity(run.outputs, run.proposals)
        check_agreement(run.outputs)
        decided = sum(
            out is not BOTTOM for _, out in run.outputs[0]
        )
        rows.append((name, decided / 60, True))
    return rows


def test_a2_detector_ablation(benchmark, report):
    rows = benchmark.pedantic(a2_run, rounds=1, iterations=1)
    report(
        ["detector", "decided fraction", "safety held"],
        rows,
        title="A2 — persistent false positives starve liveness, never safety",
    )
    accurate, weak, weaker = rows
    assert accurate[1] == 1.0
    assert weak[1] < 0.8
    assert weaker[1] < weak[1]
    assert all(safety for _, _, safety in rows)


# ----------------------------------------------------------------------
# A3 — no contention management
# ----------------------------------------------------------------------

def a3_run():
    rows = []
    for name, cm in (
        ("leader election (Property 3)", LeaderElectionCM(stable_round=0)),
        ("none: all contenders broadcast",
         LeaderElectionCM(stable_round=10**9, chaos="all")),
    ):
        run = run_cha(n=5, instances=40, cm=cm)
        check_agreement(run.outputs)
        decided = sum(out is not BOTTOM for _, out in run.outputs[0])
        rows.append((name, decided / 40, True))
    return rows


def test_a3_contention_ablation(benchmark, report):
    rows = benchmark.pedantic(a3_run, rounds=1, iterations=1)
    report(
        ["contention manager", "decided fraction", "safety held"],
        rows,
        title="A3 — without contention management every ballot collides",
    )
    assert rows[0][1] == 1.0
    assert rows[1][1] == 0.0
    assert all(safety for _, _, safety in rows)
