"""E2 — Theorem 14 (message size): CHAP constant vs naive RSM linear.

Sweeps execution length and ensemble size; reports the maximum wire
message size.  CHAP must stay flat in both dimensions; the naive
full-history baseline must grow linearly with the execution.
"""

from repro.analysis import message_size_stats
from repro.baselines import NaiveRSMProcess
from repro.core import run_cha

LENGTHS = [10, 50, 200, 500]
SIZES_N = [2, 5, 10]


def sweep():
    by_length = []
    for instances in LENGTHS:
        chap = run_cha(n=4, instances=instances)
        naive = run_cha(n=4, instances=instances,
                        process_factory=NaiveRSMProcess)
        by_length.append((
            instances,
            message_size_stats(chap.trace).max,
            message_size_stats(naive.trace).max,
        ))
    by_n = []
    for n in SIZES_N:
        chap = run_cha(n=n, instances=50)
        by_n.append((n, message_size_stats(chap.trace).max))
    return by_length, by_n


def test_e2_message_size(benchmark, report):
    by_length, by_n = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report(
        ["instances", "CHAP max msg (B)", "naive RSM max msg (B)"],
        by_length,
        title="E2a / Theorem 14 — max message size vs execution length",
    )
    report(
        ["n nodes", "CHAP max msg (B)"],
        by_n,
        title="E2b / Theorem 14 — max message size vs ensemble size",
    )

    chap_sizes = [row[1] for row in by_length]
    naive_sizes = [row[2] for row in by_length]
    # CHAP flat; naive superlinear growth across the sweep.
    assert len(set(chap_sizes)) == 1
    assert naive_sizes[-1] > naive_sizes[0] * 20
    # CHAP flat in n too.
    assert len({row[1] for row in by_n}) == 1
