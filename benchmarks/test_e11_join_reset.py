"""E11 — §4.3: join latency, state-transfer cost, and reset correctness.

Measures (a) virtual rounds from entering a region to active replica-
hood, as a function of schedule length (joins only happen in scheduled
rounds, so latency scales with s); (b) the wire size of the join-ack
state snapshot (the open question 3 of §5: "reducing the cost of state
transfer"); (c) that resets happen exactly when the virtual node is
dead.
"""

from repro.geometry import Point
from repro.net import CrashSchedule, StaticMobility
from repro.net.messages import wire_size
from repro.vi import JoinAck, SilentProgram, VIWorld, VNSite
from repro.workloads import single_region


def join_latency(min_schedule_length):
    sites, devices = single_region(2)
    world = VIWorld(sites, {0: SilentProgram()},
                    min_schedule_length=min_schedule_length)
    for pos in devices:
        world.add_device(pos)
    start_vr = 2
    joiner = world.add_device(
        StaticMobility(Point(0.0, 0.05)),
        start_round=world.clock.rounds_for(start_vr),
        initially_active=False,
    )
    world.run_virtual_rounds(6 + 3 * min_schedule_length)
    events = dict()
    for vr, evt in world.devices[joiner].events:
        events.setdefault(evt.split(":")[0], vr)
    assert "active" in events, f"join never completed: {world.devices[joiner].events}"
    ack_sizes = [
        msg.size
        for rec in world.sim.trace
        for msg in rec.broadcasts.values()
        if isinstance(msg.payload, JoinAck)
    ]
    return events["active"] - start_vr, max(ack_sizes)


def reset_behaviour():
    rpv = 13
    rows = []
    for kill, expect_reset in ((True, True), (False, False)):
        crashes = CrashSchedule.of({0: 2 * rpv, 1: 2 * rpv}) if kill else None
        sites, devices = single_region(2)
        world = VIWorld(sites, {0: SilentProgram()}, crashes=crashes)
        for pos in devices:
            world.add_device(pos)
        joiner = world.add_device(
            StaticMobility(Point(0.0, 0.05)),
            start_round=world.clock.rounds_for(4),
            initially_active=False,
        )
        world.run_virtual_rounds(10)
        events = [evt for _, evt in world.devices[joiner].events]
        did_reset = "reset:0" in events
        rows.append((("dead VN" if kill else "live VN"), did_reset,
                     joiner in world.replicas_of(0)))
        assert did_reset == expect_reset
    return rows


def test_e11_join_reset(benchmark, report):
    latencies, resets = benchmark.pedantic(
        lambda: ([(s,) + join_latency(s) for s in (1, 2, 4, 8)],
                 reset_behaviour()),
        rounds=1, iterations=1,
    )
    report(
        ["schedule length s", "join latency (virtual rounds)",
         "join-ack snapshot size (B)"],
        latencies,
        title="E11a / §4.3 — join latency and state-transfer cost",
    )
    report(
        ["scenario", "reset performed", "joiner active afterwards"],
        resets,
        title="E11b / §4.3 — reset fires iff the virtual node is dead",
    )
    for s, latency, size in latencies:
        assert latency <= s + 2          # next scheduled round + handshake
        assert size < 400                # snapshot of a GC'd core is small
    assert all(active for _, _, active in resets)
