"""E8 — §1.5: CHAP vs a majority-quorum RSM on the same channel.

Fixed round budget; the table reports decided instances for CHAP (3
rounds each, independent of n) against the majority strawman (n + 2
rounds each, *with* free TDMA and ids).  The paper's qualitative claim —
quorum protocols pay Θ(n) channel time per decision — is the n-fold
throughput gap; a lossy channel widens it because one lost ack kills a
whole majority instance.
"""

from repro.analysis import decided_instances
from repro.baselines.majority_rsm import run_majority_rsm
from repro.core import run_cha
from repro.detectors import EventuallyAccurateDetector
from repro.net import RandomLossAdversary

BUDGET = 600  # real communication rounds


def sweep():
    rows = []
    for n in (3, 6, 12, 24):
        chap = run_cha(n=n, instances=BUDGET // 3)
        chap_decided = decided_instances(chap, 0)
        sim, procs = run_majority_rsm(n, rounds=BUDGET)
        follower = procs[1]
        rows.append((n, "clean", chap_decided, follower.decided_count))
        sim, procs = run_majority_rsm(
            n, rounds=BUDGET,
            adversary=RandomLossAdversary(p_drop=0.15, seed=n),
            detector=EventuallyAccurateDetector(racc=BUDGET),
            rcf=BUDGET,
        )
        rows.append((n, "lossy 15%", chap_decided, procs[1].decided_count))
    return rows


def test_e8_baseline_throughput(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        ["n nodes", "channel", "CHAP decided", "majority RSM decided"],
        rows,
        title=f"E8 / §1.5 — decided instances in {BUDGET} rounds",
    )
    for n, channel, chap_decided, majority_decided in rows:
        assert chap_decided == BUDGET // 3  # n-independent
        assert majority_decided <= BUDGET // (n + 2)
        if n >= 6:
            assert chap_decided > 2 * majority_decided
    # The lossy channel can only hurt the quorum protocol.
    clean = {n: m for n, ch, _, m in rows if ch == "clean"}
    lossy = {n: m for n, ch, _, m in rows if ch != "clean"}
    assert all(lossy[n] <= clean[n] for n in clean)
    assert any(lossy[n] < clean[n] for n in clean)
