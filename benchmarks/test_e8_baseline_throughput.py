"""E8 — §1.5: CHAP vs a majority-quorum RSM on the same channel.

Fixed round budget; the table reports decided instances for CHAP (3
rounds each, independent of n) against the majority strawman (n + 2
rounds each, *with* free TDMA and ids).  The paper's qualitative claim —
quorum protocols pay Θ(n) channel time per decision — is the n-fold
throughput gap; a lossy channel widens it because one lost ack kills a
whole majority instance.

All three protocol columns are grid sweeps over a single declarative
spec each (``repro.sweep``), varying only ``world__n`` (and, for the
lossy majority column, the seeded adversary).
"""

from repro import ClusterWorld, ExperimentSpec, sweep
from repro.experiment import CHA, MajorityRSM, MetricsSpec, WorkloadSpec
from repro.detectors import EventuallyAccurateDetector
from repro.net import RandomLossAdversary

BUDGET = 600  # real communication rounds
NS = (3, 6, 12, 24)


def _points_by_n(spec, *, overrides=None):
    grid = {"world__n": NS}
    if overrides:
        grid.update(overrides)
    return {point["world__n"]: point for point in sweep(spec, grid)}


def run_sweeps():
    chap_spec = ExperimentSpec(
        protocol=CHA(),
        world=ClusterWorld(n=3),
        workload=WorkloadSpec(instances=BUDGET // 3),
        metrics=MetricsSpec(metrics=("decided_instances",)),
    )
    majority_spec = ExperimentSpec(
        protocol=MajorityRSM(),
        world=ClusterWorld(n=3),
        workload=WorkloadSpec(rounds=BUDGET),
        metrics=MetricsSpec(metrics=("decided_instances",)),
    )
    chap = _points_by_n(chap_spec)
    clean = _points_by_n(majority_spec)
    lossy = {
        n: sweep(majority_spec.override(
            world__n=n,
            environment__adversary=RandomLossAdversary(p_drop=0.15, seed=n),
            environment__detector=EventuallyAccurateDetector(racc=BUDGET),
            world__rcf=BUDGET,
        ), {})[0]
        for n in NS
    }
    rows = []
    for n in NS:
        chap_decided = chap[n].metrics["decided_instances"][0]
        rows.append((n, "clean", chap_decided,
                     clean[n].metrics["decided_instances"][1]))
        rows.append((n, "lossy 15%", chap_decided,
                     lossy[n].metrics["decided_instances"][1]))
    return rows


def test_e8_baseline_throughput(benchmark, report):
    rows = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    report(
        ["n nodes", "channel", "CHAP decided", "majority RSM decided"],
        rows,
        title=f"E8 / §1.5 — decided instances in {BUDGET} rounds",
    )
    for n, channel, chap_decided, majority_decided in rows:
        assert chap_decided == BUDGET // 3  # n-independent
        assert majority_decided <= BUDGET // (n + 2)
        if n >= 6:
            assert chap_decided > 2 * majority_decided
    # The lossy channel can only hurt the quorum protocol.
    clean = {n: m for n, ch, _, m in rows if ch == "clean"}
    lossy = {n: m for n, ch, _, m in rows if ch != "clean"}
    assert all(lossy[n] <= clean[n] for n in clean)
    assert any(lossy[n] < clean[n] for n in clean)
