"""E5 — Theorem 10 (Agreement) + Theorem 13 (Validity): adversarial soak.

Runs a battery of seeded adversarial executions — message loss, false
collisions, chaotic contention, random crashes including decide-and-die —
and counts specification violations.  The paper proves zero; the table
also reports how often outputs were bottom, showing the checks bite on
genuinely turbulent executions rather than clean ones.
"""

from repro.analysis import check_all_invariants
from repro.contention import LeaderElectionCM
from repro.core import check_agreement, check_validity, run_cha
from repro.detectors import EventuallyAccurateDetector
from repro.errors import SpecViolation
from repro.net import RandomLossAdversary
from repro.types import BOTTOM
from repro.workloads import random_crash_schedule

SEEDS = 30


def soak():
    violations = 0
    bottoms = 0
    outputs_total = 0
    for seed in range(SEEDS):
        run = run_cha(
            n=5, instances=30,
            adversary=RandomLossAdversary(
                p_drop=0.35 + 0.02 * (seed % 5),
                p_false=0.25, seed=seed,
            ),
            detector=EventuallyAccurateDetector(racc=70),
            cm=LeaderElectionCM(stable_round=70, chaos="random", seed=seed),
            crashes=random_crash_schedule(
                5, fraction=0.4, horizon=60, seed=seed,
                spare=frozenset({4}),
            ),
            rcf=70,
        )
        try:
            check_validity(run.outputs, run.proposals)
            check_agreement(run.outputs)
            check_all_invariants(run)
        except SpecViolation:
            violations += 1
        for log in run.outputs.values():
            outputs_total += len(log)
            bottoms += sum(out is BOTTOM for _, out in log)
    return violations, bottoms, outputs_total


def test_e5_agreement_soak(benchmark, report):
    violations, bottoms, outputs_total = benchmark.pedantic(
        soak, rounds=1, iterations=1,
    )
    report(
        ["seeds", "spec violations", "⊥ outputs", "total outputs", "⊥ rate"],
        [[SEEDS, violations, bottoms, outputs_total,
          bottoms / outputs_total]],
        title="E5 / Theorems 10+13 — agreement & validity under adversity "
              "(crashes incl. decide-and-die)",
    )
    assert violations == 0
    assert bottoms > 0, "environment too benign to exercise disagreement"
