"""E4 — Property 4 / Lemma 5: colour divergence is at most one shade.

Soaks adversarial executions (random loss, false collisions, chaotic
contention) and histograms the per-instance maximum shade distance.
The paper's invariant: the histogram's support is contained in {0, 1};
a healthy reproduction also *hits* 1 (otherwise the check is vacuous).
"""

from repro.analysis import color_divergence_histogram
from repro.contention import LeaderElectionCM
from repro.core import run_cha
from repro.detectors import EventuallyAccurateDetector
from repro.net import RandomLossAdversary

SEEDS = 20
INSTANCES = 40


def soak():
    total: dict[int, int] = {}
    for seed in range(SEEDS):
        run = run_cha(
            n=5, instances=INSTANCES,
            adversary=RandomLossAdversary(p_drop=0.4, p_false=0.25, seed=seed),
            detector=EventuallyAccurateDetector(racc=90),
            cm=LeaderElectionCM(stable_round=90, chaos="random", seed=seed),
            rcf=90,
        )
        for spread, count in color_divergence_histogram(run).items():
            total[spread] = total.get(spread, 0) + count
    return total


def test_e4_color_divergence(benchmark, report):
    histogram = benchmark.pedantic(soak, rounds=1, iterations=1)
    rows = [
        (spread, histogram.get(spread, 0),
         "allowed" if spread <= 1 else "FORBIDDEN (Property 4)")
        for spread in range(4)
    ]
    report(
        ["shade distance", "instances", "verdict"],
        rows,
        title=f"E4 / Property 4 — colour divergence over {SEEDS} seeds x "
              f"{INSTANCES} adversarial instances",
    )
    assert set(histogram) <= {0, 1}
    assert histogram.get(1, 0) > 0, "divergence never exercised (vacuous)"
    assert sum(histogram.values()) == SEEDS * INSTANCES
