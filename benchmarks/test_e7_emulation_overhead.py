"""E7 — §1.4/§4: constant overhead per virtual round.

Two sweeps: (a) replicas per virtual node — the real-round cost of a
virtual round must not depend on it; (b) deployment density — the cost is
``s + 12`` where ``s`` is the schedule length, i.e. it "depends only on
the density of the virtual node deployment".  Both are *measured* from
executed worlds (real rounds consumed / virtual rounds completed), not
read off the configuration.
"""

from repro.vi import SilentProgram, VIWorld
from repro.workloads import single_region, vn_grid


def measure_world(sites, devices, virtual_rounds=5):
    world = VIWorld(sites, {s.vn_id: SilentProgram() for s in sites})
    for pos in devices:
        world.add_device(pos)
    world.run_virtual_rounds(virtual_rounds)
    real_rounds = len(world.sim.trace)
    for site in sites:
        assert world.availability(site.vn_id) == 1.0
    return world.schedule.length, real_rounds / virtual_rounds


def sweep():
    by_replicas = []
    for n in (1, 2, 4, 8, 16):
        sites, devices = single_region(n_replicas=n)
        s, cost = measure_world(sites, devices)
        by_replicas.append((n, s, cost))
    by_density = []
    for spacing in (12.0, 6.0, 3.0, 2.0):
        sites, devices = vn_grid(3, 3, spacing=spacing, replicas_per_vn=2)
        s, cost = measure_world(sites, devices)
        by_density.append((spacing, s, cost))
    return by_replicas, by_density


def test_e7_emulation_overhead(benchmark, report):
    by_replicas, by_density = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        ["replicas / VN", "schedule length s", "real rounds / virtual round"],
        by_replicas,
        title="E7a / §1.4 — virtual-round cost vs replica count (flat)",
    )
    report(
        ["grid spacing", "schedule length s", "real rounds / virtual round"],
        by_density,
        title="E7b / §4.1 — virtual-round cost vs deployment density (s+12)",
    )
    # Independent of replica count:
    assert len({row[2] for row in by_replicas}) == 1
    # Exactly s + 12, growing with density:
    for _, s, cost in by_density:
        assert cost == s + 12
    assert by_density[-1][1] > by_density[0][1]
