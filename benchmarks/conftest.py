"""Benchmark-suite plumbing.

Each experiment builds one table (the rows EXPERIMENTS.md records).
pytest captures stdout, so tables are accumulated here and re-emitted in
the terminal summary — visible in plain ``pytest benchmarks/
--benchmark-only`` runs and in the tee'd bench_output.txt.
"""

import pytest

from repro.analysis import render_table

_TABLES: list[str] = []


@pytest.fixture
def report():
    """``report(headers, rows, title=...)`` -> renders, records, returns."""

    def _report(headers, rows, *, title):
        text = render_table(headers, rows, title=title)
        _TABLES.append(text)
        print("\n" + text)
        return text

    return _report


def pytest_terminal_summary(terminalreporter):
    for text in _TABLES:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
