"""Cross-cutting randomised soak tests.

Every seeded configuration drives the whole stack — radio, detectors,
contention, CHAP — and checks the executable CHA specification plus the
glass-box lemma invariants.  These are the repository's last line of
defence: any interaction bug between layers shows up here first.
"""

import pytest

from repro.analysis import check_all_invariants
from repro.contention import ExponentialBackoffCM, LeaderElectionCM
from repro.core import check_agreement, check_validity, find_liveness_point, run_cha
from repro.detectors import EventuallyAccurateDetector
from repro.net import RandomLossAdversary
from repro.vi import CounterProgram, ScriptedClient, VIWorld
from repro.workloads import (
    random_crash_schedule,
    single_region,
    storm_adversary,
)


@pytest.mark.parametrize("seed", range(12))
def test_cha_storm_soak(seed):
    """CHAP through a seeded storm with crashes: safety + invariants."""
    run = run_cha(
        n=4 + seed % 3, instances=25,
        adversary=storm_adversary(intensity=0.3 + 0.05 * (seed % 5), seed=seed),
        detector=EventuallyAccurateDetector(racc=55),
        cm=LeaderElectionCM(stable_round=55, chaos="random", seed=seed),
        crashes=random_crash_schedule(
            4 + seed % 3, fraction=0.3, horizon=50, seed=seed,
            spare=frozenset({0}),
        ),
        rcf=55,
    )
    check_validity(run.outputs, run.proposals)
    check_agreement(run.outputs)
    check_all_invariants(run)


@pytest.mark.parametrize("seed", range(6))
def test_cha_with_realistic_backoff(seed):
    """A randomised exponential-backoff CM (no oracle) still yields a
    correct, eventually-live execution."""
    run = run_cha(
        n=5, instances=60,
        cm=ExponentialBackoffCM(seed=seed),
    )
    check_validity(run.outputs, run.proposals)
    check_agreement(run.outputs)
    kst = find_liveness_point(run.outputs)
    assert kst is not None, "backoff never converged to a leader"


@pytest.mark.parametrize("seed", range(4))
def test_emulation_storm_soak(seed):
    """The full virtual-node emulation under a lossy channel keeps every
    replica of the virtual node state-consistent."""
    sites, devices = single_region(4)
    world = VIWorld(
        sites, {0: CounterProgram()},
        adversary=RandomLossAdversary(p_drop=0.25, p_false=0.15, seed=seed),
        detector=EventuallyAccurateDetector(racc=60),
        rcf=60,
        cm_stable_round=60,
    )
    for pos in devices:
        world.add_device(pos)
    from repro.geometry import Point
    client = ScriptedClient({vr: ("add", 1) for vr in range(1, 18, 2)})
    world.add_device(Point(0.4, 0), client=client, initially_active=False)
    world.run_virtual_rounds(18)
    world.check_replica_consistency(0)
    # Post-stabilisation the node must be live.
    assert all(o.live for o in world.outcomes[0][8:])
