"""Cross-cutting randomised soak tests, driven by the fault explorer.

Every seeded fault plan drives the whole stack — radio, detectors,
contention, CHAP, checkpointing, baselines, the VI emulation — and
checks the executable CHA specification plus the glass-box lemma
invariants.  These are the repository's last line of defence: any
interaction bug between layers shows up here first.

Markers split the suite for CI:

* ``fast`` — one small exploration per plan family, run on every push.
* ``soak`` — the wide seed sweeps, run nightly (``pytest -m soak``).

When a *sound* protocol fails, the explorer case is shrunk to a minimal
configuration and — if ``REPRO_SOAK_ARTIFACT_DIR`` is set (the nightly
workflow sets it) — a pinned pytest reproducer is written there for the
CI run to upload.
"""

import os

import pytest

from repro.contention import ExponentialBackoffCM
from repro.core import check_agreement, check_validity, find_liveness_point, run_cha
from repro.faults import (
    CrashWave,
    DetectorNoise,
    MessageStorm,
    MobilityChurn,
    Partition,
    SenderSuppression,
    explore,
    plan,
    reproducer_source,
    shrink_case,
)

#: The plan families the explorer fans out.  Each stabilises (rcf/racc)
#: well before the run ends, so safety *and* recovery are exercised.
STORM = plan(MessageStorm(intensity=0.45, detector_noise=0.25, until=55),
             CrashWave(fraction=0.3, horizon=50))
SPLIT_BRAIN = plan(Partition(until=36),
                   DetectorNoise(p_false=0.35, until=45),
                   CrashWave(fraction=0.25, horizon=30,
                             after_send_fraction=0.5))
CENSORSHIP = plan(SenderSuppression(senders=(1,), until=30),
                  MessageStorm(intensity=0.3, until=42))

PLAN_FAMILIES = {"storm": STORM, "split-brain": SPLIT_BRAIN,
                 "censorship": CENSORSHIP}


def assert_no_unsound_failures(report):
    """Fail with a shrunk reproducer when a sound protocol broke."""
    failures = report.unsound_failures
    if not failures:
        return
    case = failures[0]
    shrunk = shrink_case(case)
    source = reproducer_source(shrunk)
    artifact_dir = os.environ.get("REPRO_SOAK_ARTIFACT_DIR")
    where = ""
    if artifact_dir:
        os.makedirs(artifact_dir, exist_ok=True)
        # Filename keyed by the failing configuration, so several
        # failures in one run each keep their own reproducer.
        name = (f"test_shrunk_repro_{case.protocol}"
                f"_seed{case.plan.seed}_{case.failure.invariant}.py")
        path = os.path.join(artifact_dir, name.replace("-", "_"))
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(source)
        where = f"\nreproducer written to {path}"
    pytest.fail(
        f"{report.summary()}\n\nshrunk reproducer:\n{source}{where}"
    )


# ----------------------------------------------------------------------
# fast — every push
# ----------------------------------------------------------------------

@pytest.mark.fast
@pytest.mark.parametrize("family", sorted(PLAN_FAMILIES), ids=str)
def test_fault_families_fast(family):
    """One narrow exploration per family: all sound cluster protocols."""
    report = explore([PLAN_FAMILIES[family]],
                     protocols=("cha", "checkpoint-cha", "naive-rsm"),
                     seeds=(0, 1), n=5)
    assert_no_unsound_failures(report)


@pytest.mark.fast
def test_emulation_under_storm_fast():
    report = explore([STORM], protocols=("vi",), seeds=(0,), n=5,
                     instances=12)
    assert_no_unsound_failures(report)


# ----------------------------------------------------------------------
# soak — nightly
# ----------------------------------------------------------------------

@pytest.mark.soak
@pytest.mark.parametrize("seed", range(12))
def test_cha_fault_soak(seed):
    """CHAP and checkpoint-CHA through every plan family, wide seeds."""
    report = explore(PLAN_FAMILIES.values(),
                     protocols=("cha", "checkpoint-cha"),
                     seeds=(seed,), n=4 + seed % 3)
    assert_no_unsound_failures(report)


@pytest.mark.soak
@pytest.mark.parametrize("seed", range(4))
def test_baseline_fault_soak(seed):
    """The naive full-history RSM holds the same spec under faults."""
    report = explore(PLAN_FAMILIES.values(), protocols=("naive-rsm",),
                     seeds=(seed,), n=5)
    assert_no_unsound_failures(report)


@pytest.mark.soak
@pytest.mark.parametrize("seed", range(4))
def test_emulation_fault_soak(seed):
    """The full virtual-node emulation stays replica-consistent under
    storms with roaming bystanders."""
    report = explore([STORM | MobilityChurn(count=2, speed=0.05)],
                     protocols=("vi",), seeds=(seed,), n=5, instances=16)
    assert_no_unsound_failures(report)


def _check_backoff_execution(seed):
    """A randomised exponential-backoff CM (no oracle) still yields a
    correct, eventually-live execution."""
    run = run_cha(
        n=5, instances=60,
        cm=ExponentialBackoffCM(seed=seed),
    )
    check_validity(run.outputs, run.proposals)
    check_agreement(run.outputs)
    kst = find_liveness_point(run.outputs)
    assert kst is not None, "backoff never converged to a leader"


@pytest.mark.fast
@pytest.mark.parametrize("seed", range(2))
def test_cha_with_realistic_backoff_fast(seed):
    # The fault plans all materialise a LeaderElectionCM, so this is
    # the per-push integration run of the oracle-free backoff CM.
    _check_backoff_execution(seed)


@pytest.mark.soak
@pytest.mark.parametrize("seed", range(2, 8))
def test_cha_with_realistic_backoff(seed):
    _check_backoff_execution(seed)
