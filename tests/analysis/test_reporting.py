"""Unit tests for the table renderer."""

import pytest

from repro.analysis import format_cell, print_table, render_table


class TestFormatCell:
    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_float_trims_zeros(self):
        assert format_cell(0.5) == "0.5"
        assert format_cell(2.0) == "2"

    def test_float_precision(self):
        assert format_cell(1 / 3) == "0.333"

    def test_infinity(self):
        assert format_cell(float("inf")) == "inf"

    def test_strings_and_ints(self):
        assert format_cell("x") == "x"
        assert format_cell(42) == "42"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bbbb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert lines[0] == "a    bbbb"
        assert lines[2].startswith("1  ")
        assert lines[3].startswith("333")

    def test_title(self):
        text = render_table(["h"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_separator_row(self):
        text = render_table(["col"], [["x"]])
        assert "---" in text.splitlines()[1]

    def test_print_table_returns_text(self, capsys):
        text = print_table(["n"], [[5]])
        captured = capsys.readouterr()
        assert "5" in captured.out
        assert "5" in text

    def test_empty_rows(self):
        text = render_table(["only", "headers"], [])
        assert len(text.splitlines()) == 2
