"""Unit tests for the measurement helpers."""

import pytest

from repro.analysis import (
    SizeStats,
    bottom_rate,
    color_divergence_histogram,
    convergence_instance,
    decided_instances,
    decision_throughput,
    green_fraction_by_window,
    message_size_stats,
    rounds_per_decided_instance,
)
from repro.contention import LeaderElectionCM
from repro.core import run_cha
from repro.detectors import EventuallyAccurateDetector
from repro.net import RandomLossAdversary


@pytest.fixture(scope="module")
def stable_run():
    return run_cha(n=4, instances=20)


@pytest.fixture(scope="module")
def unstable_run():
    return run_cha(
        n=4, instances=30,
        adversary=RandomLossAdversary(p_drop=0.4, p_false=0.25, seed=1),
        detector=EventuallyAccurateDetector(racc=45),
        cm=LeaderElectionCM(stable_round=45, chaos="random", seed=1),
        rcf=45,
    )


class TestSizeStats:
    def test_of_empty(self):
        assert SizeStats.of([]) == SizeStats(0, 0, 0.0)

    def test_of_values(self):
        stats = SizeStats.of([2, 4, 6])
        assert stats == SizeStats(3, 6, 4.0)

    def test_trace_window(self, stable_run):
        full = message_size_stats(stable_run.trace)
        head = message_size_stats(stable_run.trace, last_round=6)
        assert head.count < full.count
        assert head.max == full.max  # constant-size protocol

    def test_chap_sizes_constant(self, stable_run):
        stats = message_size_stats(stable_run.trace)
        # Ballot and veto payloads only: at most 2 distinct sizes.
        assert stats.max <= stats.mean * 2


class TestDecisionMetrics:
    def test_stable_run_decides_everything(self, stable_run):
        assert decided_instances(stable_run, 0) == 20
        assert bottom_rate(stable_run, 0) == 0.0

    def test_throughput_is_one_third(self, stable_run):
        assert decision_throughput(stable_run, 0) == pytest.approx(1 / 3)
        assert rounds_per_decided_instance(stable_run, 0) == pytest.approx(3.0)

    def test_unstable_run_has_bottoms(self, unstable_run):
        assert bottom_rate(unstable_run, 0) > 0.0
        assert rounds_per_decided_instance(unstable_run, 0) > 3.0

    def test_no_decisions_gives_infinite_cost(self, unstable_run):
        # Construct a node view with zero decisions by slicing: use a run
        # where everything is bottom early; simplest: check the guard.
        run = run_cha(
            n=3, instances=3,
            adversary=RandomLossAdversary(p_drop=1.0, seed=0),
            detector=EventuallyAccurateDetector(racc=100),
            cm=LeaderElectionCM(stable_round=100, chaos="none"),
            rcf=100,
        )
        assert rounds_per_decided_instance(run, 0) == float("inf")
        assert decision_throughput(run, 0) == 0.0


class TestColorHistogram:
    def test_stable_all_zero_divergence(self, stable_run):
        hist = color_divergence_histogram(stable_run)
        assert hist == {0: 20}

    def test_unstable_support_within_property4(self, unstable_run):
        hist = color_divergence_histogram(unstable_run)
        assert set(hist) <= {0, 1}
        assert sum(hist.values()) == 30


class TestConvergence:
    def test_stable_converges_at_one(self, stable_run):
        assert convergence_instance(stable_run) == 1

    def test_unstable_converges_after_stabilisation(self, unstable_run):
        kst = convergence_instance(unstable_run)
        assert kst is not None and 1 < kst <= 17

    def test_green_fraction_windows(self, unstable_run):
        fractions = green_fraction_by_window(unstable_run, window=10)
        assert len(fractions) == 3
        assert fractions[-1] == 1.0  # stabilised tail fully green
