"""Unit tests for the glass-box lemma checkers."""

import pytest

from repro.analysis import (
    check_all_invariants,
    check_lemma5,
    check_lemma6,
    check_lemma9,
    check_prev_pointer_discipline,
    check_property4,
)
from repro.contention import LeaderElectionCM
from repro.core import run_cha
from repro.detectors import EventuallyAccurateDetector
from repro.errors import SpecViolation
from repro.net import RandomLossAdversary
from repro.types import Color


@pytest.fixture(scope="module")
def runs():
    """A batch of adversarial executions for soak-checking."""
    out = []
    for seed in range(6):
        out.append(run_cha(
            n=5, instances=25,
            adversary=RandomLossAdversary(p_drop=0.4, p_false=0.25, seed=seed),
            detector=EventuallyAccurateDetector(racc=45),
            cm=LeaderElectionCM(stable_round=45, chaos="random", seed=seed),
            rcf=45,
        ))
    return out


class TestCheckersPassOnRealExecutions:
    def test_property4(self, runs):
        for run in runs:
            check_property4(run)

    def test_lemma5(self, runs):
        for run in runs:
            check_lemma5(run)

    def test_lemma6(self, runs):
        for run in runs:
            check_lemma6(run)

    def test_lemma9(self, runs):
        for run in runs:
            check_lemma9(run)

    def test_prev_pointer(self, runs):
        for run in runs:
            check_prev_pointer_discipline(run)

    def test_check_all(self, runs):
        check_all_invariants(runs[0])


class TestCheckersDetectViolations:
    """Corrupt a finished run's state and confirm each checker fires."""

    def make_run(self):
        return run_cha(n=3, instances=5)

    def test_property4_fires_on_two_shade_gap(self):
        run = self.make_run()
        run.processes[0].core.status[3] = Color.RED
        run.processes[1].core.status[3] = Color.YELLOW
        with pytest.raises(SpecViolation, match="Property 4"):
            check_property4(run)

    def test_lemma5_fires_on_green_orange_mix(self):
        run = self.make_run()
        run.processes[0].core.status[2] = Color.ORANGE
        with pytest.raises(SpecViolation, match="Lemma 5"):
            check_lemma5(run)

    def test_lemma6_fires_on_red_included_instance(self):
        run = self.make_run()
        # All histories include instance 2; painting it red at one node
        # (keeping others orange to appease Lemma 5's shape) must trip it.
        run.processes[0].core.status[2] = Color.RED
        with pytest.raises(SpecViolation, match="Lemma 6"):
            check_lemma6(run)

    def test_lemma9_fires_on_missing_green(self):
        run = self.make_run()
        # Forge an output that omits a green instance.
        from repro.core import History
        node = 0
        log = run.processes[node].core.outputs
        bad = History(5, {k: f"v0.{k:06d}" for k in (1, 2, 4, 5)})
        log.append((5, bad))
        with pytest.raises(SpecViolation, match="Lemma 9"):
            check_lemma9(run)

    def test_prev_pointer_fires_on_stale_pointer(self):
        run = self.make_run()
        run.processes[0].core.prev_instance = 1
        with pytest.raises(SpecViolation, match="prev-instance"):
            check_prev_pointer_discipline(run)


class TestCollectViolations:
    """The non-raising enumeration used for ad-hoc ChaRun debugging."""

    def make_run(self):
        return run_cha(n=3, instances=5)

    def test_clean_run_yields_nothing(self):
        from repro.analysis import collect_violations, first_violation

        run = self.make_run()
        assert collect_violations(run) == {}
        assert first_violation(run) is None

    def test_all_failures_reported_with_context(self):
        from repro.analysis import collect_violations, first_violation

        run = self.make_run()
        # One corruption tripping several checkers at once.
        run.processes[0].core.status[2] = Color.RED
        violations = collect_violations(run)
        assert {"lemma5", "lemma6"} <= set(violations)
        assert all(isinstance(v, SpecViolation) for v in violations.values())
        assert violations["lemma6"].context["instance"] == 2
        assert first_violation(run) is not None

    def test_registry_matches_check_all_invariants(self):
        from repro.analysis import GLASS_BOX_CHECKERS

        assert set(GLASS_BOX_CHECKERS) == {
            "property4", "lemma5", "lemma6", "lemma9", "prev_pointer",
        }
