"""Spec construction, validation, overrides, and the fluent builder."""

import pytest

from repro.errors import ConfigurationError
from repro.experiment import (
    CHA,
    ClusterWorld,
    DeployedWorld,
    EnvironmentSpec,
    ExperimentSpec,
    MajorityRSM,
    MetricsSpec,
    ThreePhaseCommit,
    VIEmulation,
    WorkloadSpec,
    scenario,
)
from repro.geometry import Point
from repro.net import RandomLossAdversary
from repro.vi import SilentProgram, VNSite


def cha_spec(n=3, instances=5, **kwargs):
    return ExperimentSpec(
        protocol=CHA(),
        world=ClusterWorld(n=n),
        workload=WorkloadSpec(instances=instances),
        **kwargs,
    )


class TestValidation:
    def test_valid_cluster_spec(self):
        cha_spec().validate()

    def test_cluster_protocol_needs_cluster_world(self):
        spec = ExperimentSpec(protocol=CHA(), world=None,
                              workload=WorkloadSpec(instances=5))
        with pytest.raises(ConfigurationError):
            spec.validate()

    def test_cluster_protocol_needs_workload(self):
        spec = ExperimentSpec(protocol=CHA(), world=ClusterWorld(n=3))
        with pytest.raises(ConfigurationError):
            spec.validate()

    def test_instances_and_rounds_mutually_exclusive(self):
        spec = ExperimentSpec(protocol=CHA(), world=ClusterWorld(n=3),
                              workload=WorkloadSpec(instances=5, rounds=60))
        with pytest.raises(ConfigurationError, match="mutually"):
            spec.validate()

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            cha_spec(n=0).validate()

    def test_three_phase_commit_is_off_channel(self):
        ExperimentSpec(protocol=ThreePhaseCommit(votes=(True,))).validate()
        with pytest.raises(ConfigurationError):
            ExperimentSpec(protocol=ThreePhaseCommit(votes=(True,)),
                           world=ClusterWorld(n=3)).validate()

    def test_emulation_needs_deployed_world(self):
        spec = ExperimentSpec(protocol=VIEmulation(programs={0: SilentProgram()}),
                              world=ClusterWorld(n=3),
                              workload=WorkloadSpec(virtual_rounds=2))
        with pytest.raises(ConfigurationError):
            spec.validate()

    def test_emulation_programs_must_match_sites(self):
        world = DeployedWorld(sites=(VNSite(0, Point(0, 0)),))
        spec = ExperimentSpec(
            protocol=VIEmulation(programs={1: SilentProgram()}),
            world=world, workload=WorkloadSpec(virtual_rounds=2),
        )
        with pytest.raises(ConfigurationError):
            spec.validate()

    def test_emulation_needs_virtual_rounds(self):
        world = DeployedWorld(sites=(VNSite(0, Point(0, 0)),))
        spec = ExperimentSpec(
            protocol=VIEmulation(programs={0: SilentProgram()}), world=world,
        )
        with pytest.raises(ConfigurationError):
            spec.validate()


class TestOverride:
    def test_override_top_level(self):
        spec = cha_spec().override(keep_trace=False)
        assert spec.keep_trace is False

    def test_override_nested(self):
        spec = cha_spec().override(world__n=9, workload__instances=2)
        assert spec.world.n == 9
        assert spec.workload.instances == 2

    def test_override_leaves_original_untouched(self):
        base = cha_spec()
        base.override(world__n=9)
        assert base.world.n == 3

    def test_override_environment_object(self):
        adv = RandomLossAdversary(p_drop=0.5, seed=1)
        spec = cha_spec().override(environment__adversary=adv)
        assert spec.environment.adversary is adv

    def test_override_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            cha_spec().override(world__bogus=1)


class TestBuilder:
    def test_cluster_chain(self):
        spec = (scenario().nodes(4).instances(7).cha()
                .radio(rcf=10)
                .metrics("decided_instances").invariants("agreement")
                .build())
        assert isinstance(spec.protocol, CHA)
        assert spec.world == ClusterWorld(n=4, rcf=10)
        assert spec.workload.instances == 7
        assert spec.metrics == MetricsSpec(metrics=("decided_instances",),
                                           invariants=("agreement",))

    def test_default_protocol_is_cha(self):
        spec = scenario().nodes(2).instances(1).build()
        assert isinstance(spec.protocol, CHA)

    def test_sites_imply_emulation(self):
        spec = (scenario().single_region(n_replicas=2)
                .program(0, SilentProgram())
                .virtual_rounds(3).build())
        assert isinstance(spec.protocol, VIEmulation)
        assert isinstance(spec.world, DeployedWorld)
        assert len(spec.world.devices) == 2

    def test_client_devices_join_by_default(self):
        from repro.vi import SilentClient

        spec = (scenario().single_region(n_replicas=1)
                .program(0, SilentProgram())
                .client(Point(0.3, 0.0), SilentClient(), name="watcher")
                .virtual_rounds(3).build())
        device = spec.world.devices[-1]
        assert device.client is not None
        assert device.initially_active is False
        assert device.name == "watcher"

    def test_duplicate_device_names_rejected(self):
        from repro.vi import SilentClient

        builder = (scenario().single_region(n_replicas=1)
                   .program(0, SilentProgram())
                   .client(Point(0.3, 0.0), SilentClient(), name="x")
                   .client(Point(0.0, 0.3), SilentClient(), name="x")
                   .virtual_rounds(3))
        with pytest.raises(ConfigurationError):
            builder.build()

    def test_cluster_protocol_without_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario().instances(5).majority_rsm().build()

    def test_liveness_by_arms_liveness_invariant(self):
        spec = scenario().nodes(2).instances(4).cha().liveness_by(1).build()
        assert spec.metrics.liveness_by == 1
        assert "liveness" in spec.metrics.invariants

    def test_majority_spec_roundtrip(self):
        spec = scenario().nodes(5).rounds(70).majority_rsm().build()
        assert isinstance(spec.protocol, MajorityRSM)
        assert spec.workload.rounds == 70

    def test_environment_accumulates(self):
        adv = RandomLossAdversary(p_drop=0.1, seed=3)
        spec = (scenario().nodes(2).instances(2).cha()
                .adversary(adv).build())
        assert spec.environment == EnvironmentSpec(adversary=adv)
