"""The resumable `ExperimentStepper` is the seam the live service
drives: stepped and one-shot executions must produce identical results
(traces, outputs, metrics, invariant verdicts) for every protocol
family, and the stepper's bookkeeping (tick accounting, idempotent
finish, rejection of post-finish stepping) must hold."""

from __future__ import annotations

import math
import pickle

import pytest

from repro import (
    CHA,
    ClusterWorld,
    ExperimentSpec,
    MajorityRSM,
    MetricsSpec,
    ThreePhaseCommit,
    VIEmulation,
    WorkloadSpec,
)
from repro.errors import ConfigurationError
from repro.experiment import DeployedWorld, DeviceSpec, ExperimentStepper, run
from repro.geometry import Point
from repro.net import RandomLossAdversary
from repro.vi.program import CounterProgram
from repro.vi.schedule import VNSite

pytestmark = pytest.mark.fast


def _cha_spec(**over) -> ExperimentSpec:
    spec = ExperimentSpec(
        protocol=CHA(),
        world=ClusterWorld(n=6, rcf=9),
        workload=WorkloadSpec(instances=10),
        metrics=MetricsSpec(
            metrics=("rounds", "total_broadcasts", "decided_instances"),
            invariants=("validity", "agreement"),
        ),
    )
    if over:
        spec = spec.override(**over)
    return spec


def _vi_spec() -> ExperimentSpec:
    sites = (VNSite(0, Point(0.0, 0.0)),)
    devices = tuple(
        DeviceSpec(mobility=Point(0.1 * math.cos(a), 0.1 * math.sin(a)))
        for a in (0.3, 1.7, 3.9)
    )
    return ExperimentSpec(
        protocol=VIEmulation(programs={0: CounterProgram()}),
        world=DeployedWorld(sites=sites, devices=devices),
        workload=WorkloadSpec(virtual_rounds=6),
        metrics=MetricsSpec(metrics=("rounds", "availability"),
                            invariants=("replica_consistency",)),
    )


def _observable(result) -> bytes:
    return pickle.dumps((result.trace, result.outputs, result.proposals,
                         result.metrics, result.invariants,
                         result.violation_context))


def _stepped(spec_factory, chunk: int) -> bytes:
    stepper = ExperimentStepper(spec_factory())
    while stepper.remaining:
        ran = stepper.step(chunk)
        assert ran == min(chunk, stepper.total_ticks) or ran <= chunk
    return _observable(stepper.finish())


@pytest.mark.parametrize("chunk", [1, 7])
def test_cha_stepped_equals_one_shot(chunk):
    one_shot = _observable(run(_cha_spec()))
    assert _stepped(_cha_spec, chunk) == one_shot


def test_cha_stepped_equals_one_shot_under_loss():
    def spec():
        return _cha_spec(
            world__rcf=12,
            environment__adversary=RandomLossAdversary(p_drop=0.2, seed=3),
        )
    assert _stepped(spec, 1) == _observable(run(spec()))


def test_majority_stepped_equals_one_shot():
    def spec():
        return ExperimentSpec(
            protocol=MajorityRSM(),
            world=ClusterWorld(n=5),
            workload=WorkloadSpec(rounds=30),
            metrics=MetricsSpec(metrics=("rounds", "decided_instances")),
        )
    assert _stepped(spec, 4) == _observable(run(spec()))


def test_emulation_stepped_equals_one_shot():
    assert _stepped(_vi_spec, 1) == _observable(run(_vi_spec()))
    assert _stepped(_vi_spec, 4) == _observable(run(_vi_spec()))


def test_three_phase_commit_goes_through_the_stepper():
    spec = ExperimentSpec(
        protocol=ThreePhaseCommit(votes=(True, True, True)),
        metrics=MetricsSpec(metrics=("decision",)),
    )
    stepper = ExperimentStepper(spec)
    assert stepper.total_ticks == 1 and stepper.simulator is None
    result = stepper.finish()
    assert result.metrics["decision"] == run(spec).metrics["decision"]


def test_tick_accounting_and_partial_finish():
    stepper = ExperimentStepper(_cha_spec())
    assert stepper.total_ticks == 30  # 10 instances x 3 rounds
    assert stepper.step(7) == 7
    assert stepper.ticks_run == 7 and stepper.remaining == 23
    assert stepper.simulator.current_round == 7
    # Over-asking clamps to the workload.
    assert stepper.step(1000) == 23
    assert stepper.remaining == 0 and stepper.step(5) == 0
    result = stepper.finish()
    assert result.invariants["agreement"] == "ok"
    # finish() is idempotent; stepping afterwards is a usage error.
    assert stepper.finish() is result
    with pytest.raises(ConfigurationError, match="already finished"):
        stepper.step(1)
    with pytest.raises(ConfigurationError, match="non-negative"):
        ExperimentStepper(_cha_spec()).step(-1)


def test_timings_present_on_stepped_runs():
    stepper = ExperimentStepper(_cha_spec())
    stepper.step(5)
    result = stepper.finish()
    assert result.timings["rounds"] == 30.0
    assert result.timings["wall_s"] > 0.0
    assert result.timings["rounds_per_sec"] > 0.0


def test_instrument_hook_fires_before_first_round():
    seen = []

    def instrument(sim):
        seen.append(sim.current_round)

    stepper = ExperimentStepper(_cha_spec(), instrument=instrument)
    assert seen == [0]
    stepper.finish()
    with pytest.raises(ConfigurationError, match="off-channel"):
        ExperimentStepper(
            ExperimentSpec(protocol=ThreePhaseCommit(votes=(True,))),
            instrument=instrument,
        )
