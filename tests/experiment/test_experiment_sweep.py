"""Grid expansion and the serial/parallel sweep equivalence guarantee."""

import pickle

import pytest

from repro import scenario, sweep
from repro.detectors import EventuallyAccurateDetector
from repro.errors import ConfigurationError
from repro.experiment import expand_grid
from repro.net import RandomLossAdversary


def seeded_spec():
    return (scenario().nodes(3).instances(8).cha()
            .adversary(RandomLossAdversary(p_drop=0.3, p_false=0.2, seed=42))
            .detector(EventuallyAccurateDetector(racc=12))
            .radio(rcf=12)
            .metrics("decided_instances", "max_message_size",
                     "total_broadcasts", "convergence_instance")
            .invariants("agreement", "validity")
            .build())


class TestExpandGrid:
    def test_empty_grid_is_one_point(self):
        assert expand_grid({}) == [{}]

    def test_row_major_order(self):
        grid = {"a": (1, 2), "b": (10, 20)}
        assert expand_grid(grid) == [
            {"a": 1, "b": 10}, {"a": 1, "b": 20},
            {"a": 2, "b": 10}, {"a": 2, "b": 20},
        ]

    def test_string_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            expand_grid({"a": "abc"})

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            expand_grid({"a": ()})


class TestSweep:
    GRID = {"world__n": (2, 3), "workload__instances": (4, 8)}

    def test_point_count_and_override_recording(self):
        points = sweep(seeded_spec(), self.GRID)
        assert len(points) == 4
        assert points[0].overrides == (("world__n", 2),
                                       ("workload__instances", 4))
        assert points[-1]["world__n"] == 3
        assert points[-1]["workload__instances"] == 8

    def test_parallel_metrics_byte_identical_to_serial(self):
        serial = sweep(seeded_spec(), self.GRID)
        parallel = sweep(seeded_spec(), self.GRID, workers=2)
        assert [pickle.dumps(p) for p in serial] \
            == [pickle.dumps(p) for p in parallel]

    def test_sweep_does_not_consume_the_base_spec(self):
        spec = seeded_spec()
        first = sweep(spec, self.GRID)
        second = sweep(spec, self.GRID)
        assert [pickle.dumps(p) for p in first] \
            == [pickle.dumps(p) for p in second]

    def test_metrics_vary_with_the_grid(self):
        points = sweep(seeded_spec(), self.GRID)
        by_overrides = {p.overrides: p.metrics for p in points}
        small = by_overrides[(("world__n", 2), ("workload__instances", 4))]
        large = by_overrides[(("world__n", 3), ("workload__instances", 8))]
        assert set(small["decided_instances"]) == {0, 1}
        assert set(large["decided_instances"]) == {0, 1, 2}

    def test_invariants_ride_along(self):
        points = sweep(seeded_spec(), {"world__n": (2,)})
        assert points[0].invariants == {"agreement": "ok", "validity": "ok"}

    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            sweep(seeded_spec(), self.GRID, workers=0)

    def test_missing_override_key_raises(self):
        points = sweep(seeded_spec(), {"world__n": (2,)})
        with pytest.raises(KeyError):
            points[0]["workload__instances"]

    def test_emulation_specs_sweep_too(self):
        from repro.vi import SilentProgram

        spec = (scenario().single_region(n_replicas=2)
                .program(0, SilentProgram())
                .virtual_rounds(2)
                .metrics("availability")
                .build())
        points = sweep(spec, {"workload__virtual_rounds": (2, 4)}, workers=2)
        assert [p.metrics["availability"] for p in points] == [{0: 1.0}, {0: 1.0}]


class TestSweepWithFaultPlan:
    """A FaultPlan on the spec materialises per point inside the worker,
    so fault-laden sweeps keep the serial/parallel byte-identity
    guarantee — and the plan's seed is just another grid axis."""

    def faulted_spec(self):
        from repro.faults import CrashWave, MessageStorm, plan

        return (scenario().nodes(5).instances(15).cha()
                .faults(plan(MessageStorm(intensity=0.4, until=24),
                             CrashWave(fraction=0.3, horizon=18)))
                .metrics("decided_instances", "total_broadcasts",
                         "collision_flags")
                .invariants("all")
                .build())

    GRID = {"faults__seed": (0, 1, 2, 3), "world__n": (4, 6)}

    def test_serial_and_parallel_byte_identical(self):
        serial = sweep(self.faulted_spec(), self.GRID)
        parallel = sweep(self.faulted_spec(), self.GRID, workers=3)
        assert [pickle.dumps(p) for p in serial] \
            == [pickle.dumps(p) for p in parallel]

    def test_plan_seed_is_a_grid_axis_that_matters(self):
        points = sweep(self.faulted_spec(), self.GRID, workers=2)
        assert len(points) == 8
        by_seed = {p["faults__seed"]: p.metrics["collision_flags"]
                   for p in points if p["world__n"] == 6}
        assert len({repr(flags) for flags in by_seed.values()}) > 1

    def test_invariants_hold_across_the_grid(self):
        for point in sweep(self.faulted_spec(), self.GRID, workers=2):
            assert all(v == "ok" for v in point.invariants.values()), point


class TestEngineSwitchSweep:
    """The batched engine under the worker pool: sweeping the engine
    switch itself must produce byte-identical points serially and in
    parallel, and both engine values must yield the same metrics."""

    GRID = {"use_reference_engine": (False, True),
            "workload__instances": (6, 10)}

    def test_serial_and_parallel_byte_identical(self):
        serial = sweep(seeded_spec(), self.GRID)
        parallel = sweep(seeded_spec(), self.GRID, workers=2)
        assert [pickle.dumps(p) for p in serial] \
            == [pickle.dumps(p) for p in parallel]

    def test_engines_agree_point_for_point(self):
        points = sweep(seeded_spec(), self.GRID, workers=2)
        by_engine = {}
        for point in points:
            key = point["workload__instances"]
            by_engine.setdefault(key, []).append(
                (point.metrics, point.invariants))
        for key, pairs in by_engine.items():
            assert pairs[0] == pairs[1], key


class TestStartMethods:
    """The byte-identity guarantee must hold under an *explicit* start
    method — fork inherits module state, spawn re-imports from scratch —
    not just whatever the platform defaults to."""

    GRID = {"world__n": (2, 3), "workload__instances": (4,)}

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_agreement_under_pinned_start_method(self, method):
        import multiprocessing

        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {method!r} unavailable")
        serial = sweep(seeded_spec(), self.GRID)
        parallel = sweep(seeded_spec(), self.GRID, workers=2,
                         start_method=method)
        assert [pickle.dumps(p) for p in serial] \
            == [pickle.dumps(p) for p in parallel]

    def test_default_context_is_explicitly_named(self):
        from repro.experiment.sweep import pool_context

        ctx = pool_context()
        assert ctx.get_start_method() in ("fork", "spawn")
        assert pool_context("spawn").get_start_method() == "spawn"

    def test_unknown_start_method_raises(self):
        from repro.experiment.sweep import pool_context

        with pytest.raises(ValueError):
            pool_context("telepathy")
