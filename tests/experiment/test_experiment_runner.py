"""One entrypoint, every protocol: the acceptance surface of repro.run."""

import pytest

import repro
from repro import run, scenario
from repro.core import ROUNDS_PER_INSTANCE
from repro.errors import ConfigurationError
from repro.experiment import (
    CHA,
    CheckpointCHA,
    ClusterWorld,
    ExperimentSpec,
    MetricsSpec,
    WorkloadSpec,
)
from repro.geometry import Point
from repro.net import CrashSchedule, RandomLossAdversary
from repro.types import BOTTOM


def count_reducer(state, k, value):
    return state + (0 if value is BOTTOM else 1)


class TestClusterProtocols:
    def test_plain_cha_matches_run_cha_shim(self):
        spec = ExperimentSpec(
            protocol=CHA(), world=ClusterWorld(n=4),
            workload=WorkloadSpec(instances=6),
        )
        result = run(spec)
        shim = repro.run_cha(n=4, instances=6)
        assert result.outputs == shim.outputs
        assert result.proposals == shim.proposals
        assert len(result.trace) == 6 * ROUNDS_PER_INSTANCE

    def test_explicit_node_ids(self):
        result = run(ExperimentSpec(protocol=CHA(), world=ClusterWorld(n=3),
                                    workload=WorkloadSpec(instances=2)))
        assert sorted(result.processes) == [0, 1, 2]
        assert result.simulator.node_ids == [0, 1, 2]

    def test_checkpoint_cha(self):
        result = (scenario().nodes(3).instances(9)
                  .checkpoint_cha(reducer=count_reducer, initial_state=0)
                  .metrics("resident_entries")
                  .invariants("all")
                  .run())
        result.assert_ok()
        # GC keeps resident state flat: entries don't grow with instances.
        assert all(v <= 4 for v in result.metrics["resident_entries"].values())
        checkpoint = result.processes[0].checkpoint
        assert checkpoint.checkpoint_state == checkpoint.checkpoint_instance

    def test_naive_rsm_messages_grow(self):
        result = (scenario().nodes(3).instances(12).naive_rsm()
                  .metrics("max_message_size")
                  .invariants("agreement", "validity")
                  .run())
        result.assert_ok()
        plain = (scenario().nodes(3).instances(12).cha()
                 .metrics("max_message_size").run())
        assert result.metrics["max_message_size"] > plain.metrics["max_message_size"]

    def test_two_phase_cha(self):
        result = (scenario().nodes(3).instances(8).two_phase_cha()
                  .metrics("decided_instances").run())
        assert result.metrics["decided_instances"][0] == 8
        assert len(result.trace) == 16  # 2 rounds per instance

    def test_majority_rsm(self):
        result = (scenario().nodes(4).rounds(60).majority_rsm()
                  .metrics("decided_instances").run())
        # 6 rounds per instance at n=4.
        assert result.metrics["decided_instances"][1] == 10
        assert result.cha_run is None

    def test_crashes_flow_through(self):
        result = (scenario().nodes(3).instances(5).cha()
                  .crashes(CrashSchedule.of({1: 4}))
                  .run())
        assert result.cha_run.surviving_nodes() == [0, 2]


class TestOffChannelAndEmulation:
    def test_three_phase_commit_commit_path(self):
        result = (scenario().three_phase_commit([True, True, True])
                  .metrics("decision", "state_spread").run())
        assert result.metrics["decision"] == "commit"
        assert result.metrics["state_spread"] == 0

    def test_three_phase_commit_abort_path(self):
        result = (scenario().three_phase_commit([True, False, True])
                  .metrics("decision").run())
        assert result.metrics["decision"] == "abort"

    def test_vi_emulation(self):
        from repro.vi import CounterProgram, ScriptedClient

        result = (scenario()
                  .single_region(n_replicas=3)
                  .program(0, CounterProgram())
                  .client(Point(0.4, 0.0),
                          ScriptedClient({1: ("add", 1), 3: ("add", 1)}),
                          name="writer")
                  .virtual_rounds(6)
                  .metrics("availability", "rounds_per_virtual_round")
                  .invariants("all")
                  .run())
        result.assert_ok()
        assert result.metrics["availability"] == {0: 1.0}
        assert result.metrics["rounds_per_virtual_round"] == \
            result.world.clock.rounds_per_virtual_round
        assert set(result.world.vn_states(0).values()) == {2}

    def test_vi_named_clients_are_live(self):
        from repro.vi import SilentClient, SilentProgram

        listener = SilentClient()
        result = (scenario().single_region(n_replicas=2)
                  .program(0, SilentProgram())
                  .client(Point(0.0, 0.4), SilentClient(), name="listener")
                  .virtual_rounds(4).run())
        assert len(result.client("listener").heard) == 4
        with pytest.raises(ConfigurationError):
            result.client("nobody")
        assert not listener.heard  # un-deployed instance untouched


class TestMetricsAndInvariants:
    def test_online_wire_metrics_match_trace(self):
        result = (scenario().nodes(4).instances(10).cha()
                  .adversary(RandomLossAdversary(p_drop=0.2, p_false=0.1, seed=5))
                  .metrics("max_message_size", "mean_message_size",
                           "total_broadcasts", "rounds")
                  .run())
        trace = result.trace
        assert result.metrics["max_message_size"] == trace.max_message_size()
        assert result.metrics["mean_message_size"] == pytest.approx(
            trace.mean_message_size())
        assert result.metrics["total_broadcasts"] == trace.total_broadcasts()
        assert result.metrics["rounds"] == len(trace)

    def test_keep_trace_false_still_produces_metrics(self):
        result = (scenario().nodes(3).instances(5).cha()
                  .metrics("total_broadcasts", "decided_instances")
                  .keep_trace(False)
                  .run())
        assert result.trace is None
        assert len(result.simulator.trace) == 0
        assert result.metrics["total_broadcasts"] > 0
        assert result.metrics["decided_instances"][0] == 5

    def test_unknown_metric_rejected(self):
        with pytest.raises(ConfigurationError, match="metric"):
            scenario().nodes(2).instances(2).cha().metrics("bogus").run()

    def test_metric_unavailable_for_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            (scenario().three_phase_commit([True])
             .metrics("decided_instances").run())

    def test_unknown_invariant_rejected(self):
        with pytest.raises(ConfigurationError, match="invariant"):
            scenario().nodes(2).instances(2).cha().invariants("bogus").run()

    def test_violated_invariant_is_a_verdict_not_an_exception(self):
        # liveness_by=0 is unsatisfiable: convergence instances start at 1.
        result = (scenario().nodes(2).instances(3).cha()
                  .liveness_by(0)
                  .run())
        assert result.invariants["liveness"].startswith("violated")
        assert not result.ok()
        with pytest.raises(AssertionError):
            result.assert_ok()

    def test_all_expands_per_protocol(self):
        result = (scenario().nodes(2).instances(3).cha()
                  .invariants("all").run())
        assert set(result.invariants) == {
            "agreement", "lemma5", "lemma6", "lemma9", "prev_pointer",
            "property4", "validity",
        }
        result.assert_ok()
