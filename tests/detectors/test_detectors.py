"""Unit tests for collision detectors (Properties 1 and 2)."""

import pytest

from repro.detectors import (
    CompleteOnlyDetector,
    EventuallyAccurateDetector,
    PerfectDetector,
)
from repro.errors import ConfigurationError
from repro.net.channel import Reception

QUIET = Reception(messages=(), lost_within_r1=False, lost_within_r2=False)
R1_LOSS = Reception(messages=(), lost_within_r1=True, lost_within_r2=True)
RING_LOSS = Reception(messages=(), lost_within_r1=False, lost_within_r2=True)


class TestEventuallyAccurate:
    def test_complete_on_r1_loss(self):
        d = EventuallyAccurateDetector(racc=100)
        assert d.indicate(0, 0, R1_LOSS, spurious=False)
        assert d.indicate(1_000, 0, R1_LOSS, spurious=False)

    def test_reports_ring_loss(self):
        d = EventuallyAccurateDetector(racc=0)
        assert d.indicate(0, 0, RING_LOSS, spurious=False)

    def test_spurious_honoured_before_racc(self):
        d = EventuallyAccurateDetector(racc=10)
        assert d.indicate(9, 0, QUIET, spurious=True)

    def test_spurious_suppressed_from_racc(self):
        d = EventuallyAccurateDetector(racc=10)
        assert not d.indicate(10, 0, QUIET, spurious=True)

    def test_quiet_round_no_report(self):
        d = EventuallyAccurateDetector(racc=0)
        assert not d.indicate(0, 0, QUIET, spurious=False)

    def test_negative_racc_rejected(self):
        with pytest.raises(ConfigurationError):
            EventuallyAccurateDetector(racc=-1)

    def test_property1_checker(self):
        d = EventuallyAccurateDetector()
        flag = d.indicate(0, 0, R1_LOSS, spurious=False)
        assert d.is_complete_for(R1_LOSS, flag)

    def test_property2_checker(self):
        d = EventuallyAccurateDetector(racc=0)
        for reception in (QUIET, RING_LOSS, R1_LOSS):
            flag = d.indicate(5, 0, reception, spurious=False)
            assert d.is_accurate_for(reception, flag)


class TestPerfect:
    def test_reports_exactly_r1_losses(self):
        d = PerfectDetector()
        assert d.indicate(0, 0, R1_LOSS, spurious=True)
        assert not d.indicate(0, 0, RING_LOSS, spurious=True)
        assert not d.indicate(0, 0, QUIET, spurious=True)

    def test_always_accurate_and_complete(self):
        d = PerfectDetector()
        for reception in (QUIET, RING_LOSS, R1_LOSS):
            flag = d.indicate(0, 0, reception, spurious=False)
            assert d.is_complete_for(reception, flag)
            assert d.is_accurate_for(reception, flag)


class TestCompleteOnly:
    def test_complete(self):
        d = CompleteOnlyDetector(p_false=0.0)
        assert d.indicate(0, 0, R1_LOSS, spurious=False)

    def test_false_positives_never_cease(self):
        d = CompleteOnlyDetector(p_false=1.0)
        # Accurate detectors must eventually stop false-reporting; this one
        # reports on quiet rounds forever.
        assert all(d.indicate(r, 0, QUIET, spurious=False) for r in range(1000))

    def test_deterministic_per_round_and_node(self):
        a = CompleteOnlyDetector(p_false=0.5, seed=7)
        b = CompleteOnlyDetector(p_false=0.5, seed=7)
        flags_a = [a.indicate(r, n, QUIET, False) for r in range(50) for n in range(3)]
        flags_b = [b.indicate(r, n, QUIET, False) for r in range(50) for n in range(3)]
        assert flags_a == flags_b

    def test_rate_roughly_respected(self):
        d = CompleteOnlyDetector(p_false=0.3, seed=1)
        hits = sum(d.indicate(r, 0, QUIET, False) for r in range(2000))
        assert 450 < hits < 750

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            CompleteOnlyDetector(p_false=2.0)
