"""Tests for the majority-quorum RSM strawman."""

import pytest

from repro.baselines import MajorityRSMProcess
from repro.baselines.majority_rsm import run_majority_rsm
from repro.net import RandomLossAdversary


class TestMajorityRSM:
    def test_rounds_per_instance_is_n_plus_2(self):
        proc = MajorityRSMProcess(my_index=0, n=7, is_leader=True,
                                  propose=lambda k: k)
        assert proc.rounds_per_instance == 9

    def test_clean_channel_decides_every_instance(self):
        sim, procs = run_majority_rsm(4, rounds=6 * 10)
        for proc in procs.values():
            if not proc.is_leader:
                assert proc.decided_count == 10

    def test_decisions_agree_across_nodes(self):
        sim, procs = run_majority_rsm(5, rounds=7 * 8)
        decisions = {tuple(p.decided) for p in procs.values() if not p.is_leader}
        assert len(decisions) == 1

    def test_leader_value_decided(self):
        sim, procs = run_majority_rsm(3, rounds=5 * 4)
        follower = procs[1]
        assert follower.decided[0] == (1, "m0.000001")

    def test_throughput_degrades_with_n(self):
        # Same round budget: larger ensembles decide fewer instances.
        budget = 300
        small = run_majority_rsm(3, rounds=budget)[1][1].decided_count
        large = run_majority_rsm(13, rounds=budget)[1][1].decided_count
        assert small == budget // 5
        assert large == budget // 15
        assert small > 2 * large

    def test_lost_acks_abort_instances(self):
        sim, procs = run_majority_rsm(
            5, rounds=7 * 30,
            adversary=RandomLossAdversary(p_drop=0.3, seed=2),
            rcf=7 * 30,  # adversary active throughout
        )
        decided = procs[1].decided_count
        assert decided < 30  # some instances lost their quorum or commit

    def test_no_false_decisions_under_loss(self):
        sim, procs = run_majority_rsm(
            4, rounds=6 * 20,
            adversary=RandomLossAdversary(p_drop=0.5, seed=7),
            rcf=6 * 20,
        )
        # Whatever was decided agrees with the leader's proposals.
        for p in procs.values():
            for k, v in p.decided:
                assert v == f"m0.{k:06d}"

    def test_invalid_index_rejected(self):
        with pytest.raises(ValueError):
            MajorityRSMProcess(my_index=5, n=3, is_leader=False,
                               propose=lambda k: k)
