"""Tests for the naive full-history RSM baseline."""

from repro.baselines import NaiveBallotPayload, NaiveRSMProcess
from repro.contention import LeaderElectionCM
from repro.core import check_all, run_cha
from repro.detectors import EventuallyAccurateDetector
from repro.net import RandomLossAdversary
from repro.net.messages import wire_size


class TestNaiveRSM:
    def test_satisfies_cha_spec(self):
        run = run_cha(n=4, instances=20, process_factory=NaiveRSMProcess)
        assert check_all(run.outputs, run.proposals, liveness_by=1) == 1

    def test_outputs_identical_to_chap(self):
        chap = run_cha(n=3, instances=15)
        naive = run_cha(n=3, instances=15, process_factory=NaiveRSMProcess)
        for node in chap.processes:
            assert chap.outputs[node] == naive.outputs[node]

    def test_message_size_grows_linearly(self):
        run = run_cha(n=3, instances=60, process_factory=NaiveRSMProcess)
        ballots = [
            msg for _, msg in run.trace.broadcasts_by(0)
            if isinstance(msg.payload, NaiveBallotPayload)
        ]
        first, last = ballots[0].size, ballots[-1].size
        assert last > first + 50 * 8  # ~8+ bytes per decided entry

    def test_chap_flat_where_naive_grows(self):
        naive = run_cha(n=3, instances=50, process_factory=NaiveRSMProcess)
        chap = run_cha(n=3, instances=50)
        assert naive.trace.max_message_size() > 10 * chap.trace.max_message_size()

    def test_history_entries_match_decided_history(self):
        run = run_cha(n=3, instances=10, process_factory=NaiveRSMProcess)
        last_ballot = [
            msg.payload for _, msg in run.trace.broadcasts_by(0)
            if isinstance(msg.payload, NaiveBallotPayload)
        ][-1]
        # The embedded history is the proposer's view before instance 10:
        # instances 1..9 decided.
        assert [k for k, _ in last_ballot.history_entries] == list(range(1, 10))

    def test_safety_under_adversity(self):
        run = run_cha(
            n=4, instances=30, process_factory=NaiveRSMProcess,
            adversary=RandomLossAdversary(p_drop=0.4, p_false=0.2, seed=3),
            detector=EventuallyAccurateDetector(racc=60),
            cm=LeaderElectionCM(stable_round=60, chaos="random", seed=3),
            rcf=60,
        )
        check_all(run.outputs, run.proposals)

    def test_payload_is_ballot_payload_subtype(self):
        p = NaiveBallotPayload(tag="t", instance=1, ballot=None,
                               history_entries=((1, "a"),))
        from repro.core.ballot import BallotPayload
        assert isinstance(p, BallotPayload)
        assert wire_size(p.history_entries) > 0
