"""Tests for the reference three-phase-commit implementation."""

from repro.baselines import (
    Decision,
    Participant,
    ParticipantState,
    ThreePhaseCommit,
    state_spread,
)


def cohort(n, no_voters=()):
    return [Participant(pid=i, vote_yes=i not in no_voters) for i in range(n)]


class TestHappyPath:
    def test_all_yes_commits(self):
        tpc = ThreePhaseCommit(cohort(4))
        assert tpc.run() is Decision.COMMIT
        assert all(p.decision() is Decision.COMMIT for p in tpc.participants)

    def test_single_no_vote_aborts(self):
        tpc = ThreePhaseCommit(cohort(4, no_voters={2}))
        assert tpc.run() is Decision.ABORT
        assert all(p.decision() is Decision.ABORT for p in tpc.participants)

    def test_unreachable_participant_counts_as_no(self):
        tpc = ThreePhaseCommit(cohort(3), lossy=frozenset({1}))
        assert tpc.run() is Decision.ABORT


class TestCoordinatorCrash:
    def test_crash_after_votes_aborts_via_termination(self):
        # Nobody reached PRECOMMITTED: survivors must abort.
        tpc = ThreePhaseCommit(cohort(3), crash_coordinator_after="votes")
        assert tpc.run() is Decision.ABORT

    def test_crash_after_precommit_commits_via_termination(self):
        # Everyone pre-committed: commit is the only safe outcome.
        tpc = ThreePhaseCommit(cohort(3), crash_coordinator_after="precommit")
        assert tpc.run() is Decision.COMMIT
        assert all(p.decision() is Decision.COMMIT for p in tpc.participants)

    def test_termination_decision_uniform(self):
        tpc = ThreePhaseCommit(cohort(5), crash_coordinator_after="precommit")
        tpc.run()
        decisions = {p.decision() for p in tpc.participants if not p.crashed}
        assert len(decisions) == 1


class TestStateSpread:
    """3PC's stage-distance bound, the analogue of Property 4."""

    def test_fresh_cohort_spread_zero(self):
        assert state_spread(cohort(3)) == 0

    def test_mixed_waiting_precommitted_spread_one(self):
        ps = cohort(2)
        ps[0].state = ParticipantState.WAITING
        ps[1].state = ParticipantState.PRECOMMITTED
        assert state_spread(ps) == 1

    def test_crashed_participants_excluded(self):
        ps = cohort(3)
        ps[0].state = ParticipantState.COMMITTED
        ps[1].state = ParticipantState.COMMITTED
        ps[2].crashed = True
        assert state_spread(ps) == 0

    def test_spread_never_exceeds_one_during_protocol(self):
        # Instrument a run by checking after completion: all participants
        # end in the same state (spread 0), and the termination protocol
        # relies on the spread <= 1 invariant to be safe.
        for crash_at in (None, "votes", "precommit"):
            tpc = ThreePhaseCommit(cohort(4), crash_coordinator_after=crash_at)
            tpc.run()
            assert state_spread(tpc.participants) <= 1


class TestLog:
    def test_phases_logged(self):
        tpc = ThreePhaseCommit(cohort(2))
        tpc.run()
        assert tpc.log[0].startswith("phase1")
        assert any(entry.startswith("phase3") for entry in tpc.log)
