"""Shared pytest configuration.

Pins a hypothesis profile with no per-example deadline: several property
tests drive whole protocol executions, whose first (cold-import) example
can exceed the default 200 ms deadline and trip a spurious health check.

Also registers ``--update-golden``: the golden-trace regression suite
(``tests/golden/``) normally asserts byte equality against committed
canonical dumps; with the flag it rewrites them instead (use after an
*intentional* trace-affecting change, and review the diff).
"""

from hypothesis import HealthCheck, settings


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the committed golden traces instead of comparing",
    )

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
