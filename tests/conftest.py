"""Shared pytest configuration.

Pins a hypothesis profile with no per-example deadline: several property
tests drive whole protocol executions, whose first (cold-import) example
can exceed the default 200 ms deadline and trip a spurious health check.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
