"""Tests for the atomic register over a virtual node."""

import pytest

from repro.apps import ReaderClient, RegisterProgram, WriterClient
from repro.geometry import Point
from repro.net import CrashSchedule
from repro.vi import VIWorld, VNSite
from repro.workloads import single_region


def register_world(**kwargs):
    sites, devices = single_region(3)
    world = VIWorld(sites, {0: RegisterProgram()}, **kwargs)
    for pos in devices:
        world.add_device(pos)
    return world


class TestRegisterProgram:
    def test_initial_state_silent(self):
        p = RegisterProgram()
        assert p.emit(p.init_state(), 0) is None

    def test_write_adopted(self):
        from repro.vi import VirtualObservation
        p = RegisterProgram()
        s = p.step(p.init_state(), 0,
                   VirtualObservation((("cl", ("write", 1, "a")),), False))
        assert s == (1, "a")
        assert p.emit(s, 1) == ("reg", 1, "a")

    def test_last_writer_wins_by_seq(self):
        from repro.vi import VirtualObservation
        p = RegisterProgram()
        s = p.step((5, "old"), 0,
                   VirtualObservation((("cl", ("write", 3, "stale")),), False))
        assert s == (5, "old")

    def test_tie_breaks_deterministically(self):
        from repro.vi import VirtualObservation
        p = RegisterProgram()
        obs = VirtualObservation(
            (("cl", ("write", 2, "a")), ("cl", ("write", 2, "b"))), False,
        )
        assert p.step(p.init_state(), 0, obs) == (2, "b")


class TestEndToEnd:
    def test_write_then_read(self):
        world = register_world()
        writer = WriterClient({1: "hello"})
        reader = ReaderClient()
        world.add_device(Point(0.4, 0), client=writer, initially_active=False)
        world.add_device(Point(0, 0.4), client=reader, initially_active=False)
        world.run_virtual_rounds(6)
        assert reader.reads, "reader saw no register broadcasts"
        assert reader.reads[-1][2] == "hello"

    def test_reader_sees_monotone_sequence(self):
        world = register_world()
        writer = WriterClient({1: "v1", 3: "v2", 5: "v3"})
        reader = ReaderClient()
        world.add_device(Point(0.4, 0), client=writer, initially_active=False)
        world.add_device(Point(0, 0.4), client=reader, initially_active=False)
        world.run_virtual_rounds(10)
        seqs = reader.observed_sequence()
        assert seqs == sorted(seqs), "register went backwards"
        assert seqs[-1] == 3

    def test_register_survives_replica_crash(self):
        world = register_world(crashes=CrashSchedule.of({0: 30}))
        writer = WriterClient({1: "persist"})
        reader = ReaderClient()
        world.add_device(Point(0.4, 0), client=writer, initially_active=False)
        world.add_device(Point(0, 0.4), client=reader, initially_active=False)
        world.run_virtual_rounds(10)
        late_reads = [v for vr, _, v in reader.reads if vr > 4]
        assert late_reads and set(late_reads) == {"persist"}

    def test_two_writers_register_stays_coherent(self):
        world = register_world()
        a = WriterClient({1: "from-a"}, base_seq=1)
        b = WriterClient({3: "from-b"}, base_seq=10)
        reader = ReaderClient()
        world.add_device(Point(0.4, 0), client=a, initially_active=False)
        world.add_device(Point(-0.4, 0), client=b, initially_active=False)
        world.add_device(Point(0, 0.4), client=reader, initially_active=False)
        world.run_virtual_rounds(8)
        assert reader.reads[-1][2] == "from-b"  # higher sequence number
        world.check_replica_consistency(0)
