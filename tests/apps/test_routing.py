"""Tests for virtual-node overlay routing."""

import pytest

from repro.apps import (
    DeliveringMailboxProgram,
    ReceiverClient,
    SenderClient,
    build_routing_programs,
    overlay_graph,
)
from repro.geometry import Point
from repro.vi import VIWorld, VNSite, VirtualObservation
from repro.workloads import vn_line


class TestOverlayGraph:
    def test_adjacent_sites_linked(self):
        sites, _ = vn_line(3, spacing=0.5)
        g = overlay_graph(sites, virtual_range=0.5)
        assert g.has_edge(0, 1) and g.has_edge(1, 2)
        assert not g.has_edge(0, 2)

    def test_next_hop_tables_point_along_shortest_paths(self):
        sites, _ = vn_line(4, spacing=0.5)
        programs = build_routing_programs(sites, virtual_range=0.5)
        assert programs[0].next_hop[3] == 1
        assert programs[1].next_hop[3] == 2
        assert programs[2].next_hop[0] == 1

    def test_unreachable_destinations_absent(self):
        sites = [VNSite(0, Point(0, 0)), VNSite(1, Point(100, 0))]
        programs = build_routing_programs(sites, virtual_range=0.5)
        assert programs[0].next_hop == {}


class TestDeliveringMailbox:
    def test_arrival_announced_then_dropped(self):
        p = DeliveringMailboxProgram(0, next_hop={})
        s = p.step(p.init_state(), 0,
                   VirtualObservation((("cl", ("send", 0, 0, "hi")),), False))
        assert p.emit(s, 1) == ("deliver", 0, "hi")
        s = p.step(s, 1, VirtualObservation((), False))
        assert p.emit(s, 2) is None

    def test_delivery_takes_priority_over_relay(self):
        p = DeliveringMailboxProgram(0, next_hop={9: 1})
        obs = VirtualObservation(
            (("cl", ("send", 0, 0, "local")), ("cl", ("send", 0, 9, "remote"))),
            False,
        )
        s = p.step(p.init_state(), 0, obs)
        assert p.emit(s, 1)[0] == "deliver"
        s = p.step(s, 1, VirtualObservation((), False))
        assert p.emit(s, 2) == ("relay", 1, 9, "remote")


class TestEndToEndRouting:
    def make_world(self, hops=3):
        sites, devices = vn_line(hops, spacing=0.5, replicas_per_vn=2)
        world = VIWorld(sites, build_routing_programs(sites, virtual_range=0.5))
        for pos in devices:
            world.add_device(pos)
        return world, sites

    def test_packet_crosses_overlay(self):
        world, sites = self.make_world(3)
        sender = SenderClient(0, {1: (2, "payload")})
        receiver = ReceiverClient()
        world.add_device(Point(0.0, 0.4), client=sender, initially_active=False)
        world.add_device(Point(1.0, 0.4), client=receiver, initially_active=False)
        world.run_virtual_rounds(30)
        bodies = [body for _, vn, body in receiver.received if vn == 2]
        assert "payload" in bodies

    def test_local_delivery_single_hop(self):
        world, _ = self.make_world(2)
        sender = SenderClient(0, {1: (0, "near")})
        receiver = ReceiverClient()
        world.add_device(Point(0.0, 0.4), client=sender, initially_active=False)
        world.add_device(Point(0.0, -0.4), client=receiver, initially_active=False)
        world.run_virtual_rounds(12)
        assert any(body == "near" for _, _, body in receiver.received)

    def test_replicas_stay_consistent_while_routing(self):
        world, sites = self.make_world(3)
        sender = SenderClient(0, {1: (2, "a"), 4: (2, "b")})
        world.add_device(Point(0.0, 0.4), client=sender, initially_active=False)
        world.run_virtual_rounds(24)
        for site in sites:
            world.check_replica_consistency(site.vn_id)
