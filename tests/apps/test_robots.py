"""Tests for virtual-node-coordinated robots."""

import math

import pytest

from repro.apps import (
    CoordinatorProgram,
    RobotClient,
    circle_formation,
    from_fixed,
    to_fixed,
)
from repro.geometry import Point
from repro.vi import VIWorld, VirtualObservation
from repro.workloads import single_region


class TestFixedPoint:
    def test_roundtrip(self):
        assert from_fixed(to_fixed(1.23)) == pytest.approx(1.23)

    def test_circle_formation_radius(self):
        targets = circle_formation(4, radius=2.0)
        for tx, ty in targets:
            assert math.hypot(from_fixed(tx), from_fixed(ty)) == pytest.approx(2.0, abs=0.02)

    def test_circle_formation_distinct(self):
        assert len(set(circle_formation(6, radius=1.0))) == 6


class TestCoordinatorProgram:
    def test_assigns_slots_in_arrival_order(self):
        p = CoordinatorProgram()
        s = p.step(p.init_state(), 0, VirtualObservation(
            (("cl", ("pos", "r1", 0, 0)),), False))
        s = p.step(s, 1, VirtualObservation(
            (("cl", ("pos", "r2", 5, 5)),), False))
        assert dict(s) == {"r1": 0, "r2": 1}

    def test_capacity_respected(self):
        p = CoordinatorProgram(capacity=1)
        s = p.step(p.init_state(), 0, VirtualObservation(
            (("cl", ("pos", "a", 0, 0)), ("cl", ("pos", "b", 0, 0))), False))
        assert len(s) == 1

    def test_emit_cycles_through_robots(self):
        p = CoordinatorProgram(radius=1.0)
        state = (("a", 0), ("b", 1))
        first = p.emit(state, 0)
        second = p.emit(state, 1)
        assert first[1] != second[1]
        assert {first[1], second[1]} == {"a", "b"}

    def test_silent_with_no_robots(self):
        p = CoordinatorProgram()
        assert p.emit((), 3) is None


class TestRobotClient:
    def test_moves_toward_target(self):
        r = RobotClient("r", start=(0.0, 0.0), step_length=0.5)
        r.target = (2.0, 0.0)
        r._advance()
        assert r.x == pytest.approx(0.5)

    def test_does_not_overshoot(self):
        r = RobotClient("r", start=(0.0, 0.0), step_length=5.0)
        r.target = (1.0, 1.0)
        r._advance()
        assert (r.x, r.y) == (1.0, 1.0)

    def test_goto_command_adopted(self):
        r = RobotClient("r", start=(0.0, 0.0))
        r.on_round(0, VirtualObservation(
            (("vn", 0, ("goto", "r", 100, 0)),), False))
        assert r.target == (1.0, 0.0)

    def test_ignores_commands_for_others(self):
        r = RobotClient("r", start=(0.0, 0.0))
        r.on_round(0, VirtualObservation(
            (("vn", 0, ("goto", "other", 100, 0)),), False))
        assert r.target is None


class TestEndToEndCoordination:
    def test_robots_converge_to_formation(self):
        sites, devices = single_region(3)
        world = VIWorld(sites, {0: CoordinatorProgram(radius=1.5, capacity=4)})
        for pos in devices:
            world.add_device(pos)
        robots = [
            RobotClient(f"r{i}", start=(3.0 + i, 3.0), step_length=0.4,
                        report_period=3, report_offset=i)
            for i in range(3)
        ]
        for i, robot in enumerate(robots):
            world.add_device(Point(0.35 + 0.01 * i, 0.1), client=robot,
                             initially_active=False)
        world.run_virtual_rounds(40)
        # Every robot got a target and closed in on it.
        for robot in robots:
            assert robot.target is not None, f"{robot.robot_id} unassigned"
            assert robot.distance_to_target() == pytest.approx(0.0, abs=1e-6)
        # Targets are distinct formation slots.
        assert len({r.target for r in robots}) == 3
        world.check_replica_consistency(0)
