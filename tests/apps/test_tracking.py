"""Tests for the tracking service over a virtual-node line."""

import pytest

from repro.apps import TargetClient, TrackerProgram, estimate_position, last_seen_map
from repro.geometry import Point
from repro.net import WaypointMobility
from repro.vi import VIWorld, VNSite, VirtualObservation
from repro.workloads import vn_line


class TestTrackerProgram:
    def test_records_announcements(self):
        p = TrackerProgram()
        s = p.step(p.init_state(), 5,
                   VirtualObservation((("cl", ("here", "t1")),), False))
        assert s == (("t1", 5),)

    def test_latest_round_kept(self):
        p = TrackerProgram()
        s = p.step((("t1", 2),), 7,
                   VirtualObservation((("cl", ("here", "t1")),), False))
        assert s == (("t1", 7),)

    def test_emit_most_recent(self):
        p = TrackerProgram()
        assert p.emit((("a", 3), ("b", 9)), 10) == ("seen", "b", 9)

    def test_silent_when_empty(self):
        p = TrackerProgram()
        assert p.emit((), 0) is None


class TestTargetClient:
    def test_period_one_announces_every_round(self):
        t = TargetClient("t", period=1)
        assert t.on_round(0, VirtualObservation((), False)) == ("here", "t")

    def test_period_three(self):
        t = TargetClient("t", period=3)
        outs = [t.on_round(vr, VirtualObservation((), False)) for vr in range(6)]
        assert outs == [None, None, ("here", "t"), None, None, ("here", "t")]


class TestEndToEndTracking:
    def make_world(self):
        sites, devices = vn_line(3, spacing=0.5, replicas_per_vn=2)
        world = VIWorld(sites, {s.vn_id: TrackerProgram() for s in sites})
        for pos in devices:
            world.add_device(pos)
        return world, sites

    def test_static_target_located_at_nearest_vn(self):
        world, sites = self.make_world()
        target = TargetClient("tgt", period=1)
        world.add_device(Point(0.0, 0.4), client=target, initially_active=False)
        world.run_virtual_rounds(8)
        seen = last_seen_map(world, "tgt")
        assert 0 in seen
        estimate = estimate_position(world, "tgt")
        assert estimate is not None

    def test_moving_target_hands_off_across_vns(self):
        world, sites = self.make_world()
        target = TargetClient("tgt", period=1)
        # Walks along the corridor from VN0's area to VN2's, outside the
        # emulation regions (stays a pure client).
        # Walks past the last virtual node, leaving VN1's radio range so
        # the final fix is unambiguous.
        world.add_device(
            WaypointMobility(Point(0.0, 0.45), [Point(1.6, 0.45)], speed=0.02),
            client=target, initially_active=False,
        )
        world.run_virtual_rounds(40)
        seen = last_seen_map(world, "tgt")
        assert set(seen) == {0, 1, 2}, f"target never crossed: {seen}"
        # The freshest record belongs to the last virtual node.
        assert max(seen, key=lambda vn: seen[vn]) == 2
        final = estimate_position(world, "tgt")
        assert final == sites[2].location

    def test_unknown_target(self):
        world, _ = self.make_world()
        world.run_virtual_rounds(3)
        assert last_seen_map(world, "ghost") == {}
        assert estimate_position(world, "ghost") is None
