"""Unit tests for plane-geometry primitives."""

import math

import pytest

from repro.geometry import (
    ORIGIN,
    Point,
    centroid,
    max_pairwise_distance,
    pairwise_distances,
)


class TestPoint:
    def test_distance_symmetric(self):
        a, b = Point(0, 0), Point(3, 4)
        assert a.distance_to(b) == 5.0
        assert b.distance_to(a) == 5.0

    def test_distance_to_self_is_zero(self):
        p = Point(2.5, -1.5)
        assert p.distance_to(p) == 0.0

    def test_within_is_inclusive_on_boundary(self):
        assert Point(0, 0).within(Point(3, 4), 5.0)

    def test_within_false_outside(self):
        assert not Point(0, 0).within(Point(3, 4), 4.999)

    def test_within_exact_for_integers(self):
        # Squared-distance comparison avoids sqrt rounding.
        assert Point(0, 0).within(Point(1, 1), math.sqrt(2) + 1e-9)

    def test_add_sub_roundtrip(self):
        a, b = Point(1, 2), Point(-3, 5)
        assert (a + b) - b == a

    def test_scaled(self):
        assert Point(1, -2).scaled(3) == Point(3, -6)

    def test_norm(self):
        assert Point(3, 4).norm() == 5.0

    def test_unit_of_zero_vector_is_zero(self):
        assert Point(0, 0).unit() == Point(0, 0)

    def test_unit_has_norm_one(self):
        u = Point(3, 4).unit()
        assert math.isclose(u.norm(), 1.0)

    def test_moved_toward_does_not_overshoot(self):
        a, target = Point(0, 0), Point(1, 0)
        assert a.moved_toward(target, 5.0) == target

    def test_moved_toward_partial(self):
        a, target = Point(0, 0), Point(10, 0)
        assert a.moved_toward(target, 4.0) == Point(4.0, 0.0)

    def test_moved_toward_zero_step_stays(self):
        a, target = Point(1, 1), Point(2, 2)
        assert a.moved_toward(target, 0.0) == a

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)

    def test_points_are_hashable_and_frozen(self):
        p = Point(1, 2)
        assert hash(p) == hash(Point(1, 2))
        with pytest.raises(Exception):
            p.x = 3  # type: ignore[misc]


class TestHelpers:
    def test_centroid_single_point(self):
        assert centroid([Point(2, 3)]) == Point(2, 3)

    def test_centroid_square(self):
        square = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        assert centroid(square) == Point(1, 1)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_pairwise_distances_count(self):
        pts = [Point(i, 0) for i in range(4)]
        assert len(list(pairwise_distances(pts))) == 6

    def test_max_pairwise_distance(self):
        pts = [Point(0, 0), Point(1, 0), Point(5, 0)]
        assert max_pairwise_distance(pts) == 5.0

    def test_max_pairwise_distance_degenerate(self):
        assert max_pairwise_distance([]) == 0.0
        assert max_pairwise_distance([Point(1, 1)]) == 0.0

    def test_origin_constant(self):
        assert ORIGIN == Point(0.0, 0.0)
