"""Unit tests for disks and virtual-node grids."""

import pytest

from repro.geometry import Disk, GridSpec, Point


class TestDisk:
    def test_contains_center(self):
        d = Disk(Point(0, 0), 1.0)
        assert d.contains(Point(0, 0))

    def test_contains_boundary(self):
        d = Disk(Point(0, 0), 5.0)
        assert d.contains(Point(3, 4))

    def test_not_contains_outside(self):
        d = Disk(Point(0, 0), 1.0)
        assert not d.contains(Point(2, 0))

    def test_zero_radius_disk_is_a_point(self):
        d = Disk(Point(1, 1), 0.0)
        assert d.contains(Point(1, 1))
        assert not d.contains(Point(1, 1.001))

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Disk(Point(0, 0), -1.0)

    def test_intersects_overlapping(self):
        assert Disk(Point(0, 0), 1.0).intersects(Disk(Point(1.5, 0), 1.0))

    def test_intersects_tangent(self):
        assert Disk(Point(0, 0), 1.0).intersects(Disk(Point(2, 0), 1.0))

    def test_not_intersects_disjoint(self):
        assert not Disk(Point(0, 0), 1.0).intersects(Disk(Point(3, 0), 1.0))


class TestGridSpec:
    def test_site_coordinates(self):
        g = GridSpec(rows=2, cols=3, spacing=10.0)
        assert g.site(0, 0) == Point(0, 0)
        assert g.site(1, 2) == Point(20, 10)

    def test_origin_offset(self):
        g = GridSpec(rows=1, cols=1, spacing=5.0, origin=Point(100, 200))
        assert g.site(0, 0) == Point(100, 200)

    def test_out_of_range_raises(self):
        g = GridSpec(rows=2, cols=2, spacing=1.0)
        with pytest.raises(IndexError):
            g.site(2, 0)
        with pytest.raises(IndexError):
            g.site(0, -1)

    def test_sites_row_major_order(self):
        g = GridSpec(rows=2, cols=2, spacing=1.0)
        assert list(g.sites()) == [
            Point(0, 0), Point(1, 0), Point(0, 1), Point(1, 1),
        ]

    def test_len(self):
        assert len(GridSpec(rows=3, cols=4, spacing=1.0)) == 12

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            GridSpec(rows=0, cols=1, spacing=1.0)
        with pytest.raises(ValueError):
            GridSpec(rows=1, cols=1, spacing=0.0)

    def test_nearest_site_exact(self):
        g = GridSpec(rows=3, cols=3, spacing=10.0)
        assert g.nearest_site(Point(10, 20)) == (2, 1)

    def test_nearest_site_rounds(self):
        g = GridSpec(rows=3, cols=3, spacing=10.0)
        assert g.nearest_site(Point(14, 4)) == (0, 1)

    def test_nearest_site_clamps_to_grid(self):
        g = GridSpec(rows=2, cols=2, spacing=10.0)
        assert g.nearest_site(Point(-50, 500)) == (1, 0)
