"""Golden-trace regression tests: one canonical seeded run per family.

Each scenario drives a small deterministic execution and renders its
trace with :func:`repro.net.canonical_dump`; the committed ``*.golden``
files pin the exact behaviour of the whole engine — geometry, channel,
adversary RNG streams, contention, detectors and every protocol's own
logic.  Any byte of drift fails here first, with a reviewable text diff.

After an intentional behaviour change, refresh with::

    PYTHONPATH=src python -m pytest tests/golden --update-golden

and commit the diff.  The scenarios deliberately exercise adversaries,
crashes, late joiners and mobility, not just the happy path.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import CHA, ClusterWorld, ExperimentSpec, WorkloadSpec
from repro.experiment import (
    CheckpointCHA,
    DeployedWorld,
    DeviceSpec,
    EnvironmentSpec,
    MajorityRSM,
    NaiveRSM,
    TwoPhaseCHA,
    VIEmulation,
)
from repro.experiment.runner import run
from repro.geometry import Point
from repro.net import (
    Crash,
    CrashPoint,
    CrashSchedule,
    NoiseBurstAdversary,
    RandomLossAdversary,
    WaypointMobility,
    WindowAdversary,
    canonical_dump,
)
from repro.vi.client import ScriptedClient
from repro.vi.program import CounterProgram
from repro.vi.schedule import VNSite

pytestmark = pytest.mark.fast

GOLDEN_DIR = Path(__file__).parent


def _count_reducer(state, k, value):
    return (state or 0) + 1


def _cha_spec():
    return ExperimentSpec(
        protocol=CHA(),
        world=ClusterWorld(n=5, rcf=9),
        environment=EnvironmentSpec(
            adversary=RandomLossAdversary(p_drop=0.3, p_false=0.2, seed=11),
            crashes=CrashSchedule([Crash(4, 14, CrashPoint.AFTER_SEND)]),
        ),
        workload=WorkloadSpec(instances=8),
    )


def _checkpoint_spec():
    return ExperimentSpec(
        protocol=CheckpointCHA(reducer=_count_reducer, initial_state=0),
        world=ClusterWorld(n=4),
        workload=WorkloadSpec(instances=8),
    )


def _two_phase_spec():
    return ExperimentSpec(
        protocol=TwoPhaseCHA(),
        world=ClusterWorld(n=4, rcf=6),
        environment=EnvironmentSpec(
            adversary=WindowAdversary(
                RandomLossAdversary(p_drop=0.4, seed=3), until=6),
        ),
        workload=WorkloadSpec(instances=8),
    )


def _naive_rsm_spec():
    return ExperimentSpec(
        protocol=NaiveRSM(),
        world=ClusterWorld(n=4),
        environment=EnvironmentSpec(
            adversary=NoiseBurstAdversary(p_false=0.3, until=12, seed=21),
        ),
        workload=WorkloadSpec(instances=8),
    )


def _majority_spec():
    return ExperimentSpec(
        protocol=MajorityRSM(),
        world=ClusterWorld(n=5),
        workload=WorkloadSpec(rounds=30),
    )


def _spread_spec():
    """A spread-out ring: the small-scale golden twin of the bench
    matrix's ``cha-1k-spread`` scenario.  Adjacent nodes sit within R1
    but second neighbours are beyond R2, so the run exercises the
    multi-cell grid index and partial-connectivity CHA dynamics (red
    and orange instances away from the contention manager's leader)
    rather than the single-region happy path."""
    return ExperimentSpec(
        protocol=CHA(),
        world=ClusterWorld(n=16, cluster_radius=2.2),
        workload=WorkloadSpec(instances=6),
    )


def _vi_spec():
    sites = (VNSite(0, Point(0.0, 0.0)), VNSite(1, Point(0.5, 0.0)))
    devices = tuple(
        DeviceSpec(mobility=Point(site.location.x + dx, 0.1 * (j + 1)))
        for site in sites
        for j, dx in enumerate((-0.1, 0.1))
    )
    return ExperimentSpec(
        protocol=VIEmulation(programs={0: CounterProgram(),
                                       1: CounterProgram()}),
        world=DeployedWorld(sites=sites, devices=devices),
        workload=WorkloadSpec(virtual_rounds=6),
    )


def _vi_join_reset_spec():
    """The phase-table engine's churn golden: a larger grid whose trace
    crosses every table invalidation — a walker joins mid-run, a crash
    wave kills both of site 0's replicas so the walker's JOIN_ACK goes
    silent and it reruns the RESET rebirth, and a late device joins the
    reborn node — all under windowed loss."""
    rpv = 2 + 12  # min_schedule_length + the 12 fixed phase rounds
    sites = (VNSite(0, Point(0.0, 0.0)), VNSite(1, Point(6.0, 0.0)),
             VNSite(2, Point(12.0, 0.0)))
    devices = (
        # Two deployed replicas per site; site 0's pair (nodes 0 and 1)
        # is the crash wave's target.
        DeviceSpec(mobility=Point(-0.1, 0.1)),
        DeviceSpec(mobility=Point(0.1, 0.1)),
        DeviceSpec(mobility=Point(5.9, 0.1)),
        DeviceSpec(mobility=Point(6.1, 0.1)),
        DeviceSpec(mobility=Point(11.9, 0.1)),
        DeviceSpec(mobility=Point(12.1, 0.1)),
        # A client just outside site 0's region (radius 0.25).
        DeviceSpec(mobility=Point(0.6, 0.4),
                   client=ScriptedClient({2: ("add", 5), 6: ("add", 8)})),
        # A walker that parks inside site 0's region and joins — then
        # must reset the node once the crash wave has silenced it.
        DeviceSpec(mobility=WaypointMobility(
            Point(0.0, 3.0), [Point(0.0, 0.05)], speed=0.05),
            initially_active=False),
        # A late arrival that joins the reborn virtual node.
        DeviceSpec(mobility=Point(0.05, -0.05), start_round=5 * rpv),
    )
    return ExperimentSpec(
        protocol=VIEmulation(programs={0: CounterProgram(),
                                       1: CounterProgram(),
                                       2: CounterProgram()}),
        world=DeployedWorld(sites=sites, devices=devices, rcf=12,
                            min_schedule_length=2),
        environment=EnvironmentSpec(
            adversary=WindowAdversary(
                RandomLossAdversary(p_drop=0.2, p_false=0.15, seed=17),
                until=20),
            crashes=CrashSchedule([
                Crash(0, 3 * rpv, CrashPoint.AFTER_SEND),
                Crash(1, 3 * rpv, CrashPoint.BEFORE_SEND),
            ]),
        ),
        workload=WorkloadSpec(virtual_rounds=12),
    )


SCENARIOS = {
    "cha": _cha_spec,
    "cha-spread": _spread_spec,
    "checkpoint-cha": _checkpoint_spec,
    "two-phase-cha": _two_phase_spec,
    "naive-rsm": _naive_rsm_spec,
    "majority-rsm": _majority_spec,
    "vi": _vi_spec,
    "vi-join-reset": _vi_join_reset_spec,
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_trace(name, request):
    dump = canonical_dump(run(SCENARIOS[name]()).trace)
    path = GOLDEN_DIR / f"{name}.golden"
    if request.config.getoption("--update-golden"):
        path.write_text(dump)
        pytest.skip(f"golden trace {path.name} rewritten")
    assert path.exists(), (
        f"missing golden file {path}; generate it with "
        f"pytest tests/golden --update-golden"
    )
    committed = path.read_text()
    assert dump == committed, (
        f"{name}: trace drifted from the committed golden.  If the "
        f"change is intentional, refresh with --update-golden and "
        f"review the diff."
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_trace_reference_path(name, request, monkeypatch):
    """The goldens hold on the full reference stack too (all-pairs
    channel, re-walking history fold *and* the seed per-node round
    loop) — the committed files pin *model* behaviour, not fast-path
    quirks."""
    if request.config.getoption("--update-golden"):
        pytest.skip("goldens being rewritten")
    monkeypatch.setenv("REPRO_REFERENCE_CHANNEL", "1")
    monkeypatch.setenv("REPRO_REFERENCE_HISTORY", "1")
    monkeypatch.setenv("REPRO_REFERENCE_ENGINE", "1")
    monkeypatch.setenv("REPRO_REFERENCE_VI", "1")
    dump = canonical_dump(run(SCENARIOS[name]()).trace)
    assert dump == (GOLDEN_DIR / f"{name}.golden").read_text()
