"""Golden-trace regression tests: one canonical seeded run per family.

Each scenario drives a small deterministic execution and renders its
trace with :func:`repro.net.canonical_dump`; the committed ``*.golden``
files pin the exact behaviour of the whole engine — geometry, channel,
adversary RNG streams, contention, detectors and every protocol's own
logic.  Any byte of drift fails here first, with a reviewable text diff.

After an intentional behaviour change, refresh with::

    PYTHONPATH=src python -m pytest tests/golden --update-golden

and commit the diff.  The scenarios deliberately exercise adversaries,
crashes, late joiners and mobility, not just the happy path.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import CHA, ClusterWorld, ExperimentSpec, WorkloadSpec
from repro.experiment import (
    CheckpointCHA,
    DeployedWorld,
    DeviceSpec,
    EnvironmentSpec,
    MajorityRSM,
    NaiveRSM,
    TwoPhaseCHA,
    VIEmulation,
)
from repro.experiment.runner import run
from repro.geometry import Point
from repro.net import (
    Crash,
    CrashPoint,
    CrashSchedule,
    NoiseBurstAdversary,
    RandomLossAdversary,
    WindowAdversary,
    canonical_dump,
)
from repro.vi.program import CounterProgram
from repro.vi.schedule import VNSite

pytestmark = pytest.mark.fast

GOLDEN_DIR = Path(__file__).parent


def _count_reducer(state, k, value):
    return (state or 0) + 1


def _cha_spec():
    return ExperimentSpec(
        protocol=CHA(),
        world=ClusterWorld(n=5, rcf=9),
        environment=EnvironmentSpec(
            adversary=RandomLossAdversary(p_drop=0.3, p_false=0.2, seed=11),
            crashes=CrashSchedule([Crash(4, 14, CrashPoint.AFTER_SEND)]),
        ),
        workload=WorkloadSpec(instances=8),
    )


def _checkpoint_spec():
    return ExperimentSpec(
        protocol=CheckpointCHA(reducer=_count_reducer, initial_state=0),
        world=ClusterWorld(n=4),
        workload=WorkloadSpec(instances=8),
    )


def _two_phase_spec():
    return ExperimentSpec(
        protocol=TwoPhaseCHA(),
        world=ClusterWorld(n=4, rcf=6),
        environment=EnvironmentSpec(
            adversary=WindowAdversary(
                RandomLossAdversary(p_drop=0.4, seed=3), until=6),
        ),
        workload=WorkloadSpec(instances=8),
    )


def _naive_rsm_spec():
    return ExperimentSpec(
        protocol=NaiveRSM(),
        world=ClusterWorld(n=4),
        environment=EnvironmentSpec(
            adversary=NoiseBurstAdversary(p_false=0.3, until=12, seed=21),
        ),
        workload=WorkloadSpec(instances=8),
    )


def _majority_spec():
    return ExperimentSpec(
        protocol=MajorityRSM(),
        world=ClusterWorld(n=5),
        workload=WorkloadSpec(rounds=30),
    )


def _spread_spec():
    """A spread-out ring: the small-scale golden twin of the bench
    matrix's ``cha-1k-spread`` scenario.  Adjacent nodes sit within R1
    but second neighbours are beyond R2, so the run exercises the
    multi-cell grid index and partial-connectivity CHA dynamics (red
    and orange instances away from the contention manager's leader)
    rather than the single-region happy path."""
    return ExperimentSpec(
        protocol=CHA(),
        world=ClusterWorld(n=16, cluster_radius=2.2),
        workload=WorkloadSpec(instances=6),
    )


def _vi_spec():
    sites = (VNSite(0, Point(0.0, 0.0)), VNSite(1, Point(0.5, 0.0)))
    devices = tuple(
        DeviceSpec(mobility=Point(site.location.x + dx, 0.1 * (j + 1)))
        for site in sites
        for j, dx in enumerate((-0.1, 0.1))
    )
    return ExperimentSpec(
        protocol=VIEmulation(programs={0: CounterProgram(),
                                       1: CounterProgram()}),
        world=DeployedWorld(sites=sites, devices=devices),
        workload=WorkloadSpec(virtual_rounds=6),
    )


SCENARIOS = {
    "cha": _cha_spec,
    "cha-spread": _spread_spec,
    "checkpoint-cha": _checkpoint_spec,
    "two-phase-cha": _two_phase_spec,
    "naive-rsm": _naive_rsm_spec,
    "majority-rsm": _majority_spec,
    "vi": _vi_spec,
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_trace(name, request):
    dump = canonical_dump(run(SCENARIOS[name]()).trace)
    path = GOLDEN_DIR / f"{name}.golden"
    if request.config.getoption("--update-golden"):
        path.write_text(dump)
        pytest.skip(f"golden trace {path.name} rewritten")
    assert path.exists(), (
        f"missing golden file {path}; generate it with "
        f"pytest tests/golden --update-golden"
    )
    committed = path.read_text()
    assert dump == committed, (
        f"{name}: trace drifted from the committed golden.  If the "
        f"change is intentional, refresh with --update-golden and "
        f"review the diff."
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_trace_reference_path(name, request, monkeypatch):
    """The goldens hold on the full reference stack too (all-pairs
    channel, re-walking history fold *and* the seed per-node round
    loop) — the committed files pin *model* behaviour, not fast-path
    quirks."""
    if request.config.getoption("--update-golden"):
        pytest.skip("goldens being rewritten")
    monkeypatch.setenv("REPRO_REFERENCE_CHANNEL", "1")
    monkeypatch.setenv("REPRO_REFERENCE_HISTORY", "1")
    monkeypatch.setenv("REPRO_REFERENCE_ENGINE", "1")
    dump = canonical_dump(run(SCENARIOS[name]()).trace)
    assert dump == (GOLDEN_DIR / f"{name}.golden").read_text()
