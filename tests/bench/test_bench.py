"""Tests for the repro.bench subsystem (runner, report, compare, CLI)."""

from __future__ import annotations

import json

import pytest

from repro import CHA, ClusterWorld, ExperimentSpec, TwoPhaseCHA, WorkloadSpec
from repro.bench import (
    ALL_SCENARIOS,
    QUICK_SCENARIOS,
    BenchScenario,
    compare_reports,
    load_report,
    run_benchmarks,
    run_scenario,
    scenario_by_name,
    write_report,
)
from repro.bench.__main__ import main as bench_main
from repro.bench.runner import SCHEMA

pytestmark = pytest.mark.fast


TINY = BenchScenario(
    name="tiny-cha", family="cha", n=5, gated=True,
    description="unit-test scenario",
    make_spec=lambda: ExperimentSpec(
        protocol=CHA(), world=ClusterWorld(n=5),
        workload=WorkloadSpec(instances=6), keep_trace=False,
    ),
)


def test_matrix_covers_every_family_and_node_range():
    families = {s.family for s in ALL_SCENARIOS}
    assert {"cha", "checkpoint-cha", "two-phase-cha", "naive-rsm",
            "majority-rsm", "vi"} <= families
    sizes = sorted(s.n for s in ALL_SCENARIOS)
    assert sizes[0] >= 50 and sizes[-1] >= 1000
    assert QUICK_SCENARIOS and set(QUICK_SCENARIOS) <= set(ALL_SCENARIOS)
    # The acceptance-criteria headliner exists, smokes, and gates.
    e8 = scenario_by_name("e8-majority-200")
    assert e8.n == 200 and e8.quick and e8.gated
    # The protocol-bound cha scenarios gate on the history engine's
    # speedup; the ROADMAP scale-out world exists (informational).
    for name in ("e8-cha-200", "cha-400"):
        assert scenario_by_name(name).gated, name
    spread = scenario_by_name("cha-1k-spread")
    assert spread.n == 1000
    assert spread.make_spec().world.cluster_radius > spread.make_spec().world.r2
    # At least one quick scenario is gated, so CI regression-gates on
    # every push.
    assert any(s.gated for s in QUICK_SCENARIOS)


def test_scenario_by_name_unknown():
    with pytest.raises(KeyError, match="unknown bench scenario"):
        scenario_by_name("nope")


def test_run_scenario_measures_both_paths():
    result = run_scenario(TINY, repeats=1, reference=True)
    assert result.rounds == 18  # 6 instances x 3 rounds
    assert result.wall_s > 0 and result.rounds_per_sec > 0
    assert result.reference_wall_s is not None
    assert result.speedup_vs_reference == pytest.approx(
        result.reference_wall_s / result.wall_s)
    assert set(result.phases) == {"channel_s", "history_s",
                                  "protocol_and_engine_s"}
    assert 0 <= result.phases["channel_s"] <= result.wall_s
    assert 0 <= result.phases["history_s"] <= result.wall_s
    assert sum(result.phases.values()) == pytest.approx(result.wall_s,
                                                        abs=1e-6)


def test_run_scenario_without_reference():
    result = run_scenario(TINY, repeats=1, reference=False)
    assert result.reference_wall_s is None
    assert result.speedup_vs_reference is None


TINY2 = BenchScenario(
    name="tiny-two-phase", family="two-phase-cha", n=4,
    description="second unit-test scenario (parallel fan-out)",
    make_spec=lambda: ExperimentSpec(
        protocol=TwoPhaseCHA(), world=ClusterWorld(n=4),
        workload=WorkloadSpec(instances=5), keep_trace=False,
    ),
)


def test_parallel_bench_agrees_with_serial(monkeypatch):
    """Fanning scenarios over the sweep worker pool must reproduce the
    serial report in everything but the wall-clock measurements."""
    monkeypatch.setattr("repro.bench.scenarios.ALL_SCENARIOS", (TINY, TINY2))
    serial = run_benchmarks([TINY, TINY2], repeats=1, reference=True)
    parallel = run_benchmarks([TINY, TINY2], repeats=1, reference=True,
                              workers=2)
    assert serial["config"]["workers"] == 1
    assert parallel["config"]["workers"] == 2
    assert set(serial["results"]) == set(parallel["results"])
    timing_fields = {"wall_s", "rounds_per_sec", "reference_wall_s",
                     "reference_rounds_per_sec", "speedup_vs_reference",
                     "phases"}
    for name in serial["results"]:
        s_row = {k: v for k, v in serial["results"][name].items()
                 if k not in timing_fields}
        p_row = {k: v for k, v in parallel["results"][name].items()
                 if k not in timing_fields}
        assert s_row == p_row
        # The measurements exist on both sides even if they differ.
        for field in timing_fields:
            assert parallel["results"][name][field] is not None


def test_parallel_bench_requires_registered_scenarios():
    unregistered = BenchScenario(
        name="not-in-registry", family="cha", n=3, description="",
        make_spec=lambda: None,
    )
    with pytest.raises(KeyError, match="unknown bench scenario"):
        run_benchmarks([unregistered], repeats=1, reference=False,
                       workers=2)


def test_parallel_bench_rejects_shadowed_scenario_names():
    # Same name as a registered scenario, different spec: measuring the
    # registered one silently would report the wrong numbers.
    shadow = BenchScenario(
        name="cha-50", family="cha", n=3, description="impostor",
        make_spec=lambda: None,
    )
    with pytest.raises(ValueError, match="registered scenario"):
        run_benchmarks([shadow], repeats=1, reference=False, workers=2)


def test_report_roundtrip(tmp_path):
    report = run_benchmarks([TINY], repeats=1, reference=False)
    assert report["schema"] == SCHEMA
    path = write_report(report, tmp_path / "BENCH_results.json")
    loaded = load_report(path)
    assert loaded == json.loads(path.read_text())
    assert loaded["results"]["tiny-cha"]["n"] == 5

    bad = dict(report, schema=999)
    bad_path = write_report(bad, tmp_path / "bad.json")
    with pytest.raises(ValueError, match="unsupported bench report schema"):
        load_report(bad_path)


def _report_with(metric_values):
    return {
        "schema": SCHEMA,
        "results": {
            name: {"speedup_vs_reference": value}
            for name, value in metric_values.items()
        },
    }


def test_compare_reports_flags_regressions():
    baseline = _report_with({"a": 4.0, "b": 2.0, "c": 1.5})
    # Within tolerance, improvements, and a missing scenario: all fine.
    assert compare_reports(
        _report_with({"a": 3.5, "b": 2.5}), baseline) == []
    # 4.0 -> 3.0 is a 25% drop: regression at 15% tolerance.
    messages = compare_reports(
        _report_with({"a": 3.0, "b": 2.0, "c": 1.5}), baseline)
    assert len(messages) == 1 and messages[0].startswith("a:")
    # ... but passes at 30% tolerance.
    assert compare_reports(
        _report_with({"a": 3.0, "b": 2.0, "c": 1.5}), baseline,
        tolerance=0.30) == []


def test_compare_reports_validates_tolerance():
    with pytest.raises(ValueError):
        compare_reports(_report_with({}), _report_with({}), tolerance=1.0)


def test_compare_skips_null_metrics():
    baseline = _report_with({"a": 4.0})
    current = {"schema": SCHEMA,
               "results": {"a": {"speedup_vs_reference": None}}}
    assert compare_reports(current, baseline) == []


def test_compare_skips_ungated_scenarios():
    baseline = _report_with({"a": 4.0})
    baseline["results"]["a"]["gated"] = False
    current = _report_with({"a": 1.0})  # would be a huge regression
    assert compare_reports(current, baseline) == []


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_list(capsys):
    assert bench_main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "e8-majority-200" in out and "vi-grid-64" in out


def test_cli_run_and_compare(tmp_path, capsys, monkeypatch):
    monkeypatch.setattr("repro.bench.__main__.ALL_SCENARIOS", (TINY,))
    monkeypatch.setattr(
        "repro.bench.scenarios.ALL_SCENARIOS", (TINY,))
    out = tmp_path / "BENCH_results.json"
    assert bench_main(["--scenarios", "tiny-cha", "--repeats", "1",
                       "--no-reference", "--out", str(out)]) == 0
    report = load_report(out)
    assert "tiny-cha" in report["results"]

    # A baseline demanding a 100x speedup must fail the gate ...
    baseline = dict(report)
    baseline["results"] = {
        "tiny-cha": dict(report["results"]["tiny-cha"],
                         rounds_per_sec=report["results"]["tiny-cha"]
                         ["rounds_per_sec"] * 100)
    }
    base_path = write_report(baseline, tmp_path / "BENCH_baseline.json")
    assert bench_main(["--scenarios", "tiny-cha", "--repeats", "1",
                       "--no-reference", "--out", str(out),
                       "--compare", str(base_path),
                       "--metric", "rounds_per_sec"]) == 1
    assert "REGRESSION" in capsys.readouterr().err

    # ... and an achievable one passes.
    baseline["results"]["tiny-cha"]["rounds_per_sec"] = 1e-9
    write_report(baseline, base_path)
    assert bench_main(["--scenarios", "tiny-cha", "--repeats", "1",
                       "--no-reference", "--out", str(out),
                       "--compare", str(base_path),
                       "--metric", "rounds_per_sec"]) == 0


def test_cli_compare_missing_baseline(tmp_path, monkeypatch):
    monkeypatch.setattr("repro.bench.scenarios.ALL_SCENARIOS", (TINY,))
    assert bench_main(["--scenarios", "tiny-cha", "--repeats", "1",
                       "--no-reference", "--out",
                       str(tmp_path / "r.json"),
                       "--compare", str(tmp_path / "absent.json")]) == 2


# ----------------------------------------------------------------------
# Absolute gate + trend history (the CI performance observatory)
# ----------------------------------------------------------------------

from repro.bench import (  # noqa: E402  (grouped with their tests)
    append_history,
    compare_absolute,
    history_entry,
    load_history,
)


def _abs_report(machine_class, rps, gated=True):
    return {
        "schema": SCHEMA,
        "machine_class": machine_class,
        "results": {
            name: {"rounds_per_sec": value, "gated": gated}
            for name, value in rps.items()
        },
    }


def test_absolute_gate_skips_without_machine_class():
    current = _abs_report("ci", {"a": 100.0})
    regressions, reason = compare_absolute(
        current, _abs_report(None, {"a": 1e9}))
    assert regressions == [] and "baseline declares no machine_class" in reason
    regressions, reason = compare_absolute(
        _abs_report(None, {"a": 1.0}), _abs_report("ci", {"a": 1e9}))
    assert regressions == [] and "current report" in reason


def test_absolute_gate_skips_on_machine_class_mismatch():
    regressions, reason = compare_absolute(
        _abs_report("laptop", {"a": 1.0}), _abs_report("ci", {"a": 1e9}))
    assert regressions == [] and "mismatch" in reason


def test_absolute_gate_flags_regressions_on_matching_class():
    baseline = _abs_report("ci", {"a": 1000.0, "b": 500.0})
    # Within the 30% default tolerance: fine.
    regressions, reason = compare_absolute(
        _abs_report("ci", {"a": 800.0, "b": 900.0}), baseline)
    assert (regressions, reason) == ([], None)
    # A 50% drop: flagged, with the machine class named.
    regressions, reason = compare_absolute(
        _abs_report("ci", {"a": 500.0, "b": 500.0}), baseline)
    assert reason is None and len(regressions) == 1
    assert regressions[0].startswith("a:") and "'ci'" in regressions[0]
    # Ungated scenarios stay informational even on a pinned machine.
    ungated = _abs_report("ci", {"a": 1000.0}, gated=False)
    assert compare_absolute(
        _abs_report("ci", {"a": 1.0}), ungated) == ([], None)


def test_absolute_gate_validates_tolerance():
    with pytest.raises(ValueError):
        compare_absolute(_abs_report("ci", {}), _abs_report("ci", {}),
                         tolerance=1.0)


def test_machine_class_recorded_in_report():
    report = run_benchmarks([TINY], repeats=1, reference=False,
                            machine_class="unit-test-box")
    assert report["machine_class"] == "unit-test-box"
    assert run_benchmarks([TINY], repeats=1,
                          reference=False)["machine_class"] is None


def test_history_append_and_load(tmp_path):
    report = run_benchmarks([TINY], repeats=1, reference=False,
                            machine_class="unit-test-box")
    path = tmp_path / "nested" / "BENCH_history.jsonl"
    first = append_history(report, path, timestamp="2026-07-30T00:00:00+00:00",
                           revision="deadbeef")
    append_history(report, path, timestamp="2026-07-30T01:00:00+00:00",
                   revision="deadbeef")
    entries = load_history(path)
    assert len(entries) == 2
    assert entries[0] == first
    digest = entries[0]["results"]["tiny-cha"]
    assert digest["rounds_per_sec"] > 0
    assert set(digest) == {"rounds_per_sec", "speedup_vs_reference",
                           "wall_s", "rounds", "gated"}
    assert entries[0]["machine_class"] == "unit-test-box"
    assert entries[1]["timestamp"] == "2026-07-30T01:00:00+00:00"
    # One line per entry: the file is greppable JSONL, not JSON.
    assert len(path.read_text().splitlines()) == 2


def test_history_entry_defaults_are_filled():
    entry = history_entry({"results": {}, "machine_class": None})
    assert entry["timestamp"]  # ISO stamp generated
    assert entry["results"] == {}


def test_load_history_missing_file(tmp_path):
    assert load_history(tmp_path / "absent.jsonl") == []


def test_cli_absolute_requires_compare(tmp_path, monkeypatch, capsys):
    monkeypatch.setattr("repro.bench.scenarios.ALL_SCENARIOS", (TINY,))
    with pytest.raises(SystemExit):
        bench_main(["--scenarios", "tiny-cha", "--repeats", "1",
                    "--no-reference", "--absolute",
                    "--out", str(tmp_path / "r.json")])


def test_cli_absolute_gate_end_to_end(tmp_path, capsys, monkeypatch):
    monkeypatch.setattr("repro.bench.scenarios.ALL_SCENARIOS", (TINY,))
    out = tmp_path / "r.json"
    base_path = tmp_path / "base.json"
    history = tmp_path / "hist.jsonl"

    # Record a baseline on machine class "unit" with achievable floors.
    assert bench_main(["--scenarios", "tiny-cha", "--repeats", "1",
                       "--no-reference", "--machine-class", "unit",
                       "--out", str(base_path)]) == 0
    baseline = load_report(base_path)
    baseline["results"]["tiny-cha"]["rounds_per_sec"] = 1e-9
    write_report(baseline, base_path)

    # Same machine class: gate arms and passes; history line appended.
    assert bench_main(["--scenarios", "tiny-cha", "--repeats", "1",
                       "--no-reference", "--machine-class", "unit",
                       "--out", str(out), "--compare", str(base_path),
                       "--absolute", "--append-history", str(history)]) == 0
    assert "absolute floors" in capsys.readouterr().out
    assert len(load_history(history)) == 1

    # Demanding the impossible on the same class: gate fails.
    baseline["results"]["tiny-cha"]["rounds_per_sec"] = 1e12
    write_report(baseline, base_path)
    assert bench_main(["--scenarios", "tiny-cha", "--repeats", "1",
                       "--no-reference", "--machine-class", "unit",
                       "--out", str(out), "--compare", str(base_path),
                       "--absolute"]) == 1
    assert "rounds_per_sec regressed" in capsys.readouterr().err

    # Different machine class: absolute gate skips, ratio gate decides.
    assert bench_main(["--scenarios", "tiny-cha", "--repeats", "1",
                       "--no-reference", "--machine-class", "other-box",
                       "--out", str(out), "--compare", str(base_path),
                       "--absolute"]) == 0
    assert "absolute gate skipped" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Offline compare CLI (python -m repro.bench.compare)
# ----------------------------------------------------------------------

from repro.bench.compare import main as compare_main  # noqa: E402


def _write_abs(tmp_path, name, machine_class, rps, **extra):
    report = _abs_report(machine_class, rps)
    for row in report["results"].values():
        row.update(extra)
    return write_report(report, tmp_path / name)


def test_compare_cli_missing_report(tmp_path, capsys):
    present = _write_abs(tmp_path, "r.json", "ci", {"a": 1.0})
    assert compare_main([str(present), str(tmp_path / "absent.json")]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_compare_cli_ratio_gate(tmp_path, capsys):
    base = _write_abs(tmp_path, "base.json", "ci", {"a": 100.0},
                      speedup_vs_reference=4.0)
    good = _write_abs(tmp_path, "good.json", "ci", {"a": 95.0},
                      speedup_vs_reference=3.9)
    bad = _write_abs(tmp_path, "bad.json", "ci", {"a": 95.0},
                     speedup_vs_reference=1.0)
    assert compare_main([str(good), str(base)]) == 0
    assert "no regression" in capsys.readouterr().out
    assert compare_main([str(bad), str(base)]) == 1
    assert "speedup_vs_reference regressed" in capsys.readouterr().err


def test_compare_cli_absolute_only(tmp_path, capsys):
    base = _write_abs(tmp_path, "base.json", "ci", {"a": 1000.0})
    ok = _write_abs(tmp_path, "ok.json", "ci", {"a": 900.0})
    slow = _write_abs(tmp_path, "slow.json", "ci", {"a": 100.0})
    # --absolute-only ignores the (absent) ratio metric entirely.
    assert compare_main([str(ok), str(base), "--absolute-only"]) == 0
    assert "absolute floors" in capsys.readouterr().out
    assert compare_main([str(slow), str(base), "--absolute-only"]) == 1
    assert "rounds_per_sec regressed" in capsys.readouterr().err
    # Tolerance is adjustable.
    assert compare_main([str(slow), str(base), "--absolute-only",
                         "--absolute-tolerance", "0.95"]) == 0


def test_compare_cli_absolute_only_disarmed_is_loud_but_green(tmp_path, capsys):
    base = _write_abs(tmp_path, "base.json", None, {"a": 1e12})
    current = _write_abs(tmp_path, "r.json", "ci", {"a": 1.0})
    assert compare_main([str(current), str(base), "--absolute-only"]) == 0
    out = capsys.readouterr().out
    assert "absolute gate skipped" in out
    assert "decided nothing" in out


def test_compare_cli_combined_gates(tmp_path, capsys):
    base = _write_abs(tmp_path, "base.json", "ci", {"a": 1000.0},
                      speedup_vs_reference=4.0)
    # Ratio holds but the floor breaks: --absolute catches it.
    current = _write_abs(tmp_path, "r.json", "ci", {"a": 100.0},
                         speedup_vs_reference=4.0)
    assert compare_main([str(current), str(base)]) == 0
    capsys.readouterr()
    assert compare_main([str(current), str(base), "--absolute"]) == 1
    assert "rounds_per_sec regressed" in capsys.readouterr().err
