"""Tests for the repro.bench subsystem (runner, report, compare, CLI)."""

from __future__ import annotations

import json

import pytest

from repro import CHA, ClusterWorld, ExperimentSpec, WorkloadSpec
from repro.bench import (
    ALL_SCENARIOS,
    QUICK_SCENARIOS,
    BenchScenario,
    compare_reports,
    load_report,
    run_benchmarks,
    run_scenario,
    scenario_by_name,
    write_report,
)
from repro.bench.__main__ import main as bench_main
from repro.bench.runner import SCHEMA

pytestmark = pytest.mark.fast


TINY = BenchScenario(
    name="tiny-cha", family="cha", n=5, gated=True,
    description="unit-test scenario",
    make_spec=lambda: ExperimentSpec(
        protocol=CHA(), world=ClusterWorld(n=5),
        workload=WorkloadSpec(instances=6), keep_trace=False,
    ),
)


def test_matrix_covers_every_family_and_node_range():
    families = {s.family for s in ALL_SCENARIOS}
    assert {"cha", "checkpoint-cha", "two-phase-cha", "naive-rsm",
            "majority-rsm", "vi"} <= families
    sizes = sorted(s.n for s in ALL_SCENARIOS)
    assert sizes[0] >= 50 and sizes[-1] >= 400
    assert QUICK_SCENARIOS and set(QUICK_SCENARIOS) <= set(ALL_SCENARIOS)
    # The acceptance-criteria headliner exists, smokes, and gates.
    e8 = scenario_by_name("e8-majority-200")
    assert e8.n == 200 and e8.quick and e8.gated
    # At least one quick scenario is gated, so CI regression-gates on
    # every push.
    assert any(s.gated for s in QUICK_SCENARIOS)


def test_scenario_by_name_unknown():
    with pytest.raises(KeyError, match="unknown bench scenario"):
        scenario_by_name("nope")


def test_run_scenario_measures_both_paths():
    result = run_scenario(TINY, repeats=1, reference=True)
    assert result.rounds == 18  # 6 instances x 3 rounds
    assert result.wall_s > 0 and result.rounds_per_sec > 0
    assert result.reference_wall_s is not None
    assert result.speedup_vs_reference == pytest.approx(
        result.reference_wall_s / result.wall_s)
    assert set(result.phases) == {"channel_s", "protocol_and_engine_s"}
    assert 0 <= result.phases["channel_s"] <= result.wall_s
    assert result.phases["channel_s"] + result.phases["protocol_and_engine_s"] \
        == pytest.approx(result.wall_s, abs=1e-6)


def test_run_scenario_without_reference():
    result = run_scenario(TINY, repeats=1, reference=False)
    assert result.reference_wall_s is None
    assert result.speedup_vs_reference is None


def test_report_roundtrip(tmp_path):
    report = run_benchmarks([TINY], repeats=1, reference=False)
    assert report["schema"] == SCHEMA
    path = write_report(report, tmp_path / "BENCH_results.json")
    loaded = load_report(path)
    assert loaded == json.loads(path.read_text())
    assert loaded["results"]["tiny-cha"]["n"] == 5

    bad = dict(report, schema=999)
    bad_path = write_report(bad, tmp_path / "bad.json")
    with pytest.raises(ValueError, match="unsupported bench report schema"):
        load_report(bad_path)


def _report_with(metric_values):
    return {
        "schema": SCHEMA,
        "results": {
            name: {"speedup_vs_reference": value}
            for name, value in metric_values.items()
        },
    }


def test_compare_reports_flags_regressions():
    baseline = _report_with({"a": 4.0, "b": 2.0, "c": 1.5})
    # Within tolerance, improvements, and a missing scenario: all fine.
    assert compare_reports(
        _report_with({"a": 3.5, "b": 2.5}), baseline) == []
    # 4.0 -> 3.0 is a 25% drop: regression at 15% tolerance.
    messages = compare_reports(
        _report_with({"a": 3.0, "b": 2.0, "c": 1.5}), baseline)
    assert len(messages) == 1 and messages[0].startswith("a:")
    # ... but passes at 30% tolerance.
    assert compare_reports(
        _report_with({"a": 3.0, "b": 2.0, "c": 1.5}), baseline,
        tolerance=0.30) == []


def test_compare_reports_validates_tolerance():
    with pytest.raises(ValueError):
        compare_reports(_report_with({}), _report_with({}), tolerance=1.0)


def test_compare_skips_null_metrics():
    baseline = _report_with({"a": 4.0})
    current = {"schema": SCHEMA,
               "results": {"a": {"speedup_vs_reference": None}}}
    assert compare_reports(current, baseline) == []


def test_compare_skips_ungated_scenarios():
    baseline = _report_with({"a": 4.0})
    baseline["results"]["a"]["gated"] = False
    current = _report_with({"a": 1.0})  # would be a huge regression
    assert compare_reports(current, baseline) == []


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_list(capsys):
    assert bench_main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "e8-majority-200" in out and "vi-grid-64" in out


def test_cli_run_and_compare(tmp_path, capsys, monkeypatch):
    monkeypatch.setattr("repro.bench.__main__.ALL_SCENARIOS", (TINY,))
    monkeypatch.setattr(
        "repro.bench.scenarios.ALL_SCENARIOS", (TINY,))
    out = tmp_path / "BENCH_results.json"
    assert bench_main(["--scenarios", "tiny-cha", "--repeats", "1",
                       "--no-reference", "--out", str(out)]) == 0
    report = load_report(out)
    assert "tiny-cha" in report["results"]

    # A baseline demanding a 100x speedup must fail the gate ...
    baseline = dict(report)
    baseline["results"] = {
        "tiny-cha": dict(report["results"]["tiny-cha"],
                         rounds_per_sec=report["results"]["tiny-cha"]
                         ["rounds_per_sec"] * 100)
    }
    base_path = write_report(baseline, tmp_path / "BENCH_baseline.json")
    assert bench_main(["--scenarios", "tiny-cha", "--repeats", "1",
                       "--no-reference", "--out", str(out),
                       "--compare", str(base_path),
                       "--metric", "rounds_per_sec"]) == 1
    assert "REGRESSION" in capsys.readouterr().err

    # ... and an achievable one passes.
    baseline["results"]["tiny-cha"]["rounds_per_sec"] = 1e-9
    write_report(baseline, base_path)
    assert bench_main(["--scenarios", "tiny-cha", "--repeats", "1",
                       "--no-reference", "--out", str(out),
                       "--compare", str(base_path),
                       "--metric", "rounds_per_sec"]) == 0


def test_cli_compare_missing_baseline(tmp_path, monkeypatch):
    monkeypatch.setattr("repro.bench.scenarios.ALL_SCENARIOS", (TINY,))
    assert bench_main(["--scenarios", "tiny-cha", "--repeats", "1",
                       "--no-reference", "--out",
                       str(tmp_path / "r.json"),
                       "--compare", str(tmp_path / "absent.json")]) == 2
