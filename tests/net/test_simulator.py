"""Integration tests for the synchronous round engine."""

import pytest

from repro.contention import FixedLeaderCM, LeaderElectionCM
from repro.detectors import PerfectDetector
from repro.errors import ConfigurationError, SimulationError
from repro.geometry import Point
from repro.net import (
    Crash,
    CrashPoint,
    CrashSchedule,
    LinearMobility,
    Message,
    Process,
    RadioSpec,
    Simulator,
)


class Chatter(Process):
    """Broadcasts a tagged payload every round and logs receptions."""

    def __init__(self, label, cm_name=None):
        self.label = label
        self.cm_name = cm_name
        self.received: list[tuple[int, tuple, bool]] = []
        self.advice: list[bool] = []

    def contend(self, r):
        return self.cm_name

    def send(self, r, active):
        self.advice.append(active)
        if self.cm_name is not None and not active:
            return None
        return f"{self.label}@{r}"

    def deliver(self, r, messages, collision):
        self.received.append((r, tuple(m.payload for m in messages), collision))


class Listener(Process):
    def __init__(self):
        self.received: list[tuple[int, tuple, bool]] = []

    def send(self, r, active):
        return None

    def deliver(self, r, messages, collision):
        self.received.append((r, tuple(m.payload for m in messages), collision))


def make_sim(**kwargs):
    defaults = dict(spec=RadioSpec(r1=1.0, r2=2.0))
    defaults.update(kwargs)
    return Simulator(**defaults)


class TestBasics:
    def test_single_broadcaster_delivers(self):
        sim = make_sim()
        sim.add_node(Chatter("a"), Point(0, 0))
        listener = Listener()
        sim.add_node(listener, Point(0.5, 0))
        sim.run(3)
        assert listener.received == [
            (0, ("a@0",), False), (1, ("a@1",), False), (2, ("a@2",), False),
        ]

    def test_two_broadcasters_collide(self):
        sim = make_sim()
        sim.add_node(Chatter("a"), Point(0, 0))
        sim.add_node(Chatter("b"), Point(0.2, 0))
        listener = Listener()
        sim.add_node(listener, Point(0.5, 0))
        sim.run(1)
        assert listener.received == [(0, (), True)]

    def test_trace_records_broadcasts(self):
        sim = make_sim()
        sim.add_node(Chatter("a"), Point(0, 0))
        trace = sim.run(2)
        assert trace.total_broadcasts() == 2
        assert trace[0].broadcasts[0].payload == "a@0"

    def test_run_returns_cumulative_trace(self):
        sim = make_sim()
        sim.add_node(Chatter("a"), Point(0, 0))
        sim.run(2)
        trace = sim.run(3)
        assert len(trace) == 5

    def test_negative_rounds_rejected(self):
        with pytest.raises(ConfigurationError):
            make_sim().run(-1)


class TestContentionWiring:
    def test_advice_reaches_contenders(self):
        cm = FixedLeaderCM(leader=1)
        sim = make_sim(cms={"C": cm})
        a, b = Chatter("a", "C"), Chatter("b", "C")
        sim.add_node(a, Point(0, 0))
        sim.add_node(b, Point(0.2, 0))
        listener = Listener()
        sim.add_node(listener, Point(0.5, 0))
        sim.run(2)
        assert a.advice == [False, False]
        assert b.advice == [True, True]
        assert [m for _, m, _ in listener.received] == [("b@0",), ("b@1",)]

    def test_unknown_cm_raises(self):
        sim = make_sim()
        sim.add_node(Chatter("a", "nope"), Point(0, 0))
        with pytest.raises(SimulationError):
            sim.run(1)

    def test_advice_clipped_to_contenders(self):
        # The CM tries to advise node 7, which never contends.
        cm = FixedLeaderCM(leader=7)
        sim = make_sim(cms={"C": cm})
        a = Chatter("a", "C")
        sim.add_node(a, Point(0, 0))
        sim.run(1)
        assert a.advice == [False]

    def test_add_cm_after_construction(self):
        sim = make_sim()
        sim.add_cm("C", LeaderElectionCM())
        a = Chatter("a", "C")
        sim.add_node(a, Point(0, 0))
        sim.run(1)
        assert a.advice == [True]

    def test_duplicate_cm_rejected(self):
        sim = make_sim(cms={"C": LeaderElectionCM()})
        with pytest.raises(ConfigurationError):
            sim.add_cm("C", LeaderElectionCM())


class TestCrashes:
    def test_before_send_crash_silences_node(self):
        crashes = CrashSchedule([Crash(0, 1, CrashPoint.BEFORE_SEND)])
        sim = make_sim(crashes=crashes)
        sim.add_node(Chatter("a"), Point(0, 0))
        listener = Listener()
        sim.add_node(listener, Point(0.5, 0))
        sim.run(3)
        assert [m for _, m, _ in listener.received] == [("a@0",), (), ()]

    def test_after_send_crash_broadcasts_once_more(self):
        crashes = CrashSchedule([Crash(0, 1, CrashPoint.AFTER_SEND)])
        sim = make_sim(crashes=crashes)
        chatter = Chatter("a")
        sim.add_node(chatter, Point(0, 0))
        listener = Listener()
        sim.add_node(listener, Point(0.5, 0))
        sim.run(3)
        assert [m for _, m, _ in listener.received] == [("a@0",), ("a@1",), ()]
        # The crashing node never saw round 1's receptions.
        assert [r for r, _, _ in chatter.received] == [0]

    def test_crashed_node_does_not_interfere(self):
        crashes = CrashSchedule.of({1: 1})
        sim = make_sim(crashes=crashes)
        sim.add_node(Chatter("a"), Point(0, 0))
        sim.add_node(Chatter("b"), Point(0.2, 0))
        listener = Listener()
        sim.add_node(listener, Point(0.5, 0))
        sim.run(2)
        # Round 0: both broadcast -> collision.  Round 1: b gone -> clean.
        assert listener.received[0] == (0, (), True)
        assert listener.received[1] == (1, ("a@1",), False)

    def test_alive_reflects_crashes(self):
        crashes = CrashSchedule.of({0: 2})
        sim = make_sim(crashes=crashes)
        sim.add_node(Chatter("a"), Point(0, 0))
        sim.run(3)
        assert not sim.alive(0)
        assert sim.alive(0, 1)

    def test_crash_recorded_in_trace(self):
        crashes = CrashSchedule.of({0: 1})
        sim = make_sim(crashes=crashes)
        sim.add_node(Chatter("a"), Point(0, 0))
        trace = sim.run(2)
        assert 0 in trace[0].crashed
        assert 0 not in trace[1].crashed


class TestDormantNodes:
    def test_late_start_node_silent_then_active(self):
        sim = make_sim()
        sim.add_node(Chatter("late"), Point(0, 0), start_round=2)
        listener = Listener()
        sim.add_node(listener, Point(0.5, 0))
        sim.run(4)
        assert [m for _, m, _ in listener.received] == [
            (), (), ("late@2",), ("late@3",),
        ]

    def test_dormant_node_receives_nothing(self):
        sim = make_sim()
        late = Listener()
        sim.add_node(late, Point(0.5, 0), start_round=2)
        sim.add_node(Chatter("a"), Point(0, 0))
        sim.run(4)
        assert [r for r, _, _ in late.received] == [2, 3]

    def test_negative_start_round_rejected(self):
        sim = make_sim()
        with pytest.raises(ConfigurationError):
            sim.add_node(Listener(), Point(0, 0), start_round=-1)


class TestMobilityIntegration:
    def test_node_moves_out_of_range(self):
        sim = make_sim()
        sim.add_node(Chatter("a"), LinearMobility(Point(0, 0), Point(1.5, 0)))
        listener = Listener()
        sim.add_node(listener, Point(0, 0.5))
        sim.run(3)
        # Round 0: distance 0.5 (hear).  Round 1: ~1.58 within R2=2: silence
        # with an R2 loss -> collision indication.  Round 2: beyond R2.
        assert listener.received[0][1] == ("a@0",)
        assert listener.received[1] == (1, (), True)
        assert listener.received[2] == (2, (), False)

    def test_location_service_updated(self):
        sim = make_sim()
        sim.add_node(Chatter("a"), LinearMobility(Point(0, 0), Point(1, 0)))
        sim.run(3)
        assert sim.locations.locate(0) == Point(2, 0)


class TestDetectorWiring:
    def test_perfect_detector_ignores_r2_ring_loss(self):
        sim = make_sim(detector=PerfectDetector())
        sim.add_node(Chatter("a"), Point(0, 0))
        listener = Listener()
        sim.add_node(listener, Point(1.5, 0))  # in the R1..R2 ring
        sim.run(1)
        assert listener.received == [(0, (), False)]

    def test_default_detector_reports_r2_ring_loss(self):
        sim = make_sim()
        sim.add_node(Chatter("a"), Point(0, 0))
        listener = Listener()
        sim.add_node(listener, Point(1.5, 0))
        sim.run(1)
        assert listener.received == [(0, (), True)]


class TestMidRunJoin:
    """Mid-run ``add_node`` seams: past start rounds and grid occupancy."""

    def test_past_start_round_rejected_on_running_world(self):
        sim = make_sim()
        sim.add_node(Chatter("a"), Point(0, 0))
        sim.run(3)
        with pytest.raises(ConfigurationError):
            sim.add_node(Listener(), Point(0.5, 0), start_round=2)

    def test_start_round_at_current_round_accepted(self):
        sim = make_sim()
        sim.add_node(Chatter("a"), Point(0, 0))
        sim.run(3)
        listener = Listener()
        node = sim.add_node(listener, Point(0.5, 0), start_round=3)
        sim.run(1)
        assert sim.alive(node, 3)
        assert listener.received == [(3, ("a@3",), False)]

    def test_valid_late_join_hears_from_start_round(self):
        sim = make_sim()
        sim.add_node(Chatter("a"), Point(0, 0))
        sim.run(2)
        listener = Listener()
        sim.add_node(listener, Point(0.5, 0), start_round=4)
        sim.run(4)
        # Dormant through rounds 2-3, hears rounds 4-5.
        assert listener.received == [(4, ("a@4",), False), (5, ("a@5",), False)]

    def test_future_start_node_never_buckets_in_grid(self):
        """A registered-but-unpowered node must not occupy a grid cell.

        The paper's late-start contract: the node "neither transmits,
        receives, nor interferes earlier" — so before its start round it
        must be invisible to the spatial index, even when registered
        mid-run straight into a dense cell.
        """
        sim = make_sim()
        # Dense cell: everyone within one R2-sized bucket.
        for k in range(6):
            sim.add_node(Chatter(f"n{k}"), Point(0.1 * k, 0))
        sim.run(2)
        listener = Listener()
        joiner = sim.add_node(listener, Point(0.05, 0.05), start_round=5)
        for r in range(2, 5):
            sim.step()
            assert joiner not in sim.channel._index, (
                f"dormant node bucketed at round {r}"
            )
        sim.step()  # round 5: powered on
        assert joiner in sim.channel._index
        # Six simultaneous chatters collide; the joiner still observes the
        # round (a collision flag), proving it receives only once present.
        assert [r for r, _, _ in listener.received] == [5]
