"""Property-based tests for channel reception semantics."""

from hypothesis import given, strategies as st

from repro.geometry import Point
from repro.net import Message, RadioSpec
from repro.net.channel import Channel

coords = st.floats(min_value=-5.0, max_value=5.0,
                   allow_nan=False, allow_infinity=False)


@st.composite
def worlds(draw, max_nodes=8):
    count = draw(st.integers(1, max_nodes))
    positions = {i: Point(draw(coords), draw(coords)) for i in range(count)}
    senders = draw(st.sets(st.sampled_from(sorted(positions)), max_size=count))
    broadcasts = {s: Message(s, f"m{s}") for s in senders}
    return positions, broadcasts


SPEC = RadioSpec(r1=1.0, r2=2.0, rcf=0)


class TestChannelProperties:
    @given(worlds())
    def test_r1_loss_implies_r2_loss(self, world):
        positions, broadcasts = world
        channel = Channel(SPEC)
        for rec in channel.deliver(0, positions, broadcasts).values():
            assert not rec.lost_within_r1 or rec.lost_within_r2

    @given(worlds())
    def test_delivered_senders_are_within_r1(self, world):
        positions, broadcasts = world
        channel = Channel(SPEC)
        receptions = channel.deliver(0, positions, broadcasts)
        for receiver, rec in receptions.items():
            for msg in rec.messages:
                if msg.sender == receiver:
                    continue  # loopback of own broadcast
                assert positions[msg.sender].within(
                    positions[receiver], SPEC.r1,
                )

    @given(worlds())
    def test_completeness_ground_truth(self, world):
        """lost_within_r1 is set exactly when an R1 sender went missing."""
        positions, broadcasts = world
        channel = Channel(SPEC)
        receptions = channel.deliver(0, positions, broadcasts)
        for receiver, rec in receptions.items():
            got = {m.sender for m in rec.messages}
            in_r1 = {
                s for s in broadcasts
                if s != receiver
                and positions[s].within(positions[receiver], SPEC.r1)
            }
            assert rec.lost_within_r1 == bool(in_r1 - got)

    @given(worlds())
    def test_broadcaster_hears_exactly_itself(self, world):
        positions, broadcasts = world
        channel = Channel(SPEC)
        receptions = channel.deliver(0, positions, broadcasts)
        for sender in broadcasts:
            senders_heard = {m.sender for m in receptions[sender].messages}
            assert senders_heard == {sender}

    @given(worlds())
    def test_listener_with_quiet_neighbourhood_hears_all(self, world):
        positions, broadcasts = world
        channel = Channel(SPEC)
        receptions = channel.deliver(0, positions, broadcasts)
        for receiver, rec in receptions.items():
            if receiver in broadcasts:
                continue
            in_r2 = [
                s for s in broadcasts
                if positions[s].within(positions[receiver], SPEC.r2)
            ]
            if len(in_r2) <= 1:
                in_r1 = [
                    s for s in broadcasts
                    if positions[s].within(positions[receiver], SPEC.r1)
                ]
                assert {m.sender for m in rec.messages} == set(in_r1)

    @given(worlds())
    def test_determinism(self, world):
        positions, broadcasts = world
        a = Channel(SPEC).deliver(0, positions, broadcasts)
        b = Channel(SPEC).deliver(0, positions, broadcasts)
        assert a == b
