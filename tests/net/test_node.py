"""Unit tests for crash schedules and crash-point semantics."""

import pytest

from repro.net import Crash, CrashPoint, CrashSchedule


class TestCrashSchedule:
    def test_empty_schedule_never_crashes(self):
        cs = CrashSchedule()
        assert not cs.crashed_by(0, 100)
        assert cs.sends_in(0, 100)
        assert cs.receives_in(0, 100)

    def test_before_send_semantics(self):
        cs = CrashSchedule([Crash(0, 5, CrashPoint.BEFORE_SEND)])
        assert cs.sends_in(0, 4)
        assert not cs.sends_in(0, 5)
        assert cs.receives_in(0, 4)
        assert not cs.receives_in(0, 5)

    def test_before_send_fully_gone_in_crash_round(self):
        cs = CrashSchedule([Crash(0, 5, CrashPoint.BEFORE_SEND)])
        assert cs.crashed_by(0, 5)

    def test_after_send_sends_but_does_not_receive(self):
        cs = CrashSchedule([Crash(0, 5, CrashPoint.AFTER_SEND)])
        assert cs.sends_in(0, 5)
        assert not cs.receives_in(0, 5)
        assert not cs.crashed_by(0, 5)
        assert cs.crashed_by(0, 6)

    def test_of_shorthand(self):
        cs = CrashSchedule.of({1: 3, 2: 7})
        assert cs.crashed_by(1, 3)
        assert cs.crashed_by(2, 7)
        assert not cs.crashed_by(2, 6)

    def test_double_crash_rejected(self):
        with pytest.raises(ValueError):
            CrashSchedule([Crash(0, 1), Crash(0, 2)])

    def test_iteration_and_len(self):
        cs = CrashSchedule([Crash(0, 1), Crash(1, 2)])
        assert len(cs) == 2
        assert {c.node for c in cs} == {0, 1}

    def test_crash_for(self):
        crash = Crash(3, 9, CrashPoint.AFTER_SEND)
        cs = CrashSchedule([crash])
        assert cs.crash_for(3) == crash
        assert cs.crash_for(4) is None
