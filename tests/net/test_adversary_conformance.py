"""Model-conformance property tests for every adversary class.

The paper's environment contract: adversarial drops are honoured only
while ``r < rcf`` (channel stabilisation), and spurious collision
indications only while ``r < racc`` (detector accuracy, Property 2).
These tests drive *every* adversary class — including the windowed /
targeted / noise classes added for fault plans, compositions of all of
them, and adversaries compiled from whole fault plans — through a real
simulator over seeded randomised rounds, and assert the contract from
the receivers' point of view.

The scenario isolates the contract: one beacon broadcasts every round,
three listeners sit well within ``R1``, nobody else transmits.  Without
adversarial interference every listener hears the beacon and no genuine
collision is possible — so, after stabilisation, a missing message
convicts the channel of honouring a drop, and a raised flag convicts
the detector of honouring a false positive.
"""

import pytest

from repro.detectors import EventuallyAccurateDetector
from repro.faults import CrashWave, DetectorNoise, MessageStorm, Partition, \
    SenderSuppression, materialize, plan
from repro.geometry import Point
from repro.net import (
    ComposedAdversary,
    NoAdversary,
    NoiseBurstAdversary,
    PartitionAdversary,
    Process,
    RadioSpec,
    RandomLossAdversary,
    ScriptedAdversary,
    Simulator,
    TargetedDropAdversary,
    WindowAdversary,
)

STABILIZE = 12
HORIZON = 30


class Beacon(Process):
    def send(self, r, active):
        return f"beacon@{r}"

    def deliver(self, r, messages, collision):
        pass


class Listener(Process):
    def __init__(self):
        self.heard: dict[int, bool] = {}
        self.flags: dict[int, bool] = {}

    def send(self, r, active):
        return None

    def deliver(self, r, messages, collision):
        self.heard[r] = any(m.sender == 0 for m in messages)
        self.flags[r] = collision


def run_world(adversary, *, rounds=HORIZON, rcf=STABILIZE, racc=STABILIZE):
    sim = Simulator(
        spec=RadioSpec(r1=1.0, r2=1.5, rcf=rcf),
        adversary=adversary,
        detector=EventuallyAccurateDetector(racc=racc),
    )
    sim.add_node(Beacon(), Point(0.0, 0.0))
    listeners = [Listener() for _ in range(3)]
    for i, listener in enumerate(listeners):
        sim.add_node(listener, Point(0.1 + 0.05 * i, 0.0))
    sim.run(rounds)
    return listeners


def aggressive_script():
    drop = {(r, node): "all" for r in range(HORIZON) for node in range(4)}
    false = [(r, node) for r in range(HORIZON) for node in range(4)]
    return ScriptedAdversary(drop_script=drop, false_script=false)


#: (id, factory) — every adversary class, maximally aggressive and
#: scoped to *all* rounds, so only the rcf/racc gates can stop it.
ADVERSARIES = [
    ("no-adversary", lambda seed: NoAdversary()),
    ("random-loss", lambda seed: RandomLossAdversary(
        p_drop=1.0, p_false=1.0, seed=seed)),
    ("scripted", lambda seed: aggressive_script()),
    ("partition", lambda seed: PartitionAdversary(
        [[0], [1, 2, 3]], until_round=HORIZON)),
    ("targeted-drop", lambda seed: TargetedDropAdversary([0], until=None)),
    ("noise-burst", lambda seed: NoiseBurstAdversary(
        p_false=1.0, until=None, seed=seed)),
    ("windowed-loss", lambda seed: WindowAdversary(
        RandomLossAdversary(p_drop=1.0, p_false=1.0, seed=seed),
        until=None)),
    ("composed", lambda seed: ComposedAdversary(
        TargetedDropAdversary([0], until=None),
        NoiseBurstAdversary(p_false=1.0, until=None, seed=seed),
        RandomLossAdversary(p_drop=0.5, p_false=0.5, seed=seed),
    )),
    ("compiled-fault-plan", lambda seed: materialize(
        plan(MessageStorm(intensity=1.0, detector_noise=1.0, until=None),
             SenderSuppression(senders=(0,), until=None),
             Partition(until=HORIZON, groups=((0,), (1, 2, 3))),
             DetectorNoise(p_false=1.0, until=None),
             seed=seed),
        n=4).adversary),
]

IDS = [name for name, _ in ADVERSARIES]
FACTORIES = [factory for _, factory in ADVERSARIES]


@pytest.mark.parametrize("factory", FACTORIES, ids=IDS)
@pytest.mark.parametrize("seed", range(3))
class TestEnvironmentContract:
    def test_drops_honoured_only_before_rcf(self, factory, seed):
        for listener in run_world(factory(seed)):
            for r in range(STABILIZE, HORIZON):
                assert listener.heard[r], (
                    f"adversarial drop honoured at round {r} >= rcf"
                )

    def test_false_collisions_only_before_racc(self, factory, seed):
        for listener in run_world(factory(seed)):
            for r in range(STABILIZE, HORIZON):
                assert not listener.flags[r], (
                    f"spurious collision honoured at round {r} >= racc"
                )


@pytest.mark.parametrize("seed", range(3))
class TestAdversariesDoBite:
    """The gates above are vacuous if the adversaries never interfere;
    check each aggressive class actually bites before stabilisation."""

    BITING = [(name, factory) for name, factory in ADVERSARIES
              if name != "no-adversary"]

    @pytest.mark.parametrize(
        "factory", [f for _, f in BITING], ids=[n for n, _ in BITING])
    def test_interferes_before_stabilization(self, factory, seed):
        listeners = run_world(factory(seed))
        dropped = any(not listener.heard[r]
                      for listener in listeners
                      for r in range(STABILIZE))
        flagged = any(listener.flags[r]
                      for listener in listeners
                      for r in range(STABILIZE))
        assert dropped or flagged

    def test_crash_wave_is_not_channel_interference(self, seed):
        mat = materialize(plan(CrashWave(fraction=0.5, horizon=10),
                               seed=seed), n=4)
        assert mat.adversary is None
        assert mat.crashes is not None
