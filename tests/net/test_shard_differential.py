"""Differential verification of the sharded round engine.

PR 8 added :mod:`repro.net.shard`: worker processes own contiguous
column strips of the spatial grid, run the batched round logic over
their resident nodes, and exchange only boundary-cell broadcasts —
behind the fifth reference-style switch (``ExperimentSpec.shards`` /
``REPRO_SHARDS``).  This suite is the regression gate: the pickled
observables of a sharded run must be byte-for-byte identical to the
serial engine's, across shard counts, protocol families, crash waves,
the full engine/channel/history/core switch matrix, cross-border
mobility migration and mid-run ``add_node``.

Raw-simulator comparisons open a fresh chain-interning generation per
execution (mirroring the experiment stepper): without it, a previous
run's still-live chain links satisfy the current run's interning
probes and the *serial* pickle's object sharing becomes dependent on
process history.

Marked ``shard_differential`` so PR CI can run just this gate
(``pytest -m shard_differential``).
"""

from __future__ import annotations

import dataclasses
import functools
import pickle

import pytest

from repro import CHA, ClusterWorld, ExperimentSpec, WorkloadSpec
from repro.contention import LeaderElectionCM
from repro.core.cha import CHAProcess
from repro.core.history import new_chain_generation
from repro.errors import ConfigurationError
from repro.experiment import (
    CheckpointCHA,
    EnvironmentSpec,
    MajorityRSM,
    MetricsSpec,
    NaiveRSM,
    TwoPhaseCHA,
)
from repro.experiment.runner import run
from repro.experiment.spec import DeployedWorld
from repro.vi.schedule import VNSite
from repro.geometry import Point
from repro.net import (
    Crash,
    CrashPoint,
    CrashSchedule,
    LinearMobility,
    RadioSpec,
    Simulator,
)
from repro.net.adversary import RandomLossAdversary
from repro.net.shard import (
    ShardedSimulator,
    ShardPlan,
    plan_shards,
    shards_forced,
)

pytestmark = [pytest.mark.fast, pytest.mark.shard_differential]

SHARDS = [2, 4]

#: A crash wave that spans strip borders (node 0 sits in the leftmost
#: strip, 3 and 7 elsewhere for every balanced 2/4-way split of the
#: spread cluster), so recovery/contention feedback crosses workers.
CRASH_WAVE = CrashSchedule([
    Crash(0, 12, CrashPoint.AFTER_SEND),
    Crash(3, 19, CrashPoint.BEFORE_SEND),
    Crash(7, 19, CrashPoint.BEFORE_SEND),
])

PROTOCOLS = {
    "cha": lambda: CHA(),
    "checkpoint-cha": lambda: CheckpointCHA(
        reducer=lambda state, k, value: (state or 0) + 1, initial_state=0),
    "two-phase-cha": lambda: TwoPhaseCHA(),
    "naive-rsm": lambda: NaiveRSM(),
}


def _spec(protocol, *, shards=None, keep_trace=False, crashes=False,
          **overrides) -> ExperimentSpec:
    env = (EnvironmentSpec(crashes=CRASH_WAVE) if crashes
           else EnvironmentSpec())
    return ExperimentSpec(
        protocol=protocol,
        # cluster_radius=4.0 spreads the deployment over several grid
        # columns of width r2 so it actually splits into strips.
        world=ClusterWorld(n=12, r1=1.0, r2=1.5, cluster_radius=4.0),
        environment=env,
        workload=WorkloadSpec(instances=8),
        metrics=MetricsSpec(metrics=("rounds", "total_broadcasts"),
                            invariants=("all",)),
        keep_trace=keep_trace,
        shards=shards,
        **overrides,
    )


def _observables(spec, *, engine_ref=False, channel_ref=False) -> bytes:
    def instrument(sim):
        sim.use_reference_engine = engine_ref
        sim.fast_path = not channel_ref
        sim.channel.use_reference = channel_ref

    result = run(spec, instrument=instrument)
    return pickle.dumps((result.trace, result.outputs, result.metrics,
                         result.invariants, result.violation_context))


# ----------------------------------------------------------------------
# Experiment-level byte identity
# ----------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(PROTOCOLS))
def test_shard_matrix_byte_identical(name):
    """shards ∈ {2, 4} × keep_trace × crash waves == the serial run."""
    factory = PROTOCOLS[name]
    for keep_trace in (True, False):
        for crashes in (False, True):
            anchor = _observables(_spec(factory(), shards=1,
                                        keep_trace=keep_trace,
                                        crashes=crashes))
            for shards in SHARDS:
                got = _observables(_spec(factory(), shards=shards,
                                         keep_trace=keep_trace,
                                         crashes=crashes))
                assert got == anchor, (name, keep_trace, crashes, shards)


@pytest.mark.parametrize("name", ["cha", "checkpoint-cha", "two-phase-cha"])
def test_shard_switch_matrix_byte_identical(name):
    """Sharding composes with the other four reference switches: every
    (engine, channel, history, core) corner stays byte-identical to the
    same corner run serially."""
    factory = PROTOCOLS[name]
    for engine_ref in (False, True):
        for channel_ref in (False, True):
            for history_ref in (False, True):
                for core_ref in (False, True):
                    anchor = _observables(
                        _spec(factory(), shards=1,
                              use_reference_history=history_ref,
                              use_reference_core=core_ref),
                        engine_ref=engine_ref, channel_ref=channel_ref)
                    for shards in SHARDS:
                        got = _observables(
                            _spec(factory(), shards=shards,
                                  use_reference_history=history_ref,
                                  use_reference_core=core_ref),
                            engine_ref=engine_ref, channel_ref=channel_ref)
                        assert got == anchor, (
                            name, shards, engine_ref, channel_ref,
                            history_ref, core_ref)


def test_environment_switch_drives_sharding(monkeypatch):
    """``REPRO_SHARDS`` shard counts apply when the spec leaves
    ``shards`` unset, and still produce serial-identical bytes."""
    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    anchor = _observables(_spec(CHA()))
    monkeypatch.setenv("REPRO_SHARDS", "2")
    assert _observables(_spec(CHA())) == anchor
    # The spec value wins over the environment.
    monkeypatch.setenv("REPRO_SHARDS", "4")
    assert _observables(_spec(CHA(), shards=1)) == anchor


# ----------------------------------------------------------------------
# Raw-simulator seams: migration, mid-run add_node, execution modes
# ----------------------------------------------------------------------

def _proposal(node, k):
    return f"v{node}.{k:06d}"


class Chatter:
    """Core-less scatterable process (module-level, hence picklable)."""

    def __init__(self, me):
        self.me = me
        self.heard = []

    def contend(self, r):
        return "C" if (r + self.me) % 4 == 0 else None

    def send(self, r, active):
        if active or (r + self.me) % 3 == 0:
            return ("chat", self.me, r)
        return None

    def deliver(self, r, messages, collision):
        self.heard.append((r, tuple(m.payload for m in messages), collision))


def _scatter_sim(record_trace):
    """Ten nodes spread over ~6 grid columns; four of them drift."""
    sim = Simulator(spec=RadioSpec(r1=1.0, r2=1.5),
                    cms={"C": LeaderElectionCM(stable_round=0)},
                    record_trace=record_trace)
    for i in range(10):
        x = -4.0 + i * 0.9
        if i % 2 == 0:
            mob = LinearMobility(Point(x, 0.0),
                                 Point(0.07 if i % 4 == 0 else -0.07, 0.0))
        else:
            mob = Point(x, 0.3)
        sim.add_node(Chatter(i), mob)
    return sim


def _cha_sim(record_trace):
    """The narrowest shardable fully-connected CHA world.

    Two cell columns (width ``r2 = 2``) with every pair within
    ``r1 = 2``; the drifters (nodes 1 and 4) cross ``x = 0`` — the
    strip border — mid-run.
    """
    sim = Simulator(spec=RadioSpec(r1=2.0, r2=2.0),
                    cms={"C": LeaderElectionCM(stable_round=0)},
                    record_trace=record_trace)
    for i in range(8):
        x = -0.9 + i * 0.25
        if i in (1, 4):
            mob = LinearMobility(Point(x, 0.0),
                                 Point(0.02 if i == 1 else -0.02, 0.0))
        else:
            mob = Point(x, 0.2)
        sim.add_node(CHAProcess(propose=functools.partial(_proposal, i),
                                cm_name="C"), mob)
    return sim


def _core_state_bytes(sim):
    return pickle.dumps(
        [(n, sim.process_of(n).core.snapshot(),
          list(sim.process_of(n).core.outputs),
          dict(sim.process_of(n).core.proposals_made))
         for n in sim.node_ids])


def test_mirror_mode_migration_trace_identical():
    """Core-less processes force mirror mode; the trace of a 3-strip
    run with border-crossing drifters matches the serial engine's."""
    new_chain_generation()
    serial = _scatter_sim(True)
    serial.run(60)
    new_chain_generation()
    sharded = ShardedSimulator(_scatter_sim(True), 3)
    sharded.run(60)
    sharded.finish()
    assert sharded.mirror is True
    assert not sharded.serial_fallback
    assert pickle.dumps(sharded.sim.trace) == pickle.dumps(serial.trace)


def test_fast_mode_migration_state_identical():
    """``record_trace=False`` CHA runs take the fast path: final core
    states shipped home from the workers pickle byte-identically to the
    serial engine's, including the two migrated drifters."""
    new_chain_generation()
    serial = _cha_sim(False)
    serial.run(120)
    new_chain_generation()
    sharded = ShardedSimulator(_cha_sim(False), 2)
    sharded.run(120)
    sharded.finish()
    assert sharded.mirror is False
    assert not sharded.serial_fallback
    assert _core_state_bytes(sharded.sim) == _core_state_bytes(serial)


def test_mirror_mode_migration_cha_trace_identical():
    new_chain_generation()
    serial = _cha_sim(True)
    serial.run(120)
    new_chain_generation()
    sharded = ShardedSimulator(_cha_sim(True), 2)
    sharded.run(120)
    sharded.finish()
    assert sharded.mirror is True
    assert pickle.dumps(sharded.sim.trace) == pickle.dumps(serial.trace)


def _late_join(target, *, start_round=14):
    target.run(10)
    target.add_node(CHAProcess(propose=functools.partial(_proposal, 8),
                               cm_name="C"),
                    Point(0.8, 0.4), start_round=start_round)
    target.run(40)


def test_mid_run_add_node_mirror():
    """A node registered after the workers forked reaches every strip
    and the trace stays byte-identical (the regression pinned here: the
    coordinator must not warm the steady-position cache before its own
    serial step, or the channel index never ingests the newcomer)."""
    new_chain_generation()
    serial = _cha_sim(True)
    _late_join(serial)
    new_chain_generation()
    sharded = ShardedSimulator(_cha_sim(True), 2)
    _late_join(sharded)
    sharded.finish()
    assert pickle.dumps(sharded.sim.trace) == pickle.dumps(serial.trace)


def test_mid_run_add_node_fast():
    """Fast mode: the late joiner is pickled to the workers, so its
    core's absent-ballot sentinel must survive the trip (the regression
    pinned here: identity-broken sentinels made phantom ballots appear
    in the shipped-home snapshot)."""
    new_chain_generation()
    serial = _cha_sim(False)
    _late_join(serial)
    new_chain_generation()
    sharded = ShardedSimulator(_cha_sim(False), 2)
    _late_join(sharded)
    sharded.finish()
    assert sharded.mirror is False
    assert _core_state_bytes(sharded.sim) == _core_state_bytes(serial)


def test_mid_run_add_node_requires_picklable_process():
    sharded = ShardedSimulator(_cha_sim(False), 2)
    sharded.step()
    with pytest.raises(ConfigurationError, match="picklable"):
        # a lambda-bearing proposer cannot be registered on the workers
        sharded.add_node(CHAProcess(propose=lambda k: f"x{k}",
                                    cm_name="C"), Point(0.5, 0.4),
                         start_round=5)


def test_serial_fallback_on_narrow_world():
    """A single-column deployment cannot split: the facade runs the
    plain serial engine and stays byte-identical trivially."""
    def narrow(record_trace):
        sim = Simulator(spec=RadioSpec(r1=2.0, r2=2.0),
                        cms={"C": LeaderElectionCM(stable_round=0)},
                        record_trace=record_trace)
        for i in range(4):
            sim.add_node(CHAProcess(propose=functools.partial(_proposal, i),
                                    cm_name="C"),
                         Point(0.1 + i * 0.3, 0.2))
        return sim

    new_chain_generation()
    serial = narrow(True)
    serial.run(30)
    new_chain_generation()
    sharded = ShardedSimulator(narrow(True), 4)
    sharded.run(30)
    sharded.finish()
    assert sharded.serial_fallback
    assert pickle.dumps(sharded.sim.trace) == pickle.dumps(serial.trace)


def test_shards_one_is_serial():
    sharded = ShardedSimulator(_cha_sim(True), 1)
    sharded.step()
    assert sharded.serial_fallback


# ----------------------------------------------------------------------
# Gates
# ----------------------------------------------------------------------

def test_rejects_nonbenign_adversary():
    sim = Simulator(spec=RadioSpec(r1=2.0, r2=2.0),
                    adversary=RandomLossAdversary(p_drop=0.5, seed=1),
                    cms={"C": LeaderElectionCM(stable_round=0)})
    for i in range(4):
        sim.add_node(CHAProcess(propose=functools.partial(_proposal, i),
                                cm_name="C"), Point(-0.9 + i * 0.5, 0.2))
    sharded = ShardedSimulator(sim, 2)
    with pytest.raises(ConfigurationError, match="NoAdversary"):
        sharded.step()


def test_rejects_invalid_shard_count():
    with pytest.raises(ConfigurationError, match="shards"):
        ShardedSimulator(_cha_sim(True), 0)


def test_runner_rejects_unsupported_protocols():
    with pytest.raises(ConfigurationError, match="majority-rsm"):
        run(_spec(MajorityRSM(), shards=2))
    def factory(*, propose, cm_name):
        return CHAProcess(propose=propose, cm_name=cm_name)

    with pytest.raises(ConfigurationError, match="factories"):
        run(_spec(CHA(process_factory=factory), shards=2))


def test_spec_validates_shards():
    with pytest.raises(ConfigurationError, match="shards"):
        _spec(CHA(), shards=0).validate()
    deployed = dataclasses.replace(
        _spec(CHA(), shards=2),
        world=DeployedWorld(sites=(VNSite(vn_id=0,
                                          location=Point(0.0, 0.0)),)))
    with pytest.raises(ConfigurationError, match="cluster"):
        deployed.validate()


def test_shards_forced_parses_environment(monkeypatch):
    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    assert shards_forced() is None
    monkeypatch.setenv("REPRO_SHARDS", "")
    assert shards_forced() is None
    monkeypatch.setenv("REPRO_SHARDS", "0")
    assert shards_forced() is None
    monkeypatch.setenv("REPRO_SHARDS", "3")
    assert shards_forced() == 3
    monkeypatch.setenv("REPRO_SHARDS", "two")
    with pytest.raises(ConfigurationError):
        shards_forced()
    monkeypatch.setenv("REPRO_SHARDS", "-1")
    with pytest.raises(ConfigurationError):
        shards_forced()


# ----------------------------------------------------------------------
# Planning geometry
# ----------------------------------------------------------------------

def test_plan_shards_balances_columns():
    # 4 nodes in column 0, 2 in column 1, 2 in column 2 (cell size 1.0)
    positions = ([Point(0.1 * i, 0.0) for i in range(1, 5)]
                 + [Point(1.2, 0.0), Point(1.8, 0.0)]
                 + [Point(2.3, 0.0), Point(2.7, 0.0)])
    plan = plan_shards(positions, 1.0, 2)
    assert plan is not None and plan.shards == 2
    # the split lands after the heavy column: strips {0} and {1, 2}
    assert plan.bounds == (1,)
    assert plan.strip_of(0.5) == 0
    assert plan.strip_of(1.5) == 1
    assert plan.strip_of(2.5) == 1
    # total ownership over the whole line, including unplanned space
    assert plan.strip_of(-100.0) == 0
    assert plan.strip_of(100.0) == 1


def test_plan_shards_caps_at_distinct_columns():
    positions = [Point(0.5, 0.0), Point(1.5, 0.0), Point(2.5, 0.0)]
    plan = plan_shards(positions, 1.0, 8)
    assert plan is not None
    assert plan.shards == 3  # one strip per occupied column, no more


def test_plan_shards_single_column_is_none():
    positions = [Point(0.1, 0.0), Point(0.2, 0.0), Point(0.9, 0.0)]
    assert plan_shards(positions, 1.0, 4) is None
    assert plan_shards([], 1.0, 4) is None
    assert plan_shards(positions, 1.0, 1) is None


def test_shard_plan_edges_match_cell_arithmetic():
    plan = ShardPlan(inv_cell=1.0 / 1.5, bounds=(-1, 2))
    assert plan.shards == 3
    # col_of matches SpatialGridIndex truncation exactly
    assert plan.col_of(-1.6) == -2
    assert plan.col_of(-1.4) == -1
    assert plan.col_of(3.1) == 2
    left, right = plan.edge_cols(1)
    assert (left, right) == (-1, 1)
    assert plan.edge_cols(0) == (None, -2)
    assert plan.edge_cols(2) == (2, None)
